//! Offline stand-in for the token-level slice of the `syn` /
//! `proc-macro2` parsing stack.
//!
//! The build container has no route to a crates registry, so `dtrack-lint`
//! cannot depend on the real `syn`. It also does not need the full typed
//! AST: every invariant it checks (see `crates/lint`) is a property of
//! *token sequences in context* — paths like `std::collections::HashMap`,
//! method calls like `.unwrap()`, a `let` guard binding followed by a
//! `.send(` inside the same brace group. This stub therefore provides the
//! part of the stack those checks actually consume:
//!
//! - [`parse_file`] — full lexical analysis of a Rust source file
//!   (line comments, nested block comments, string/char/byte/raw-string
//!   literals, lifetimes vs. char literals, raw identifiers) into a
//!   balanced [`TokenStream`] of [`TokenTree`]s, the same token model
//!   `proc-macro2` exposes and real `syn` is built on.
//! - Line/column [`Span`]s on every token, so lint findings are
//!   reportable as `file:line`.
//!
//! What it deliberately does not provide: the typed `syn::Item`/`Expr`
//! AST, parse traits, or macro expansion. Lint rules that want structure
//! (enclosing `fn`, `#[cfg(test)]` modules, brace scopes) recover it from
//! the token trees — see `crates/lint/src/source.rs`. Swapping in the
//! real crates later is a port from `syn::parse_file(..).to_token_stream()`
//! / `proc_macro2::TokenStream`, which exposes this exact tree shape.
//!
//! Like every stub in `stubs/`, this is a subset, never a fork: nothing
//! here accepts input the real lexer would reject in a way the lint
//! rules depend on. Unbalanced delimiters and unterminated literals are
//! hard errors, so a garbled source file fails the lint run loudly
//! instead of silently scanning as empty.

use std::fmt;

/// A lexical error with the 1-based line it was detected on.
#[derive(Debug, Clone)]
pub struct Error {
    /// 1-based line number of the offending character.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// Source location of a token (1-based line, 0-based column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 0-based column (in chars).
    pub column: u32,
}

/// The three bracket kinds that form [`Group`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
}

/// A delimited, recursively tokenized region.
#[derive(Debug, Clone)]
pub struct Group {
    /// Which bracket pair delimits the group.
    pub delimiter: Delimiter,
    /// The tokens between the delimiters.
    pub stream: TokenStream,
    /// Location of the opening delimiter.
    pub span: Span,
}

/// An identifier or keyword (including raw identifiers, stored without
/// the `r#` prefix).
#[derive(Debug, Clone)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Location of the first character.
    pub span: Span,
}

/// A single punctuation character (`.`, `:`, `#`, `'` of a lifetime, …).
#[derive(Debug, Clone)]
pub struct Punct {
    /// The character.
    pub ch: char,
    /// Location of the character.
    pub span: Span,
}

/// A literal token: string, raw string, byte string, char, or number.
/// The text is the raw source slice including quotes/prefixes.
#[derive(Debug, Clone)]
pub struct Literal {
    /// Raw source text of the literal.
    pub text: String,
    /// Location of the first character.
    pub span: Span,
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited subtree.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The token's source location.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span,
            TokenTree::Ident(i) => i.span,
            TokenTree::Punct(p) => p.span,
            TokenTree::Literal(l) => l.span,
        }
    }
}

/// A sequence of sibling token trees.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    /// The trees, in source order.
    pub trees: Vec<TokenTree>,
}

/// A fully tokenized source file.
#[derive(Debug, Clone)]
pub struct File {
    /// The file's top-level token stream.
    pub tokens: TokenStream,
}

/// Tokenize a complete Rust source file into balanced token trees.
///
/// Comments (line, doc, and nested block) are skipped; string, raw
/// string, byte string, char, and numeric literals become single
/// [`Literal`] tokens so their contents can never be mistaken for code;
/// `'lifetime` lexes as `Punct('\'')` + `Ident`; `r#ident` lexes as the
/// bare [`Ident`]. Unbalanced delimiters or an unterminated literal or
/// comment are an [`Error`].
pub fn parse_file(src: &str) -> Result<File, Error> {
    let chars: Vec<char> = src.chars().collect();
    let mut lexer = Lexer {
        chars,
        pos: 0,
        line: 1,
        col: 0,
    };
    let mut stack: Vec<(Delimiter, Span, Vec<TokenTree>)> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while let Some(raw) = lexer.next_raw()? {
        match raw {
            Raw::Open(delim, span) => {
                stack.push((delim, span, std::mem::take(&mut current)));
            }
            Raw::Close(delim, span) => {
                let (open_delim, open_span, parent) = stack.pop().ok_or_else(|| Error {
                    line: span.line,
                    message: format!("unmatched closing {:?}", delim),
                })?;
                if open_delim != delim {
                    return Err(Error {
                        line: span.line,
                        message: format!(
                            "mismatched delimiters: {:?} opened on line {} closed as {:?}",
                            open_delim, open_span.line, delim
                        ),
                    });
                }
                let group = TokenTree::Group(Group {
                    delimiter: delim,
                    stream: TokenStream {
                        trees: std::mem::replace(&mut current, parent),
                    },
                    span: open_span,
                });
                current.push(group);
            }
            Raw::Tree(t) => current.push(t),
        }
    }
    if let Some((delim, span, _)) = stack.pop() {
        return Err(Error {
            line: span.line,
            message: format!("unclosed {:?} opened here", delim),
        });
    }
    Ok(File {
        tokens: TokenStream { trees: current },
    })
}

/// Lexer output before tree assembly.
enum Raw {
    Open(Delimiter, Span),
    Close(Delimiter, Span),
    Tree(TokenTree),
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.col,
        }
    }

    fn err(&self, message: &str) -> Error {
        Error {
            line: self.line,
            message: message.to_string(),
        }
    }

    fn next_raw(&mut self) -> Result<Option<Raw>, Error> {
        loop {
            let c = match self.peek(0) {
                Some(c) => c,
                None => return Ok(None),
            };
            // Whitespace.
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            // Comments.
            if c == '/' && self.peek(1) == Some('/') {
                while let Some(c) = self.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                let start_line = self.line;
                self.bump();
                self.bump();
                let mut depth = 1usize;
                loop {
                    match (self.peek(0), self.peek(1)) {
                        (Some('/'), Some('*')) => {
                            self.bump();
                            self.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            self.bump();
                            self.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(_), _) => {
                            self.bump();
                        }
                        (None, _) => {
                            return Err(Error {
                                line: start_line,
                                message: "unterminated block comment".into(),
                            })
                        }
                    }
                }
                continue;
            }
            let span = self.span();
            // Delimiters.
            match c {
                '(' => {
                    self.bump();
                    return Ok(Some(Raw::Open(Delimiter::Parenthesis, span)));
                }
                ')' => {
                    self.bump();
                    return Ok(Some(Raw::Close(Delimiter::Parenthesis, span)));
                }
                '{' => {
                    self.bump();
                    return Ok(Some(Raw::Open(Delimiter::Brace, span)));
                }
                '}' => {
                    self.bump();
                    return Ok(Some(Raw::Close(Delimiter::Brace, span)));
                }
                '[' => {
                    self.bump();
                    return Ok(Some(Raw::Open(Delimiter::Bracket, span)));
                }
                ']' => {
                    self.bump();
                    return Ok(Some(Raw::Close(Delimiter::Bracket, span)));
                }
                _ => {}
            }
            // String-ish literals and raw identifiers, which all begin
            // with a letter prefix or a quote.
            if c == '"' {
                return Ok(Some(Raw::Tree(self.string_literal(span)?)));
            }
            if c == 'r' || c == 'b' {
                // r"..", r#".."#, br"..", b"..", b'..', r#ident
                if let Some(tok) = self.prefixed_literal(span)? {
                    return Ok(Some(Raw::Tree(tok)));
                }
                // Fall through: ordinary identifier starting with r/b.
            }
            if c == '\'' {
                return Ok(Some(Raw::Tree(self.quote(span)?)));
            }
            if c.is_ascii_digit() {
                return Ok(Some(Raw::Tree(self.number(span))));
            }
            if c.is_alphabetic() || c == '_' {
                return Ok(Some(Raw::Tree(self.ident(span))));
            }
            // Everything else: single punctuation char.
            self.bump();
            return Ok(Some(Raw::Tree(TokenTree::Punct(Punct { ch: c, span }))));
        }
    }

    fn ident(&mut self, span: Span) -> TokenTree {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenTree::Ident(Ident { text, span })
    }

    fn number(&mut self, span: Span) -> TokenTree {
        let mut text = String::new();
        // Integer / prefix part (also swallows hex/oct/bin and suffixes:
        // alphanumerics and underscores).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: only when the dot is followed by a digit
        // (leaves `1..n` ranges and `x.method()` intact).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        TokenTree::Literal(Literal { text, span })
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self, span: Span) -> Result<TokenTree, Error> {
        // Lifetime: 'ident not followed by a closing quote.
        let is_lifetime = matches!(
            (self.peek(1), self.peek(2)),
            (Some(c1), next) if (c1.is_alphabetic() || c1 == '_') && next != Some('\'')
        );
        if is_lifetime {
            self.bump(); // consume the quote; the ident lexes next.
            return Ok(TokenTree::Punct(Punct { ch: '\'', span }));
        }
        // Char literal.
        let mut text = String::new();
        text.push(self.bump().expect("quote present")); // opening '
        match self.peek(0) {
            Some('\\') => {
                text.push(self.bump().expect("escape lead"));
                // Escape body up to the closing quote.
                while let Some(c) = self.peek(0) {
                    text.push(self.bump().expect("peeked"));
                    if c == '\'' {
                        return Ok(TokenTree::Literal(Literal { text, span }));
                    }
                }
                Err(self.err("unterminated char literal"))
            }
            Some(_) => {
                text.push(self.bump().expect("char body"));
                match self.bump() {
                    Some('\'') => {
                        text.push('\'');
                        Ok(TokenTree::Literal(Literal { text, span }))
                    }
                    _ => Err(self.err("unterminated char literal")),
                }
            }
            None => Err(self.err("unterminated char literal")),
        }
    }

    fn string_literal(&mut self, span: Span) -> Result<TokenTree, Error> {
        let mut text = String::new();
        text.push(self.bump().expect("opening quote")); // "
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(c) = self.bump() {
                        text.push(c);
                    } else {
                        return Err(self.err("unterminated string literal"));
                    }
                }
                Some('"') => {
                    text.push('"');
                    return Ok(TokenTree::Literal(Literal { text, span }));
                }
                Some(c) => text.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    /// Handle `r`/`b`-prefixed forms. Returns `None` when the prefix is
    /// just the start of an ordinary identifier (`radius`, `bounded`, …).
    fn prefixed_literal(&mut self, span: Span) -> Result<Option<TokenTree>, Error> {
        let c0 = self.peek(0).expect("prefix present");
        // b'x' byte char.
        if c0 == 'b' && self.peek(1) == Some('\'') {
            self.bump(); // b
            let tok = self.quote(span)?;
            return Ok(Some(tok));
        }
        // b"..." byte string.
        if c0 == 'b' && self.peek(1) == Some('"') {
            self.bump();
            return Ok(Some(self.string_literal(span)?));
        }
        // r"...", r#"..."#, br"...", br#"..."#, r#ident.
        let (raw_at, after_b) = if c0 == 'b' && self.peek(1) == Some('r') {
            (1usize, true)
        } else if c0 == 'r' {
            (0usize, false)
        } else {
            return Ok(None);
        };
        // Count hashes after the r.
        let mut hashes = 0usize;
        while self.peek(raw_at + 1 + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(raw_at + 1 + hashes) {
            Some('"') => {
                // Raw (byte) string: consume prefix, hashes, quote, then
                // scan for `"` followed by `hashes` hashes.
                let mut text = String::new();
                if after_b {
                    text.push(self.bump().expect("b"));
                }
                text.push(self.bump().expect("r"));
                for _ in 0..hashes {
                    text.push(self.bump().expect("#"));
                }
                text.push(self.bump().expect("opening quote"));
                loop {
                    match self.bump() {
                        Some('"') => {
                            text.push('"');
                            let mut matched = 0;
                            while matched < hashes && self.peek(0) == Some('#') {
                                text.push(self.bump().expect("#"));
                                matched += 1;
                            }
                            if matched == hashes {
                                return Ok(Some(TokenTree::Literal(Literal { text, span })));
                            }
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.err("unterminated raw string literal")),
                    }
                }
            }
            Some(c) if hashes == 1 && !after_b && (c.is_alphabetic() || c == '_') => {
                // Raw identifier r#ident: store without the prefix.
                self.bump(); // r
                self.bump(); // #
                Ok(Some(self.ident(span)))
            }
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(stream: &TokenStream) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(trees: &[TokenTree], out: &mut Vec<String>) {
            for t in trees {
                match t {
                    TokenTree::Ident(i) => out.push(i.text.clone()),
                    TokenTree::Group(g) => walk(&g.stream.trees, out),
                    _ => {}
                }
            }
        }
        walk(&stream.trees, &mut out);
        out
    }

    #[test]
    fn basic_structure_and_spans() {
        let f = parse_file("fn main() {\n    let x = 1;\n}\n").unwrap();
        assert_eq!(f.tokens.trees.len(), 4); // fn, main, (), {}
        match &f.tokens.trees[3] {
            TokenTree::Group(g) => {
                assert_eq!(g.delimiter, Delimiter::Brace);
                assert_eq!(g.span.line, 1);
                match &g.stream.trees[1] {
                    TokenTree::Ident(i) => {
                        assert_eq!(i.text, "x");
                        assert_eq!(i.span.line, 2);
                    }
                    other => panic!("expected ident, got {:?}", other),
                }
            }
            other => panic!("expected brace group, got {:?}", other),
        }
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // let a = HashMap::new();
            /* nested /* HashSet */ still comment */
            let s = "std::collections::HashMap { } ) ";
            let r = r#"unbalanced " and } here"#;
        "##;
        let f = parse_file(src).unwrap();
        let ids = idents(&f.tokens);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.iter().any(|i| i.contains("HashMap")));
        assert!(!ids.iter().any(|i| i.contains("HashSet")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let f = parse_file("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }").unwrap();
        let ids = idents(&f.tokens);
        assert_eq!(ids.iter().filter(|i| i.as_str() == "a").count(), 2);
        // 'x' and '\n' became literals, not lifetime puncts + idents.
        let literals = format!("{:?}", f.tokens).matches("Literal").count();
        assert!(literals >= 2);
    }

    #[test]
    fn raw_identifiers() {
        let f = parse_file("let r#fn = 1; let radius = r0;").unwrap();
        let ids = idents(&f.tokens);
        assert!(ids.contains(&"fn".to_string()));
        assert!(ids.contains(&"radius".to_string()));
        assert!(ids.contains(&"r0".to_string()));
    }

    #[test]
    fn unbalanced_is_an_error() {
        assert!(parse_file("fn main() {").is_err());
        assert!(parse_file("fn main() }").is_err());
        assert!(parse_file("let s = \"oops;").is_err());
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let f = parse_file("let a = 1..2; let b = 1.5; let c = x.0; call(3.max(4));").unwrap();
        // The `..` survives as two puncts; `max` survives as an ident.
        let ids = idents(&f.tokens);
        assert!(ids.contains(&"max".to_string()));
    }
}
