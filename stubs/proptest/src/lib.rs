//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, range and tuple strategies,
//! `any`, `prop_map`, `prop_oneof!`, `prop::collection::vec`, and
//! `prop::option::of`. Generation is seeded and deterministic per test
//! (override the base seed with `PROPTEST_SEED`). There is no shrinking: a
//! failing case panics with its case index and seed so it can be replayed
//! deterministically.

use rand::rngs::StdRng;
use std::fmt;
use std::ops::Range;

pub use rand::{Rng, RngCore};

/// The RNG handed to strategies; one per test case.
pub type TestRng = StdRng;

/// Failure raised by `prop_assert*` inside a case body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused; kept so `..ProptestConfig::default()` spreads cleanly when
    /// upstream fields are named.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function (upstream's
    /// `prop_map`; no shrinking here, so it is literally `map`).
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }
}

/// The `Strategy::prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, bool, f64);

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T` (upstream's `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed strategies of one value type; the
/// expansion target of [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `arms`; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Boxing helper for [`prop_oneof!`]; lets inference unify the arm value
/// types without `as` casts in the macro expansion.
#[doc(hidden)]
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform (unweighted) strategy choice. Upstream also accepts
/// `weight => strategy` arms; this offline subset does not.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

/// `Option` strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `None` or a generated `Some`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Option<T>` strategy: `None` one case in four, `Some` otherwise
    /// (upstream defaults to a 1:9 weighting; any fixed mix serves the
    /// offline runner, and a fatter `None` arm hits the edge more).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Constant strategy, always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection size specification: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<E::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and size in `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let range = self.size.0.clone();
            let len = if range.len() <= 1 {
                range.start
            } else {
                rng.gen_range(range)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` paths used in `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Macro/runner plumbing; not part of the public proptest API surface.
#[doc(hidden)]
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Run `config.cases` deterministic cases of `body`, panicking on the
    /// first failure with enough detail to replay it.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_d7ac_0000_0000);
        let name_hash = fnv1a(test_name.as_bytes());
        for case in 0..config.cases {
            let seed = base ^ name_hash ^ ((case as u64) << 32 | case as u64);
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest `{test_name}` failed at case {case}/{} (replay with \
                     PROPTEST_SEED={base}): {e}",
                    config.cases
                );
            }
        }
    }
}

/// The `proptest!` block macro (no-shrinking offline subset).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::runner::run(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __out
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fallible assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?} == {:?}` ({} vs {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fallible inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?} != {:?}` ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_sizes_respect_range(
            v in prop::collection::vec(0u64..100, 5..20),
        ) {
            prop_assert!((5..20).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn fixed_size_vec(
            v in prop::collection::vec(0u64..10, 7),
        ) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn tuple_strategies_compose(
            pairs in prop::collection::vec((0u32..4, 0u64..1000), 1..50),
        ) {
            for (site, item) in &pairs {
                prop_assert!(*site < 4);
                prop_assert!(*item < 1000);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed at case 0")]
    fn failing_case_panics_with_context() {
        crate::proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
