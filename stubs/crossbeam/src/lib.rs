//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` is
//! provided, backed by `std::sync::mpsc`. Semantics used by this workspace
//! (MPSC, blocking `recv`, blocking `send` on a full bounded queue, `Err`
//! on disconnect) are identical; the stub does not provide `select!` or
//! the `Sync` receiver.

pub mod channel {
    use std::sync::mpsc;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected. The
    /// unsent message is handed back (and dropped with the error when the
    /// caller discards it).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// passed with no message, or every sender disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders are gone; no message will ever arrive.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                Tx::Unbounded(tx) => Sender(Tx::Unbounded(tx.clone())),
                Tx::Bounded(tx) => Sender(Tx::Bounded(tx.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver is gone. On a
        /// full bounded channel this blocks until space frees up — that
        /// blocking is the backpressure the threaded runtime relies on.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the queue is currently empty
        /// or the channel is disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Block until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Create a bounded MPSC channel holding at most `cap` queued
    /// messages; `send` blocks while the queue is full. `cap` = 0 is a
    /// rendezvous channel, as in real crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded::<u64>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Queue full: the third send must block until the consumer takes
        // one message, not fail or drop.
        let t0 = std::time::Instant::now();
        let h = {
            let tx = tx.clone();
            std::thread::spawn(move || {
                tx.send(3).unwrap();
                t0.elapsed()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(rx.recv().unwrap(), 1);
        let blocked_for = h.join().unwrap();
        assert!(
            blocked_for >= std::time::Duration::from_millis(25),
            "send returned after {blocked_for:?}; expected it to block on the full queue"
        );
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = unbounded::<u64>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_send_errors_when_receiver_gone() {
        let (tx, rx) = bounded::<u64>(4);
        tx.send(7).unwrap();
        drop(rx);
        assert!(tx.send(8).is_err());
    }
}
