//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! backed by `std::sync::mpsc`. Semantics used by this workspace (unbounded
//! MPSC, blocking `recv`, `Err` on disconnect) are identical; the stub does
//! not provide `select!`, bounded channels, or the `Sync` receiver.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the queue is currently empty
        /// or the channel is disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
