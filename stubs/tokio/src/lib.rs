//! Offline stand-in for the `tokio` crate.
//!
//! Implements the subset this workspace uses, with upstream signatures so
//! swapping in the real crate is a manifest-only change:
//!
//! * `runtime::Builder::new_multi_thread().worker_threads(n).build()` — a
//!   multi-worker executor over a shared injector queue: plain OS threads,
//!   cooperative polling, wakers that re-enqueue their task. No IO or
//!   timer *driver*; see `time` below.
//! * `Runtime::{spawn, block_on}` — `spawn` schedules a task and returns a
//!   `JoinHandle` future; `block_on` drives a future on the calling thread
//!   with a park/unpark waker.
//! * `sync::mpsc::{channel, unbounded_channel}` — async MPSC channels with
//!   `send`/`recv` futures plus the `blocking_send`/`blocking_recv`/
//!   `try_send`/`try_recv` bridge methods sync drivers use.
//! * `sync::Notify` — `notified()`/`notify_one`/`notify_waiters`. Stub
//!   guarantee (matching upstream's documented semantics): a `Notified`
//!   future observes every `notify_waiters` call made *after the future
//!   was created*, even if it is polled for the first time later. This is
//!   what makes the check-then-await watermark idiom race-free:
//!   `let n = notify.notified(); if count() == 0 { return } n.await`.
//! * `time::timeout` — wraps a future with a wall-clock deadline, served
//!   by a lazily-spawned timer thread (no runtime handle needed, like
//!   upstream's default-enabled time driver).
//!
//! Behavioural caveats (recorded in stubs/README.md): the scheduler is a
//! single shared FIFO injector, not upstream's work-stealing deques — task
//! ordering differs but any task that is runnable eventually runs on some
//! worker; a task body that panics is contained (the task is dropped, the
//! worker survives), mirroring upstream's `JoinError`-not-worker-death
//! behaviour.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

pub mod runtime {
    use super::*;

    /// Builder for a [`Runtime`], mirroring upstream's
    /// `runtime::Builder::new_multi_thread()`.
    pub struct Builder {
        worker_threads: usize,
    }

    impl Builder {
        /// A multi-thread scheduler builder.
        pub fn new_multi_thread() -> Builder {
            Builder {
                worker_threads: std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4),
            }
        }

        /// Number of worker threads the runtime will spawn.
        pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
            self.worker_threads = n.max(1);
            self
        }

        /// Upstream's builder has `enable_all` to switch on IO/time
        /// drivers; the stub's timer is always available, so this is a
        /// no-op kept for signature compatibility.
        pub fn enable_all(&mut self) -> &mut Builder {
            self
        }

        /// Build the runtime, spawning its worker threads.
        pub fn build(&mut self) -> std::io::Result<Runtime> {
            Ok(Runtime::with_workers(self.worker_threads))
        }
    }

    /// Task lifecycle states (see `Task::state`).
    const IDLE: u8 = 0;
    const QUEUED: u8 = 1;
    const RUNNING: u8 = 2;
    /// Woken while running: the worker re-enqueues after the poll.
    const NOTIFIED: u8 = 3;
    const DONE: u8 = 4;

    struct Task {
        future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
        state: AtomicU8,
        exec: Weak<Exec>,
    }

    impl Task {
        /// Schedule the task: from IDLE enqueue it, from RUNNING leave a
        /// re-poll note, from QUEUED/NOTIFIED/DONE do nothing.
        fn wake_task(self: &Arc<Task>) {
            loop {
                let state = self.state.load(Ordering::SeqCst);
                let (next, enqueue) = match state {
                    IDLE => (QUEUED, true),
                    RUNNING => (NOTIFIED, false),
                    _ => return,
                };
                if self
                    .state
                    .compare_exchange(state, next, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    if enqueue {
                        if let Some(exec) = self.exec.upgrade() {
                            exec.enqueue(self.clone());
                        }
                    }
                    return;
                }
            }
        }
    }

    // A hand-rolled `Arc<Task>` waker (no external `futures` crate).
    fn task_waker(task: Arc<Task>) -> Waker {
        unsafe fn clone(data: *const ()) -> RawWaker {
            let task = unsafe { Arc::from_raw(data as *const Task) };
            let cloned = task.clone();
            std::mem::forget(task);
            RawWaker::new(Arc::into_raw(cloned) as *const (), &VTABLE)
        }
        unsafe fn wake(data: *const ()) {
            let task = unsafe { Arc::from_raw(data as *const Task) };
            task.wake_task();
        }
        unsafe fn wake_by_ref(data: *const ()) {
            let task = unsafe { Arc::from_raw(data as *const Task) };
            task.wake_task();
            std::mem::forget(task);
        }
        unsafe fn drop_waker(data: *const ()) {
            drop(unsafe { Arc::from_raw(data as *const Task) });
        }
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
        let raw = RawWaker::new(Arc::into_raw(task) as *const (), &VTABLE);
        unsafe { Waker::from_raw(raw) }
    }

    struct Exec {
        queue: Mutex<VecDeque<Arc<Task>>>,
        cv: Condvar,
        shutdown: Mutex<bool>,
    }

    impl Exec {
        fn enqueue(&self, task: Arc<Task>) {
            let mut q = self.queue.lock().unwrap();
            q.push_back(task);
            drop(q);
            self.cv.notify_one();
        }

        fn worker_loop(&self) {
            loop {
                let task = {
                    let mut q = self.queue.lock().unwrap();
                    loop {
                        if let Some(t) = q.pop_front() {
                            break t;
                        }
                        if *self.shutdown.lock().unwrap() {
                            return;
                        }
                        q = self.cv.wait(q).unwrap();
                    }
                };
                self.run_one(&task);
            }
        }

        fn run_one(&self, task: &Arc<Task>) {
            task.state.store(RUNNING, Ordering::SeqCst);
            let waker = task_waker(task.clone());
            let mut cx = Context::from_waker(&waker);
            let mut slot = task.future.lock().unwrap();
            let Some(fut) = slot.as_mut() else {
                task.state.store(DONE, Ordering::SeqCst);
                return;
            };
            // Contain task panics: drop the future (its channel endpoints
            // close, surfacing as disconnects to its peers) and keep the
            // worker alive — upstream parks the panic in a JoinError.
            let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fut.as_mut().poll(&mut cx)
            }));
            match polled {
                Ok(Poll::Ready(())) | Err(_) => {
                    *slot = None;
                    task.state.store(DONE, Ordering::SeqCst);
                }
                Ok(Poll::Pending) => {
                    drop(slot);
                    // Woken mid-poll? Re-enqueue, else go idle. A wake can
                    // land RUNNING→NOTIFIED at any instant between these
                    // two exchanges, so loop until one of them wins.
                    // Giving up after a failed NOTIFIED exchange would do
                    // worse than lose the wakeup: that waker's task Arc
                    // was consumed without an enqueue, so an unresolved
                    // NOTIFIED can be the task's *last* reference — it
                    // would be freed mid-flight and its channel endpoints
                    // would silently disconnect.
                    loop {
                        if task
                            .state
                            .compare_exchange(NOTIFIED, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            self.enqueue(task.clone());
                            break;
                        }
                        if task
                            .state
                            .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// A multi-worker task executor.
    pub struct Runtime {
        exec: Arc<Exec>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl Runtime {
        fn with_workers(n: usize) -> Runtime {
            let exec = Arc::new(Exec {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                shutdown: Mutex::new(false),
            });
            let workers = (0..n)
                .map(|i| {
                    let exec = exec.clone();
                    std::thread::Builder::new()
                        .name(format!("tokio-stub-worker-{i}"))
                        .spawn(move || exec.worker_loop())
                        .expect("spawn runtime worker")
                })
                .collect();
            Runtime { exec, workers }
        }

        /// Number of worker threads serving this runtime.
        pub fn metrics_num_workers(&self) -> usize {
            self.workers.len()
        }

        /// Schedule `future` onto the worker pool.
        pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            let shared = Arc::new(Mutex::new(JoinState {
                result: None,
                waker: None,
                done: false,
            }));
            let slot = shared.clone();
            let task = Arc::new(Task {
                future: Mutex::new(None),
                state: AtomicU8::new(QUEUED),
                exec: Arc::downgrade(&self.exec),
            });
            let wrapped = Box::pin(async move {
                let out = future.await;
                let mut s = slot.lock().unwrap();
                s.result = Some(out);
                s.done = true;
                if let Some(w) = s.waker.take() {
                    w.wake();
                }
            });
            *task.future.lock().unwrap() = Some(wrapped);
            self.exec.enqueue(task);
            JoinHandle { shared }
        }

        /// Drive `future` to completion on the calling thread.
        pub fn block_on<F: Future>(&self, future: F) -> F::Output {
            let parker = Arc::new(ThreadParker {
                state: Mutex::new(false),
                cv: Condvar::new(),
            });
            let waker = parker_waker(parker.clone());
            let mut cx = Context::from_waker(&waker);
            let mut future = std::pin::pin!(future);
            loop {
                match future.as_mut().poll(&mut cx) {
                    Poll::Ready(out) => return out,
                    Poll::Pending => parker.park(),
                }
            }
        }
    }

    impl Drop for Runtime {
        fn drop(&mut self) {
            *self.exec.shutdown.lock().unwrap() = true;
            self.exec.cv.notify_all();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
            // Unfinished tasks are dropped with the queue (their channel
            // endpoints disconnect), matching upstream's shutdown.
            self.exec.queue.lock().unwrap().clear();
        }
    }

    struct ThreadParker {
        state: Mutex<bool>,
        cv: Condvar,
    }

    impl ThreadParker {
        fn park(&self) {
            let mut woken = self.state.lock().unwrap();
            while !*woken {
                woken = self.cv.wait(woken).unwrap();
            }
            *woken = false;
        }

        fn unpark(&self) {
            *self.state.lock().unwrap() = true;
            self.cv.notify_one();
        }
    }

    fn parker_waker(parker: Arc<ThreadParker>) -> Waker {
        unsafe fn clone(data: *const ()) -> RawWaker {
            let p = unsafe { Arc::from_raw(data as *const ThreadParker) };
            let cloned = p.clone();
            std::mem::forget(p);
            RawWaker::new(Arc::into_raw(cloned) as *const (), &VTABLE)
        }
        unsafe fn wake(data: *const ()) {
            let p = unsafe { Arc::from_raw(data as *const ThreadParker) };
            p.unpark();
        }
        unsafe fn wake_by_ref(data: *const ()) {
            let p = unsafe { Arc::from_raw(data as *const ThreadParker) };
            p.unpark();
            std::mem::forget(p);
        }
        unsafe fn drop_waker(data: *const ()) {
            drop(unsafe { Arc::from_raw(data as *const ThreadParker) });
        }
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
        let raw = RawWaker::new(Arc::into_raw(parker) as *const (), &VTABLE);
        unsafe { Waker::from_raw(raw) }
    }

    struct JoinState<T> {
        result: Option<T>,
        waker: Option<Waker>,
        done: bool,
    }

    /// Handle to a spawned task; a future resolving to the task's output.
    /// The stub cannot observe panics through the handle (upstream's
    /// `JoinError`), so the output type is `T` directly — a panicked
    /// task's handle never resolves, and the workspace never joins
    /// handles of fallible tasks.
    pub struct JoinHandle<T> {
        shared: Arc<Mutex<JoinState<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Has the task run to completion?
        pub fn is_finished(&self) -> bool {
            self.shared.lock().unwrap().done
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = T;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
            let mut s = self.shared.lock().unwrap();
            if let Some(out) = s.result.take() {
                return Poll::Ready(out);
            }
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

pub mod sync {
    use super::*;

    pub mod mpsc {
        use super::*;

        /// Error returned when the receiving half has been dropped; hands
        /// the unsent message back.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        /// Error returned by [`Sender::try_send`].
        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The bounded queue is at capacity.
            Full(T),
            /// The receiver is gone.
            Closed(T),
        }

        /// Error returned by `try_recv`.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message is currently queued.
            Empty,
            /// Every sender is gone and the queue is drained.
            Disconnected,
        }

        struct ChanInner<T> {
            queue: VecDeque<T>,
            cap: Option<usize>,
            senders: usize,
            rx_alive: bool,
            recv_waker: Option<Waker>,
            send_wakers: Vec<Waker>,
        }

        struct Chan<T> {
            inner: Mutex<ChanInner<T>>,
            cv: Condvar,
        }

        impl<T> Chan<T> {
            fn wake_receiver(inner: &mut ChanInner<T>) {
                if let Some(w) = inner.recv_waker.take() {
                    w.wake();
                }
            }

            fn wake_senders(&self, inner: &mut ChanInner<T>) {
                for w in inner.send_wakers.drain(..) {
                    w.wake();
                }
                self.cv.notify_all();
            }
        }

        /// Create a bounded channel with space for `cap` messages.
        pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
            assert!(cap > 0, "mpsc::channel capacity must be > 0");
            let chan = Arc::new(Chan {
                inner: Mutex::new(ChanInner {
                    queue: VecDeque::new(),
                    cap: Some(cap),
                    senders: 1,
                    rx_alive: true,
                    recv_waker: None,
                    send_wakers: Vec::new(),
                }),
                cv: Condvar::new(),
            });
            (Sender { chan: chan.clone() }, Receiver { chan })
        }

        /// Create an unbounded channel: sends never block or suspend.
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let chan = Arc::new(Chan {
                inner: Mutex::new(ChanInner {
                    queue: VecDeque::new(),
                    cap: None,
                    senders: 1,
                    rx_alive: true,
                    recv_waker: None,
                    send_wakers: Vec::new(),
                }),
                cv: Condvar::new(),
            });
            (
                UnboundedSender { chan: chan.clone() },
                UnboundedReceiver { chan },
            )
        }

        /// Sending half of a bounded channel.
        pub struct Sender<T> {
            chan: Arc<Chan<T>>,
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                self.chan.inner.lock().unwrap().senders += 1;
                Sender {
                    chan: self.chan.clone(),
                }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut inner = self.chan.inner.lock().unwrap();
                inner.senders -= 1;
                if inner.senders == 0 {
                    Chan::wake_receiver(&mut inner);
                    self.chan.cv.notify_all();
                }
            }
        }

        impl<T> Sender<T> {
            /// Async send: suspends the task while the queue is full.
            pub fn send(&self, value: T) -> SendFuture<'_, T> {
                SendFuture {
                    chan: &self.chan,
                    value: Some(value),
                }
            }

            /// Non-suspending send attempt.
            pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
                let mut inner = self.chan.inner.lock().unwrap();
                if !inner.rx_alive {
                    return Err(TrySendError::Closed(value));
                }
                if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                    return Err(TrySendError::Full(value));
                }
                inner.queue.push_back(value);
                Chan::wake_receiver(&mut inner);
                Ok(())
            }

            /// Blocking send from a synchronous (non-worker) thread; parks
            /// the OS thread while the queue is full — this is the
            /// backpressure edge sync drivers feel.
            pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
                let mut inner = self.chan.inner.lock().unwrap();
                loop {
                    if !inner.rx_alive {
                        return Err(SendError(value));
                    }
                    if inner.cap.is_none_or(|c| inner.queue.len() < c) {
                        inner.queue.push_back(value);
                        Chan::wake_receiver(&mut inner);
                        return Ok(());
                    }
                    inner = self.chan.cv.wait(inner).unwrap();
                }
            }
        }

        /// Future returned by [`Sender::send`].
        pub struct SendFuture<'a, T> {
            chan: &'a Chan<T>,
            value: Option<T>,
        }

        impl<T> Future for SendFuture<'_, T> {
            type Output = Result<(), SendError<T>>;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let this = unsafe { self.get_unchecked_mut() };
                let mut inner = this.chan.inner.lock().unwrap();
                let value = this.value.take().expect("polled after completion");
                if !inner.rx_alive {
                    return Poll::Ready(Err(SendError(value)));
                }
                if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                    this.value = Some(value);
                    inner.send_wakers.push(cx.waker().clone());
                    return Poll::Pending;
                }
                inner.queue.push_back(value);
                Chan::wake_receiver(&mut inner);
                Poll::Ready(Ok(()))
            }
        }

        /// Receiving half of a bounded channel (single consumer).
        pub struct Receiver<T> {
            chan: Arc<Chan<T>>,
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                // Match upstream: closing the receiver destroys buffered
                // values. The drain is moved outside the lock so a value
                // whose own Drop touches channel state cannot deadlock.
                let orphaned;
                {
                    let mut inner = self.chan.inner.lock().unwrap();
                    inner.rx_alive = false;
                    orphaned = std::mem::take(&mut inner.queue);
                    let chan = &self.chan;
                    chan.wake_senders(&mut inner);
                }
                drop(orphaned);
            }
        }

        impl<T> Receiver<T> {
            /// Async receive: resolves `None` once every sender is gone
            /// and the queue is drained.
            pub fn recv(&mut self) -> RecvFuture<'_, T> {
                RecvFuture { chan: &self.chan }
            }

            /// Non-suspending receive attempt.
            pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
                let mut inner = self.chan.inner.lock().unwrap();
                if let Some(v) = inner.queue.pop_front() {
                    self.chan.wake_senders(&mut inner);
                    return Ok(v);
                }
                if inner.senders == 0 {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }

            /// Blocking receive from a synchronous thread.
            pub fn blocking_recv(&mut self) -> Option<T> {
                let mut inner = self.chan.inner.lock().unwrap();
                loop {
                    if let Some(v) = inner.queue.pop_front() {
                        self.chan.wake_senders(&mut inner);
                        return Some(v);
                    }
                    if inner.senders == 0 {
                        return None;
                    }
                    inner = self.chan.cv.wait(inner).unwrap();
                }
            }
        }

        /// Future returned by [`Receiver::recv`].
        pub struct RecvFuture<'a, T> {
            chan: &'a Chan<T>,
        }

        impl<T> Future for RecvFuture<'_, T> {
            type Output = Option<T>;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut inner = self.chan.inner.lock().unwrap();
                if let Some(v) = inner.queue.pop_front() {
                    self.chan.wake_senders(&mut inner);
                    return Poll::Ready(Some(v));
                }
                if inner.senders == 0 {
                    return Poll::Ready(None);
                }
                inner.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        /// Sending half of an unbounded channel; sends are synchronous.
        pub struct UnboundedSender<T> {
            chan: Arc<Chan<T>>,
        }

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                self.chan.inner.lock().unwrap().senders += 1;
                UnboundedSender {
                    chan: self.chan.clone(),
                }
            }
        }

        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                let mut inner = self.chan.inner.lock().unwrap();
                inner.senders -= 1;
                if inner.senders == 0 {
                    Chan::wake_receiver(&mut inner);
                    self.chan.cv.notify_all();
                }
            }
        }

        impl<T> UnboundedSender<T> {
            /// Enqueue without blocking or suspending — the property the
            /// cycle-breaking inbox edges rely on.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                let mut inner = self.chan.inner.lock().unwrap();
                if !inner.rx_alive {
                    return Err(SendError(value));
                }
                inner.queue.push_back(value);
                Chan::wake_receiver(&mut inner);
                self.chan.cv.notify_all();
                Ok(())
            }
        }

        /// Receiving half of an unbounded channel (single consumer).
        pub struct UnboundedReceiver<T> {
            chan: Arc<Chan<T>>,
        }

        impl<T> Drop for UnboundedReceiver<T> {
            fn drop(&mut self) {
                // See `Receiver::drop`: buffered values die with the
                // receiver, outside the lock.
                let orphaned;
                {
                    let mut inner = self.chan.inner.lock().unwrap();
                    inner.rx_alive = false;
                    orphaned = std::mem::take(&mut inner.queue);
                    let chan = &self.chan;
                    chan.wake_senders(&mut inner);
                }
                drop(orphaned);
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Async receive; see [`Receiver::recv`].
            pub fn recv(&mut self) -> RecvFuture<'_, T> {
                RecvFuture { chan: &self.chan }
            }

            /// Non-suspending receive attempt.
            pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
                let mut inner = self.chan.inner.lock().unwrap();
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }

            /// Blocking receive from a synchronous thread.
            pub fn blocking_recv(&mut self) -> Option<T> {
                let mut inner = self.chan.inner.lock().unwrap();
                loop {
                    if let Some(v) = inner.queue.pop_front() {
                        return Some(v);
                    }
                    if inner.senders == 0 {
                        return None;
                    }
                    inner = self.chan.cv.wait(inner).unwrap();
                }
            }
        }
    }

    /// Notify a task (or many) that an event occurred.
    ///
    /// Stub guarantee: a [`Notified`] future snapshots the notification
    /// generation **at creation**, and completes once either a stored
    /// `notify_one` permit is consumed or `notify_waiters` has been called
    /// after that snapshot — even when the future's first poll happens
    /// later. The check-then-await watermark idiom is therefore race-free.
    pub struct Notify {
        state: Mutex<NotifyState>,
    }

    struct NotifyState {
        generation: u64,
        permits: usize,
        waiters: Vec<Waker>,
    }

    impl Default for Notify {
        fn default() -> Self {
            Notify::new()
        }
    }

    impl Notify {
        /// A new notifier with no stored permit.
        pub fn new() -> Notify {
            Notify {
                state: Mutex::new(NotifyState {
                    generation: 0,
                    permits: 0,
                    waiters: Vec::new(),
                }),
            }
        }

        /// A future that completes on the next notification.
        pub fn notified(&self) -> Notified<'_> {
            let state = self.state.lock().unwrap();
            Notified {
                notify: self,
                snapshot: state.generation,
            }
        }

        /// Wake one waiter, or store a permit for the next one.
        pub fn notify_one(&self) {
            let mut state = self.state.lock().unwrap();
            state.generation += 1;
            state.permits = state.permits.saturating_add(1);
            if let Some(w) = state.waiters.pop() {
                w.wake();
            }
        }

        /// Wake every current waiter; stores no permit.
        pub fn notify_waiters(&self) {
            let mut state = self.state.lock().unwrap();
            state.generation += 1;
            for w in state.waiters.drain(..) {
                w.wake();
            }
        }
    }

    /// Future returned by [`Notify::notified`].
    pub struct Notified<'a> {
        notify: &'a Notify,
        snapshot: u64,
    }

    impl Future for Notified<'_> {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let mut state = self.notify.state.lock().unwrap();
            if state.permits > 0 {
                state.permits -= 1;
                return Poll::Ready(());
            }
            if state.generation > self.snapshot {
                return Poll::Ready(());
            }
            state.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

pub mod time {
    use super::*;
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    /// Error returned by [`timeout`] when the deadline passes first.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Elapsed(());

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    struct TimerEntry {
        fired: Mutex<bool>,
        waker: Mutex<Option<Waker>>,
    }

    struct Timer {
        entries: Mutex<Vec<(Instant, Arc<TimerEntry>)>>,
        cv: Condvar,
    }

    impl Timer {
        fn register(&self, deadline: Instant, entry: Arc<TimerEntry>) {
            self.entries.lock().unwrap().push((deadline, entry));
            self.cv.notify_one();
        }

        fn run(&self) {
            let mut entries = self.entries.lock().unwrap();
            loop {
                let now = Instant::now();
                let mut due = Vec::new();
                entries.retain(|(deadline, entry)| {
                    if *deadline <= now {
                        due.push(entry.clone());
                        false
                    } else {
                        true
                    }
                });
                if !due.is_empty() {
                    drop(entries);
                    for entry in due {
                        *entry.fired.lock().unwrap() = true;
                        if let Some(w) = entry.waker.lock().unwrap().take() {
                            w.wake();
                        }
                    }
                    entries = self.entries.lock().unwrap();
                    continue;
                }
                match entries.iter().map(|(d, _)| *d).min() {
                    Some(next) => {
                        let wait = next.saturating_duration_since(now);
                        entries = self.cv.wait_timeout(entries, wait).unwrap().0;
                    }
                    None => entries = self.cv.wait(entries).unwrap(),
                }
            }
        }
    }

    fn timer() -> &'static Timer {
        static TIMER: OnceLock<&'static Timer> = OnceLock::new();
        TIMER.get_or_init(|| {
            let timer: &'static Timer = Box::leak(Box::new(Timer {
                entries: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            }));
            std::thread::Builder::new()
                .name("tokio-stub-timer".to_owned())
                .spawn(move || timer.run())
                .expect("spawn timer thread");
            timer
        })
    }

    /// Require `future` to complete within `duration`.
    pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
        Timeout {
            future,
            duration,
            entry: None,
        }
    }

    /// Future returned by [`timeout`].
    pub struct Timeout<F> {
        future: F,
        duration: Duration,
        entry: Option<Arc<TimerEntry>>,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, Elapsed>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = unsafe { self.get_unchecked_mut() };
            let inner = unsafe { Pin::new_unchecked(&mut this.future) };
            if let Poll::Ready(out) = inner.poll(cx) {
                return Poll::Ready(Ok(out));
            }
            match &this.entry {
                None => {
                    let entry = Arc::new(TimerEntry {
                        fired: Mutex::new(false),
                        waker: Mutex::new(Some(cx.waker().clone())),
                    });
                    timer().register(Instant::now() + this.duration, entry.clone());
                    this.entry = Some(entry);
                }
                Some(entry) => {
                    if *entry.fired.lock().unwrap() {
                        return Poll::Ready(Err(Elapsed(())));
                    }
                    *entry.waker.lock().unwrap() = Some(cx.waker().clone());
                }
            }
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::runtime::Builder;
    use super::sync::{mpsc, Notify};
    use super::time;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn rt(workers: usize) -> super::runtime::Runtime {
        Builder::new_multi_thread()
            .worker_threads(workers)
            .enable_all()
            .build()
            .expect("runtime")
    }

    #[test]
    fn spawned_tasks_run_on_the_pool_and_join() {
        let rt = rt(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let c = counter.clone();
                rt.spawn(async move {
                    c.fetch_add(1, Ordering::SeqCst);
                    7u64
                })
            })
            .collect();
        for h in handles {
            assert_eq!(rt.block_on(h), 7);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(rt.metrics_num_workers(), 3);
    }

    #[test]
    fn bounded_channel_backpressures_and_delivers_in_order() {
        let rt = rt(2);
        let (tx, mut rx) = mpsc::channel::<u32>(2);
        // Async producer pushing past capacity: must suspend, not lose.
        let producer = rt.spawn(async move {
            for i in 0..100 {
                tx.send(i).await.expect("receiver alive");
            }
        });
        let drained = rt.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        rt.block_on(producer);
        let got = rt.block_on(drained);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_parks_until_the_pool_drains() {
        let rt = rt(1);
        let (tx, mut rx) = mpsc::channel::<u32>(1);
        let consumer = rt.spawn(async move {
            let mut sum = 0u64;
            while let Some(v) = rx.recv().await {
                sum += v as u64;
            }
            sum
        });
        for i in 0..50 {
            tx.blocking_send(i).expect("receiver alive");
        }
        drop(tx);
        assert_eq!(rt.block_on(consumer), (0..50).sum::<u64>());
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, mut rx) = mpsc::channel::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(mpsc::TrySendError::Full(2))));
        assert_eq!(rx.try_recv(), Ok(1));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(mpsc::TrySendError::Closed(3))));
    }

    #[test]
    fn receiver_drop_destroys_buffered_values() {
        // Quiescence tokens ride inside queued commands; a dead task's
        // queue must release them, so receiver drop drains the buffer.
        #[derive(Debug)]
        struct Token(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Token {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));

        let (tx, rx) = mpsc::channel::<Token>(8);
        tx.try_send(Token(drops.clone())).unwrap();
        tx.try_send(Token(drops.clone())).unwrap();
        drop(rx);
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 2);

        let (utx, urx) = mpsc::unbounded_channel::<Token>();
        utx.send(Token(drops.clone())).unwrap();
        drop(urx);
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn unbounded_send_never_suspends() {
        let rt = rt(2);
        let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
        for i in 0..10_000 {
            tx.send(i).expect("receiver alive");
        }
        drop(tx);
        let got = rt.block_on(async move {
            let mut n = 0u32;
            while rx.recv().await.is_some() {
                n += 1;
            }
            n
        });
        assert_eq!(got, 10_000);
    }

    #[test]
    fn notified_watermark_is_race_free() {
        // The documented stub guarantee: a Notified created before
        // notify_waiters completes even if first polled afterwards.
        let rt = rt(2);
        let notify = Arc::new(Notify::new());
        let fut = notify.notified();
        notify.notify_waiters();
        rt.block_on(fut);
        // And notify_one stores a permit for a future created later.
        let notify2 = Arc::new(Notify::new());
        notify2.notify_one();
        rt.block_on(notify2.notified());
    }

    #[test]
    fn timeout_expires_and_passes_through() {
        let rt = rt(1);
        let notify = Arc::new(Notify::new());
        let expired = rt.block_on(time::timeout(Duration::from_millis(20), notify.notified()));
        assert!(expired.is_err());
        let ok = rt.block_on(time::timeout(Duration::from_secs(5), async { 42 }));
        assert_eq!(ok, Ok(42));
    }

    #[test]
    fn task_panic_is_contained() {
        let rt = rt(1);
        let (tx, mut rx) = mpsc::unbounded_channel::<u8>();
        rt.spawn(async move {
            let _hold = tx;
            panic!("task dies, worker survives");
        });
        // The panicked task's sender is dropped, so recv sees disconnect
        // instead of the whole pool wedging.
        assert_eq!(rt.block_on(async move { rx.recv().await }), None);
        // The lone worker is still alive to serve new tasks.
        assert_eq!(rt.block_on(rt.spawn(async { 5u8 })), 5);
    }
}
