//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `Throughput`, `BatchSize`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistics engine.
//! Each benchmark reports the best-of-samples time per iteration (and
//! throughput when declared). Set `CRITERION_STUB_SAMPLES` to change the
//! sample count (default 10, matching the workspace's configured
//! `sample_size`).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; sizing hints are ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (used inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u32,
    best: Option<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Bencher {
            samples,
            best: None,
            iters_per_sample: 1,
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let per_iter = elapsed / iters.max(1) as u32;
        if self.best.is_none_or(|b| per_iter < b) {
            self.best = Some(per_iter);
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let iters = self.iters_per_sample;
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.record(start.elapsed(), iters);
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup not timed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed(), 1);
        }
    }

    /// Like [`Self::iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.record(start.elapsed(), 1);
        }
    }
}

fn env_samples(default: u32) -> u32 {
    std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some(best) = bencher.best else {
        println!("{id:<40} (no samples)");
        return;
    };
    let nanos = best.as_nanos().max(1);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / best.as_secs_f64();
            println!("{id:<40} {nanos:>12} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / best.as_secs_f64();
            println!("{id:<40} {nanos:>12} ns/iter {rate:>14.0} B/s");
        }
        None => println!("{id:<40} {nanos:>12} ns/iter"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u32;
        self
    }

    /// Upstream parses CLI args here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn samples(&self) -> u32 {
        env_samples(self.sample_size)
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples());
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.samples());
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.samples());
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a group of benchmark functions, optionally with a configured
/// `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter_batched(
                || vec![n; 10],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }

    #[test]
    fn configured_group_runs() {
        criterion_group!(
            name = configured;
            config = Criterion::default().sample_size(3);
            targets = sample_bench
        );
        configured();
    }
}
