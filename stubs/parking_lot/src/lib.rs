//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` with the poison-free `lock()` signature, backed by
//! `std::sync::Mutex`. A poisoned std lock is recovered transparently,
//! matching parking_lot's behaviour of not poisoning at all.

use std::sync::MutexGuard;

/// Poison-free mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, never failing on poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_excludes_concurrent_writers() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
