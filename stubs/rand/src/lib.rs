//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this stub
//! provides the exact API subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`,
//! and `gen_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic and statistically solid, but NOT a drop-in bit-for-bit
//! replacement for upstream `StdRng` (which is ChaCha12). Everything in
//! this workspace only relies on seeded determinism, not on the exact
//! stream, so swapping the real crate back in changes workload bytes but
//! no guarantees.

use std::ops::Range;

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, matching the subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly; covers the `gen_range` argument types used
/// in this workspace.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Lemire's unbiased-enough widening-multiply bounded sample.
#[inline]
fn bounded_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize);

/// Seedable deterministic generator (xoshiro256++).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
