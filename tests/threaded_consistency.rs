//! The deterministic runner and the threaded runtime must produce
//! identical answers and identical communication on identical
//! one-item-at-a-time schedules (feeding then settling serializes the
//! threaded runtime into the same global order).

use dtrack::core::hh::{HhConfig, HhCoordinator, HhSite};
use dtrack::prelude::*;
use dtrack::sim::threaded::ThreadedCluster;
use dtrack::workload::{RoundRobin, Stream, Zipf};

#[test]
fn threaded_matches_deterministic_serialized() {
    let k = 4;
    let epsilon = 0.1;
    let config = HhConfig::new(k, epsilon).unwrap();
    let stream: Vec<(SiteId, u64)> = Stream::new(
        Zipf::new(1 << 14, 1.4, 7),
        RoundRobin::new(k),
        30_000,
    )
    .collect();

    // Deterministic run.
    let mut det = dtrack::core::hh::exact_cluster(config).unwrap();
    det.feed_stream(stream.iter().copied()).unwrap();
    let det_words = det.meter().total_words();
    let det_msgs = det.meter().total_messages();
    let det_hh = det.coordinator().heavy_hitters(0.1).unwrap();
    let det_m = det.coordinator().global_count();

    // Threaded run, serialized by settling after every item.
    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();
    for &(site, item) in &stream {
        threaded.feed(site, item).unwrap();
        threaded.settle();
    }
    let thr_hh = threaded
        .with_coordinator(|c| c.heavy_hitters(0.1).unwrap())
        .unwrap();
    let thr_m = threaded.with_coordinator(|c| c.global_count()).unwrap();
    let (_, _, meter) = threaded.shutdown().unwrap();

    assert_eq!(det_hh, thr_hh, "answers diverge");
    assert_eq!(det_m, thr_m, "tracked counts diverge");
    assert_eq!(det_words, meter.total_words(), "word counts diverge");
    assert_eq!(det_msgs, meter.total_messages(), "message counts diverge");
}

#[test]
fn threaded_concurrent_feeding_still_correct() {
    // Without per-item settling, arrivals interleave with in-flight
    // communication; the ε-guarantee must still hold at quiescence
    // (the protocol is trigger-based, not order-based).
    let k = 4;
    let epsilon = 0.1;
    let phi = 0.2;
    let config = HhConfig::new(k, epsilon).unwrap();
    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();

    let stream: Vec<(SiteId, u64)> = Stream::new(
        Zipf::new(1 << 14, 1.5, 9),
        RoundRobin::new(k),
        40_000,
    )
    .collect();
    let mut oracle = ExactOracle::new();
    for &(site, item) in &stream {
        oracle.observe(item);
        threaded.feed(site, item).unwrap();
    }
    threaded.settle();
    let reported = threaded
        .with_coordinator(move |c| c.heavy_hitters(phi).unwrap())
        .unwrap();
    // Concurrency can reorder deltas between sites, so allow the full 2ε
    // slack rather than the serialized ε.
    if let Some(v) = oracle.check_heavy_hitters(&reported, phi, 2.0 * epsilon) {
        panic!("threaded run violated the guarantee: {v}");
    }
    threaded.shutdown().unwrap();
}
