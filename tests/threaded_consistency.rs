//! The deterministic runner and the threaded runtime must produce
//! identical answers and identical communication on identical
//! one-item-at-a-time schedules (feeding then settling serializes the
//! threaded runtime into the same global order).

use dtrack::core::hh::{HhConfig, HhCoordinator, HhSite};
use dtrack::core::quantile::{QuantileCoordinator, QuantileSite};
use dtrack::prelude::*;
use dtrack::sim::threaded::ThreadedCluster;
use dtrack::workload::{RoundRobin, Stream, Zipf};
use dtrack_testkit::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};

#[test]
fn threaded_matches_deterministic_serialized() {
    let k = 4;
    let epsilon = 0.1;
    let config = HhConfig::new(k, epsilon).unwrap();
    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 14, 1.4, 7), RoundRobin::new(k), 30_000).collect();

    // Deterministic run.
    let mut det = dtrack::core::hh::exact_cluster(config).unwrap();
    det.feed_stream(stream.iter().copied()).unwrap();
    let det_words = det.meter().total_words();
    let det_msgs = det.meter().total_messages();
    let det_hh = det.coordinator().heavy_hitters(0.1).unwrap();
    let det_m = det.coordinator().global_count();

    // Threaded run, serialized by settling after every item.
    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();
    for &(site, item) in &stream {
        threaded.feed(site, item).unwrap();
        threaded.settle();
    }
    let thr_hh = threaded
        .with_coordinator(|c| c.heavy_hitters(0.1).unwrap())
        .unwrap();
    let thr_m = threaded.with_coordinator(|c| c.global_count()).unwrap();
    let (_, _, meter) = threaded.shutdown().unwrap();

    assert_eq!(det_hh, thr_hh, "answers diverge");
    assert_eq!(det_m, thr_m, "tracked counts diverge");
    assert_eq!(det_words, meter.total_words(), "word counts diverge");
    assert_eq!(det_msgs, meter.total_messages(), "message counts diverge");
}

/// The same seeded scenario stream through both runtimes (serialized by
/// settling after every item) must report identical final answers and
/// identical metered cost — for every workload/assignment shape in the
/// testkit axes, not just the round-robin Zipf of the test above.
#[test]
fn threaded_matches_deterministic_across_seeded_workloads() {
    let k = 4;
    let epsilon = 0.1;
    let workloads = [
        (
            GeneratorSpec::Uniform { universe: 1 << 30 },
            AssignmentSpec::UniformSites,
        ),
        (
            GeneratorSpec::ShiftingZipf {
                universe: 1 << 16,
                s: 1.3,
                shift_every: 2_000,
            },
            AssignmentSpec::SkewedSites { s: 1.3 },
        ),
        (
            GeneratorSpec::TwoPhaseDrift {
                band: 1 << 16,
                switch_at: 4_000,
            },
            AssignmentSpec::Bursts { burst_len: 53 },
        ),
    ];
    for (seed, (generator, assignment)) in workloads.into_iter().enumerate() {
        let scenario = Scenario::new(
            generator,
            assignment,
            k,
            epsilon,
            8_000,
            100 + seed as u64,
            ProtocolSpec::HhExact,
        );
        let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
        let config = HhConfig::new(k, epsilon).unwrap();

        let mut det = dtrack::core::hh::exact_cluster(config).unwrap();
        det.feed_stream(stream.iter().copied()).unwrap();

        let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
        let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();
        for &(site, item) in &stream {
            threaded.feed(site, item).unwrap();
            threaded.settle();
        }
        let thr_hh = threaded
            .with_coordinator(|c| c.heavy_hitters(0.15).unwrap())
            .unwrap();
        let thr_m = threaded.with_coordinator(|c| c.global_count()).unwrap();
        let (_, _, meter) = threaded.shutdown().unwrap();

        let name = scenario.to_string();
        assert_eq!(
            det.coordinator().heavy_hitters(0.15).unwrap(),
            thr_hh,
            "[{name}] answers diverge"
        );
        assert_eq!(
            det.coordinator().global_count(),
            thr_m,
            "[{name}] tracked counts diverge"
        );
        assert_eq!(
            det.meter().total_words(),
            meter.total_words(),
            "[{name}] word counts diverge"
        );
        assert_eq!(
            det.meter().total_messages(),
            meter.total_messages(),
            "[{name}] message counts diverge"
        );
    }
}

/// Same consistency regression for the quantile protocol: both runtimes
/// must land on the identical tracked median and identical cost.
#[test]
fn threaded_matches_deterministic_for_quantile() {
    let k = 4;
    let epsilon = 0.1;
    let config = QuantileConfig::median(k, epsilon)
        .unwrap()
        .with_warmup_target(500);
    let scenario = Scenario::new(
        GeneratorSpec::Zipf {
            universe: 1 << 20,
            s: 1.2,
        },
        AssignmentSpec::RoundRobin,
        k,
        epsilon,
        10_000,
        33,
        ProtocolSpec::QuantileExact { phi: 0.5 },
    );
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();

    let mut det = dtrack::core::quantile::exact_cluster(config).unwrap();
    det.feed_stream(stream.iter().copied()).unwrap();

    let sites: Vec<_> = (0..k).map(|_| QuantileSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, QuantileCoordinator::new(config)).unwrap();
    for &(site, item) in &stream {
        threaded.feed(site, item).unwrap();
        threaded.settle();
    }
    let thr_q = threaded.with_coordinator(|c| c.quantile()).unwrap();
    let thr_n = threaded.with_coordinator(|c| c.n_estimate()).unwrap();
    let (_, _, meter) = threaded.shutdown().unwrap();

    assert_eq!(det.coordinator().quantile(), thr_q, "medians diverge");
    assert_eq!(det.coordinator().n_estimate(), thr_n, "n estimates diverge");
    assert_eq!(det.meter().total_words(), meter.total_words());
    assert_eq!(det.meter().total_messages(), meter.total_messages());
}

/// And for the counter: identical estimate, identical cost.
#[test]
fn threaded_matches_deterministic_for_counter() {
    let k = 3;
    let epsilon = 0.05;
    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 20, 1.3, 21), RoundRobin::new(k), 20_000).collect();

    let sites = (0..k).map(|_| CounterSite::new(epsilon).unwrap()).collect();
    let mut det = Cluster::new(sites, CounterCoordinator::new()).unwrap();
    det.feed_stream(stream.iter().copied()).unwrap();

    let sites: Vec<_> = (0..k).map(|_| CounterSite::new(epsilon).unwrap()).collect();
    let threaded = ThreadedCluster::spawn(sites, CounterCoordinator::new()).unwrap();
    for &(site, item) in &stream {
        threaded.feed(site, item).unwrap();
        threaded.settle();
    }
    let thr_est = threaded.with_coordinator(|c| c.estimate()).unwrap();
    let (_, _, meter) = threaded.shutdown().unwrap();

    assert_eq!(det.coordinator().estimate(), thr_est, "estimates diverge");
    assert_eq!(det.meter().total_words(), meter.total_words());
    assert_eq!(det.meter().total_messages(), meter.total_messages());
}

/// `ThreadedCluster::feed_batch` (site-at-a-time, internally settled per
/// quiescent run) must reproduce the deterministic `Cluster::feed_batch`
/// transcript without the caller settling per item — this is the fast
/// transcript-identical path the testkit equivalence suite drives over
/// the whole matrix; here it is pinned at the integration level.
#[test]
fn threaded_feed_batch_matches_deterministic() {
    let k = 4;
    let epsilon = 0.1;
    let config = HhConfig::new(k, epsilon).unwrap();
    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 14, 1.4, 7), RoundRobin::new(k), 30_000).collect();

    let mut det = dtrack::core::hh::exact_cluster(config).unwrap();
    det.feed_batch(&stream).unwrap();

    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();
    threaded.feed_batch(&stream).unwrap();
    threaded.settle();
    let (coord, _, meter) = threaded.shutdown().unwrap();

    assert_eq!(
        det.coordinator().heavy_hitters(0.1).unwrap(),
        coord.heavy_hitters(0.1).unwrap(),
        "answers diverge"
    );
    assert_eq!(
        det.coordinator().global_count(),
        coord.global_count(),
        "tracked counts diverge"
    );
    assert_eq!(det.meter().total_words(), meter.total_words());
    assert_eq!(det.meter().total_messages(), meter.total_messages());
}

/// Free-running batched ingest (`ingest_run`) trades the deterministic
/// transcript for parallel throughput; the ε-guarantee must still hold at
/// quiescence. Same 2ε slack as the per-item concurrent test: deltas can
/// reorder between sites.
#[test]
fn threaded_parallel_ingest_still_correct() {
    let k = 4;
    let epsilon = 0.1;
    let phi = 0.2;
    let config = HhConfig::new(k, epsilon).unwrap();
    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();

    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 14, 1.5, 9), RoundRobin::new(k), 40_000).collect();
    let mut oracle = ExactOracle::new();
    // One-run window per site so no site races unboundedly far ahead of
    // coordinator feedback (see `ingest_run` docs).
    let mut tickets: Vec<Option<dtrack::sim::threaded::RunTicket>> =
        (0..k as usize).map(|_| None).collect();
    let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k as usize];
    for part in stream.chunks(512) {
        for &(site, item) in part {
            oracle.observe(item);
            per_site[site.index()].push(item);
        }
        for (i, items) in per_site.iter_mut().enumerate() {
            if !items.is_empty() {
                if let Some(t) = tickets[i].take() {
                    t.wait().unwrap();
                }
                tickets[i] = Some(
                    threaded
                        .ingest_run(SiteId(i as u32), std::mem::take(items))
                        .unwrap(),
                );
            }
        }
    }
    for t in tickets.into_iter().flatten() {
        t.wait().unwrap();
    }
    threaded.settle();
    let reported = threaded
        .with_coordinator(move |c| c.heavy_hitters(phi).unwrap())
        .unwrap();
    if let Some(v) = oracle.check_heavy_hitters(&reported, phi, 2.0 * epsilon) {
        panic!("parallel batched ingest violated the guarantee: {v}");
    }
    threaded.shutdown().unwrap();
}

/// The sharded work-stealing pool at the integration level: far more
/// logical sites than workers, driven through the bare cluster with
/// `feed_batch` — answers and metered cost must match the deterministic
/// runner bit-for-bit, because site-runs are served whole and in FIFO
/// order no matter which worker picks them up.
#[test]
fn sharded_feed_batch_matches_deterministic_at_high_k() {
    use dtrack::sim::sharded::{ShardedCluster, ShardedConfig};
    let k = 24;
    let epsilon = 0.1;
    let config = HhConfig::new(k, epsilon).unwrap();
    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 14, 1.4, 7), RoundRobin::new(k), 30_000).collect();

    let mut det = dtrack::core::hh::exact_cluster(config).unwrap();
    det.feed_batch(&stream).unwrap();

    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let sharded = ShardedCluster::spawn_with(
        sites,
        HhCoordinator::new(config),
        ShardedConfig {
            workers: Some(3),
            ..ShardedConfig::default()
        },
    )
    .unwrap();
    sharded.feed_batch(&stream).unwrap();
    sharded.settle();
    let (coord, _, meter) = sharded.shutdown().unwrap();

    assert_eq!(
        det.coordinator().heavy_hitters(0.1).unwrap(),
        coord.heavy_hitters(0.1).unwrap(),
        "answers diverge"
    );
    assert_eq!(
        det.coordinator().global_count(),
        coord.global_count(),
        "tracked counts diverge"
    );
    assert_eq!(det.meter().total_words(), meter.total_words());
    assert_eq!(det.meter().total_messages(), meter.total_messages());
}

/// Free-running parallel ingest on the sharded pool (k ≫ workers): the
/// ε-guarantee must hold at quiescence with the same 2ε slack as the
/// threaded concurrent tests — through the `Tracker` facade, which owns
/// the one-run-per-site ticket window.
#[test]
fn sharded_parallel_ingest_still_correct_at_high_k() {
    let k = 32u32;
    let epsilon = 0.1;
    let phi = 0.2;
    let config = HhConfig::new(k, epsilon).unwrap();
    let mut tracker = Tracker::builder()
        .backend(BackendKind::Sharded { workers: Some(4) })
        .protocol(HhExactProtocol::new(config))
        .build()
        .unwrap();
    assert_eq!(tracker.num_sites(), k);

    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 14, 1.5, 9), RoundRobin::new(k), 40_000).collect();
    let mut oracle = ExactOracle::new();
    let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k as usize];
    for part in stream.chunks(128 * k as usize) {
        for &(site, item) in part {
            oracle.observe(item);
            per_site[site.index()].push(item);
        }
        for (i, items) in per_site.iter_mut().enumerate() {
            if !items.is_empty() {
                tracker
                    .ingest(SiteId(i as u32), std::mem::take(items))
                    .unwrap();
            }
        }
    }
    tracker.settle();
    let reported = match tracker.query(Query::HeavyHitters { phi }).unwrap() {
        Answer::HeavyHitters { items, .. } => items,
        other => panic!("unexpected answer {other}"),
    };
    if let Some(v) = oracle.check_heavy_hitters(&reported, phi, 2.0 * epsilon) {
        panic!("sharded parallel ingest violated the guarantee: {v}");
    }
    tracker.finish().unwrap();
}

#[test]
fn threaded_concurrent_feeding_still_correct() {
    // Without per-item settling, arrivals interleave with in-flight
    // communication; the ε-guarantee must still hold at quiescence
    // (the protocol is trigger-based, not order-based).
    let k = 4;
    let epsilon = 0.1;
    let phi = 0.2;
    let config = HhConfig::new(k, epsilon).unwrap();
    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let threaded = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).unwrap();

    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 14, 1.5, 9), RoundRobin::new(k), 40_000).collect();
    let mut oracle = ExactOracle::new();
    for &(site, item) in &stream {
        oracle.observe(item);
        threaded.feed(site, item).unwrap();
    }
    threaded.settle();
    let reported = threaded
        .with_coordinator(move |c| c.heavy_hitters(phi).unwrap())
        .unwrap();
    // Concurrency can reorder deltas between sites, so allow the full 2ε
    // slack rather than the serialized ε.
    if let Some(v) = oracle.check_heavy_hitters(&reported, phi, 2.0 * epsilon) {
        panic!("threaded run violated the guarantee: {v}");
    }
    threaded.shutdown().unwrap();
}
