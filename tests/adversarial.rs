//! The lower-bound constructions run through the full protocols: the
//! protocols must stay correct while paying the forced cost, and the
//! forced cost must display the Ω(k/ε·log n) shape.

use dtrack::adversary::{HhLowerBound, MedianLowerBound, ThresholdAdversary};
use dtrack::core::hh::HhConfig;
use dtrack::core::quantile::QuantileConfig;
use dtrack::prelude::*;

#[test]
fn hh_lower_bound_stream_forces_messages_and_stays_correct() {
    let phi = 0.3;
    let epsilon = 0.05;
    let lb = HhLowerBound::construct(phi, epsilon, 600_000);
    assert!(lb.forced_changes() > 10);

    let config = HhConfig::new(8, epsilon).unwrap();
    let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
    let mut oracle = ExactOracle::new();
    for &x in &lb.setup {
        oracle.observe(x);
    }
    ThresholdAdversary::feed_setup(&mut cluster, &lb.setup).unwrap();
    let mut chaff = dtrack::adversary::hh_lb::CHAFF_BASE + 7_000_000_000;
    let mut forced_total = 0u64;
    for round in &lb.rounds {
        for e in &round.rises {
            for _ in 0..e.copies {
                oracle.observe(e.item);
            }
            let f = ThresholdAdversary::deliver(&mut cluster, e.item, e.copies).unwrap();
            forced_total += f.messages;
            let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
            if let Some(v) = oracle.check_heavy_hitters(&reported, phi, epsilon) {
                panic!("violation under adversarial stream: {v}");
            }
        }
        for i in 0..round.chaff {
            oracle.observe(chaff + i);
        }
        chaff = ThresholdAdversary::feed_chaff(&mut cluster, round.chaff, chaff).unwrap();
    }
    // Ω(k) per change.
    let per_change = forced_total as f64 / lb.forced_changes() as f64;
    assert!(
        per_change >= 2.0,
        "adversary failed to force messages: {per_change}"
    );
}

#[test]
fn median_lower_bound_stream_tracked_correctly() {
    let epsilon = 0.05;
    let lb = MedianLowerBound::construct(epsilon, 400_000);
    assert!(lb.count_median_flips() > 5);

    let k = 6;
    let config = QuantileConfig::median(k, epsilon).unwrap();
    let mut cluster = dtrack::core::quantile::exact_cluster(config).unwrap();
    let mut oracle = ExactOracle::new();
    for (i, &x) in lb.items.iter().enumerate() {
        oracle.observe(x);
        cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
        if i % 997 == 0 && i > 0 {
            let q = cluster.coordinator().quantile().expect("nonempty");
            assert!(
                oracle.quantile_ok(q, 0.5, epsilon),
                "item {i}: median {q} outside ε-band (rank {} of {})",
                oracle.rank_lt(q),
                oracle.total()
            );
        }
    }
    // The flips forced real work: at least one recenter or rebuild per
    // couple of flips.
    let stats = cluster.coordinator().stats();
    assert!(
        stats.recenters + stats.rebuilds >= lb.count_median_flips() / 4,
        "median flips did not force maintenance: {stats:?} vs {} flips",
        lb.count_median_flips()
    );
}

#[test]
fn forced_cost_grows_with_k() {
    let phi = 0.3;
    let epsilon = 0.05;
    let per_change = |k: u32| {
        let lb = HhLowerBound::construct(phi, epsilon, 300_000);
        let config = HhConfig::new(k, epsilon).unwrap();
        let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
        ThresholdAdversary::feed_setup(&mut cluster, &lb.setup).unwrap();
        let mut chaff = dtrack::adversary::hh_lb::CHAFF_BASE + 8_000_000_000;
        let mut forced = 0u64;
        let mut changes = 0u64;
        for round in &lb.rounds {
            for e in &round.rises {
                forced += ThresholdAdversary::deliver(&mut cluster, e.item, e.copies)
                    .unwrap()
                    .messages;
                changes += 1;
            }
            chaff = ThresholdAdversary::feed_chaff(&mut cluster, round.chaff, chaff).unwrap();
        }
        forced as f64 / changes.max(1) as f64
    };
    let low_k = per_change(4);
    let high_k = per_change(16);
    assert!(
        high_k > low_k * 1.5,
        "per-change cost must grow with k: {low_k:.1} vs {high_k:.1}"
    );
}
