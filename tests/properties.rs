//! Property-based tests: the ε-guarantees and protocol invariants must
//! hold for arbitrary streams, assignments, and parameters — not just the
//! hand-picked workloads of the unit tests.

use dtrack::core::allq::AllQConfig;
use dtrack::core::hh::HhConfig;
use dtrack::core::quantile::QuantileConfig;
use dtrack::prelude::*;
use proptest::prelude::*;

/// A random assigned stream: values with duplicates, arbitrary sites.
fn arb_stream(k: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0..k, 0u64..10_000), 100..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn counter_never_overestimates_and_stays_close(
        stream in arb_stream(4, 3000),
        eps_pct in 2u32..40,
    ) {
        let epsilon = eps_pct as f64 / 100.0;
        let sites = (0..4).map(|_| CounterSite::new(epsilon).unwrap()).collect();
        let mut cluster = Cluster::new(sites, CounterCoordinator::new()).unwrap();
        for (i, &(site, item)) in stream.iter().enumerate() {
            cluster.feed(SiteId(site), item).unwrap();
            let n = (i + 1) as u64;
            let est = cluster.coordinator().estimate();
            prop_assert!(est <= n);
            prop_assert!(est as f64 > (1.0 - epsilon) * n as f64 - 4.0);
        }
    }

    #[test]
    fn hh_invariants_hold_for_random_streams(
        stream in arb_stream(3, 2500),
        eps_pct in 5u32..30,
    ) {
        let epsilon = eps_pct as f64 / 100.0;
        let config = HhConfig::new(3, epsilon).unwrap();
        let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for &(site, item) in &stream {
            oracle.observe(item);
            cluster.feed(SiteId(site), item).unwrap();
        }
        let m = oracle.total();
        let coord = cluster.coordinator();
        // Invariant (3).
        prop_assert!(coord.global_count() <= m);
        prop_assert!(coord.global_count() as f64 >= m as f64 * (1.0 - epsilon / 3.0) - 1.0);
        // Invariant (2) on a sample of items.
        for x in (0..10_000u64).step_by(613) {
            let mx = oracle.frequency(x);
            let cmx = coord.frequency(x);
            prop_assert!(cmx <= mx, "C.m_{x} = {cmx} > {mx}");
            prop_assert!(cmx as f64 >= mx as f64 - epsilon * m as f64 / 3.0);
        }
    }

    #[test]
    fn hh_classification_is_epsilon_correct(
        stream in arb_stream(3, 2500),
        phi_pct in 10u32..50,
    ) {
        let epsilon = 0.08;
        let phi = phi_pct as f64 / 100.0;
        let config = HhConfig::new(3, epsilon).unwrap();
        let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for &(site, item) in &stream {
            oracle.observe(item);
            cluster.feed(SiteId(site), item).unwrap();
        }
        let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
        prop_assert!(oracle.check_heavy_hitters(&reported, phi, epsilon).is_none());
    }

    #[test]
    fn quantile_guarantee_holds_for_random_streams(
        stream in arb_stream(3, 2500),
        phi_pct in 5u32..96,
    ) {
        let epsilon = 0.15;
        let phi = phi_pct as f64 / 100.0;
        let config = QuantileConfig::new(3, epsilon, phi)
            .unwrap()
            // Small warm-up so random short streams exercise tracking.
            .with_warmup_target(200);
        let mut cluster = dtrack::core::quantile::exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, &(site, item)) in stream.iter().enumerate() {
            oracle.observe(item);
            cluster.feed(SiteId(site), item).unwrap();
            if i % 97 == 0 {
                let q = cluster.coordinator().quantile().expect("nonempty");
                prop_assert!(
                    oracle.quantile_ok(q, phi, epsilon),
                    "item {}: {} outside band (rank {} of {})",
                    i, q, oracle.rank_lt(q), oracle.total()
                );
            }
        }
    }

    #[test]
    fn allq_guarantee_holds_for_random_streams(
        stream in arb_stream(3, 2000),
    ) {
        let epsilon = 0.2;
        let config = AllQConfig::new(3, epsilon)
            .unwrap()
            .with_warmup_target(300);
        let mut cluster = dtrack::core::allq::exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for &(site, item) in &stream {
            oracle.observe(item);
            cluster.feed(SiteId(site), item).unwrap();
        }
        for phi in [0.1, 0.5, 0.9] {
            let q = cluster.coordinator().quantile(phi).unwrap().expect("nonempty");
            prop_assert!(
                oracle.quantile_ok(q, phi, epsilon),
                "phi {}: {} outside band (rank {} of {})",
                phi, q, oracle.rank_lt(q), oracle.total()
            );
        }
        // Rank queries across the value domain.
        let n = oracle.total();
        for probe in (0..10_000u64).step_by(1111) {
            let est = cluster.coordinator().rank_lt(probe);
            let truth = oracle.rank_lt(probe);
            prop_assert!(
                est.abs_diff(truth) as f64 <= epsilon * n as f64 + 1.0,
                "rank({}): {} vs {}", probe, est, truth
            );
        }
    }

    #[test]
    fn meter_words_always_at_least_messages(
        stream in arb_stream(4, 1500),
    ) {
        // Every message costs at least one word, under any protocol.
        let config = HhConfig::new(4, 0.1).unwrap();
        let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
        for &(site, item) in &stream {
            cluster.feed(SiteId(site), item).unwrap();
        }
        prop_assert!(cluster.meter().total_words() >= cluster.meter().total_messages());
    }
}

// Satellite of the hot-path overhaul: protocol and oracle answers must be
// functions of stream *content*, never of hash-map iteration order. The
// hot maps hash with deterministic Fx (dtrack-hash); these properties pin
// the answer-level contract by recomputing every answer from a SipHash
// (`RandomState`) reference whose iteration order differs per process, and
// by asserting the sorted-output convention directly.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn answers_independent_of_hash_iteration_order(
        stream in arb_stream(4, 2500),
        phi_pct in 10u32..60,
    ) {
        let phi = phi_pct as f64 / 100.0;
        // Fx-hashed oracle vs a std-SipHash frequency reference.
        let mut oracle = ExactOracle::new();
        let mut sip: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut values: Vec<u64> = Vec::with_capacity(stream.len());
        for &(_, item) in &stream {
            oracle.observe(item);
            *sip.entry(item).or_insert(0) += 1;
            values.push(item);
        }
        let n = values.len() as u64;
        // Heavy hitters: sorted, duplicate-free, and equal to the SipHash
        // reference classified by the same rule.
        let hh = oracle.heavy_hitters(phi);
        prop_assert!(hh.windows(2).all(|w| w[0] < w[1]), "unsorted: {:?}", hh);
        let thresh = phi * n as f64;
        let mut reference: Vec<u64> = sip
            .iter()
            .filter(|&(_, &c)| c as f64 >= thresh)
            .map(|(&x, _)| x)
            .collect();
        reference.sort_unstable();
        prop_assert_eq!(&hh, &reference);
        // Quantiles: equal to the sorted-vector reference at every probe.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for phi_q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let target = ((phi_q * n as f64).ceil() as u64).clamp(1, n);
            prop_assert_eq!(oracle.quantile(phi_q), Some(sorted[(target - 1) as usize]));
        }
        // Tracked heavy hitters: two independent clusters (fresh maps, so
        // fresh bucket layouts) must answer identically and sorted.
        let config = HhConfig::new(4, 0.08).unwrap();
        let run = || {
            let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
            for &(site, item) in &stream {
                cluster.feed(SiteId(site), item).unwrap();
            }
            cluster.coordinator().heavy_hitters(phi.max(0.1)).unwrap()
        };
        let first = run();
        let second = run();
        prop_assert!(first.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(first, second);
    }
}

// Satellite of the fault-injection axes: hostile workloads and fault
// plans are replayable *values*. Every matrix failure quotes a scenario
// name that must rebuild the identical run, so the new generators,
// the churning assignment, and seeded fault plans are pinned here to
// bit-identical replay for arbitrary seeds — not just the 21 rows the
// matrix happens to use.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn hostile_streams_replay_bit_identically(
        seed in 0u64..u64::MAX,
        pick in 0usize..4,
        churn in 0usize..2,
    ) {
        use dtrack_testkit::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
        let generator = match pick {
            0 => GeneratorSpec::FlashCrowd {
                universe: 1 << 20, s: 1.2, period: 750, flash_len: 150,
            },
            1 => GeneratorSpec::Diurnal { band: 1 << 18, phases: 4, phase_len: 750 },
            2 => GeneratorSpec::KeyChurn {
                window: 1 << 16, s: 1.2, churn_every: 500, step: 1 << 12,
            },
            _ => GeneratorSpec::Zipf { universe: 1 << 20, s: 1.2 },
        };
        let assignment = if churn == 0 {
            AssignmentSpec::SiteChurn { active: 2, epoch: 64 }
        } else {
            AssignmentSpec::RoundRobin
        };
        let scenario = Scenario::new(
            generator, assignment, 4, 0.1, 1_000, seed, ProtocolSpec::Counter,
        );
        let a: Vec<(SiteId, u64)> = scenario.stream().collect();
        let b: Vec<(SiteId, u64)> = scenario.stream().collect();
        prop_assert_eq!(a.len(), 1_000);
        prop_assert!(a.iter().all(|&(site, _)| site.0 < 4), "out-of-range site");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn seeded_fault_plans_replay_bit_identically(
        seed in 0u64..u64::MAX,
        k in 2u32..9,
        n in 4u64..10_000,
    ) {
        use dtrack_testkit::FaultPlan;
        let a = FaultPlan::seeded(seed, k, n);
        let b = FaultPlan::seeded(seed, k, n);
        prop_assert_eq!(a, b);
        prop_assert!(a.validate(k, n).is_ok(), "{:?}", a.validate(k, n));
        // The schedule, the stable-name suffix, and the rerouting map are
        // all pure functions of the plan.
        prop_assert_eq!(a.schedule(), b.schedule());
        prop_assert_eq!(a.to_string(), b.to_string());
        for idx in [0, n / 2, n - 1] {
            for site in 0..k {
                let routed = a.route(idx, SiteId(site), k);
                prop_assert!(routed.0 < k, "routed to dead-air site {}", routed.0);
                if a.kill.is_none_or(|kill| idx < kill.at) {
                    prop_assert_eq!(routed, SiteId(site), "rerouted before the kill");
                }
            }
        }
    }
}
