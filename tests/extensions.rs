//! Integration tests for the §5 extension modules through the facade:
//! the randomized sampling tracker and the sliding-window trackers,
//! exercised together on shared streams.

use dtrack::core::hh::HhConfig;
use dtrack::core::sampling::{sampling_cluster, SamplingConfig};
use dtrack::core::window::{window_cluster, window_quantile_cluster, WindowHhConfig, WindowOracle};
use dtrack::prelude::*;
use dtrack::workload::{Generator, RoundRobin, ShiftingZipf, Stream, Zipf};

#[test]
fn sampling_and_deterministic_agree_on_clear_heavy_hitters() {
    let k = 6;
    let epsilon = 0.05;
    let phi = 0.25;
    let det_config = HhConfig::new(k, epsilon).unwrap();
    let samp_config = SamplingConfig::new(k, epsilon, 0.01, 7).unwrap();
    let mut det = dtrack::core::hh::exact_cluster(det_config).unwrap();
    let mut samp = sampling_cluster(samp_config).unwrap();
    let mut oracle = ExactOracle::new();

    let mut gen = Zipf::new(1 << 18, 1.1, 3);
    for i in 0..150_000u64 {
        // One third of the stream is item 5.
        let x = if i % 3 == 0 { 5 } else { gen.next_item() };
        let s = SiteId((i % k as u64) as u32);
        oracle.observe(x);
        det.feed(s, x).unwrap();
        samp.feed(s, x).unwrap();
    }
    let from_det = det.coordinator().heavy_hitters(phi).unwrap();
    let from_samp = samp.coordinator().heavy_hitters(phi).unwrap();
    // Both find the unambiguous heavy item.
    for x in oracle.heavy_hitters(phi + 2.0 * epsilon) {
        assert!(from_det.contains(&x), "deterministic missed {x}");
        assert!(from_samp.contains(&x), "sampling missed {x}");
    }
    // And sampling pays far less at this k and ε than k/ε forwarding
    // would suggest per item.
    assert!(samp.meter().total_words() < 200_000);
}

#[test]
fn window_hh_and_window_quantile_share_epoch_machinery() {
    let k = 4;
    let epsilon = 0.1;
    let w = 25_000u64;
    let config = WindowHhConfig::new(k, epsilon, w).unwrap();
    let mut hh = window_cluster(config).unwrap();
    let mut wq = window_quantile_cluster(config).unwrap();
    let mut oracle = WindowOracle::new(w);

    let mut gen = ShiftingZipf::new(1 << 22, 1.4, w / 2, 5);
    for i in 0..120_000u64 {
        let x = gen.next_item();
        let s = SiteId((i % k as u64) as u32);
        oracle.observe(x);
        hh.feed(s, x).unwrap();
        wq.feed(s, x).unwrap();
        if i % 3001 == 0 && i > w {
            // Window heavy hitters correct.
            let reported = hh.coordinator().heavy_hitters(0.15).unwrap();
            if let Some(v) = oracle.check(&reported, 0.15, 2.0 * epsilon) {
                panic!("item {i}: {v}");
            }
            // Window size estimates agree between the two protocols
            // within an epoch.
            let wh = hh.coordinator().window_estimate();
            let wn = wq.coordinator().window_estimate();
            assert!(
                wh.abs_diff(wn) <= 2 * config.epoch_len(),
                "window estimates diverge: {wh} vs {wn}"
            );
        }
    }
}

#[test]
fn whole_stream_and_window_answers_differ_after_a_shift() {
    // After a distribution shift older than the window, the window
    // tracker forgets; the whole-stream tracker does not.
    let k = 4;
    let epsilon = 0.05;
    let w = 20_000u64;
    let phi = 0.3;
    let whole_config = HhConfig::new(k, epsilon).unwrap();
    let win_config = WindowHhConfig::new(k, epsilon, w).unwrap();
    let mut whole = dtrack::core::hh::exact_cluster(whole_config).unwrap();
    let mut win = window_cluster(win_config).unwrap();

    let n = 200_000u64;
    let mut st = 9u64;
    let mut xorshift = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    for i in 0..n {
        // Item 1 is heavy only in the first 40%; afterwards pure noise.
        let x = if i < 2 * n / 5 && i % 2 == 0 {
            1
        } else {
            1_000_000 + xorshift() % 1_000_000
        };
        let s = SiteId((i % k as u64) as u32);
        whole.feed(s, x).unwrap();
        win.feed(s, x).unwrap();
    }
    // Whole stream: item 1 holds ~20% of all items => 0.15-heavy.
    let whole_hh = whole.coordinator().heavy_hitters(0.15).unwrap();
    assert!(whole_hh.contains(&1), "whole-stream tracker lost item 1");
    // Window: item 1 left the window 140k items ago.
    let win_hh = win.coordinator().heavy_hitters(phi).unwrap();
    assert!(
        !win_hh.contains(&1),
        "window tracker failed to forget item 1"
    );
}

#[test]
fn feed_stream_helper_works_with_extension_protocols() {
    let k = 3;
    let config = WindowHhConfig::new(k, 0.1, 10_000).unwrap();
    let mut cluster = window_cluster(config).unwrap();
    let stream = Stream::new(Zipf::new(1 << 16, 1.3, 11), RoundRobin::new(k), 40_000);
    cluster.feed_stream(stream).unwrap();
    assert!(cluster.coordinator().window_estimate() > 0);
    assert!(!cluster
        .coordinator()
        .heavy_hitters(0.05)
        .unwrap()
        .is_empty());
}
