//! End-to-end integration: every protocol against the exact oracle on
//! combinations of workloads and site assignments, through the public
//! facade API.

use dtrack::core::allq::AllQConfig;
use dtrack::core::hh::HhConfig;
use dtrack::core::quantile::QuantileConfig;
use dtrack::prelude::*;
use dtrack::workload::{
    Bursts, RoundRobin, ShiftingZipf, SkewedSites, SortedRamp, Stream, TwoPhaseDrift, Uniform,
    UniformSites, Zipf,
};

const N: u64 = 25_000;

fn streams(k: u32) -> Vec<(&'static str, Vec<(SiteId, u64)>)> {
    vec![
        (
            "zipf/round-robin",
            Stream::new(Zipf::new(1 << 20, 1.2, 11), RoundRobin::new(k), N).collect(),
        ),
        (
            "uniform/random-sites",
            Stream::new(Uniform::new(1 << 36, 13), UniformSites::new(k, 17), N).collect(),
        ),
        (
            "ramp/bursts",
            Stream::new(SortedRamp::new(0, 17), Bursts::new(k, 97, 23), N).collect(),
        ),
        (
            "shift/skewed-sites",
            Stream::new(
                ShiftingZipf::new(1 << 24, 1.3, N / 4, 29),
                SkewedSites::new(k, 1.3, 31),
                N,
            )
            .collect(),
        ),
        (
            "drift/round-robin",
            Stream::new(TwoPhaseDrift::new(1 << 20, N / 2, 37), RoundRobin::new(k), N).collect(),
        ),
    ]
}

#[test]
fn heavy_hitters_correct_on_all_workloads() {
    let k = 5;
    let epsilon = 0.05;
    let phi = 0.1;
    for (name, stream) in streams(k) {
        let config = HhConfig::new(k, epsilon).unwrap();
        let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, &(site, item)) in stream.iter().enumerate() {
            oracle.observe(item);
            cluster.feed(site, item).unwrap();
            if i % 577 == 0 {
                let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
                if let Some(v) = oracle.check_heavy_hitters(&reported, phi, epsilon) {
                    panic!("[{name}] item {i}: {v}");
                }
            }
        }
    }
}

#[test]
fn quantiles_correct_on_all_workloads() {
    let k = 5;
    let epsilon = 0.08;
    for (name, stream) in streams(k) {
        for phi in [0.25, 0.5, 0.9] {
            let config = QuantileConfig::new(k, epsilon, phi).unwrap();
            let mut cluster = dtrack::core::quantile::exact_cluster(config).unwrap();
            let mut oracle = ExactOracle::new();
            for (i, &(site, item)) in stream.iter().enumerate() {
                oracle.observe(item);
                cluster.feed(site, item).unwrap();
                if i % 577 == 0 {
                    let q = cluster.coordinator().quantile().expect("nonempty");
                    assert!(
                        oracle.quantile_ok(q, phi, epsilon),
                        "[{name}] item {i}, phi {phi}: {q} outside ε-band \
                         (rank {} of {})",
                        oracle.rank_lt(q),
                        oracle.total()
                    );
                }
            }
        }
    }
}

#[test]
fn all_quantiles_correct_on_all_workloads() {
    let k = 5;
    let epsilon = 0.1;
    for (name, stream) in streams(k) {
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = dtrack::core::allq::exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, &(site, item)) in stream.iter().enumerate() {
            oracle.observe(item);
            cluster.feed(site, item).unwrap();
            if i % 1733 == 0 && i > 0 {
                for phi in [0.05, 0.3, 0.5, 0.8, 0.99] {
                    let q = cluster
                        .coordinator()
                        .quantile(phi)
                        .unwrap()
                        .expect("nonempty");
                    assert!(
                        oracle.quantile_ok(q, phi, epsilon),
                        "[{name}] item {i}, phi {phi}: {q} outside ε-band"
                    );
                }
            }
        }
    }
}

#[test]
fn counter_tracks_on_all_workloads() {
    let k = 5;
    let epsilon = 0.1;
    for (name, stream) in streams(k) {
        let sites = (0..k)
            .map(|_| CounterSite::new(epsilon).unwrap())
            .collect();
        let mut cluster = Cluster::new(sites, CounterCoordinator::new()).unwrap();
        for (i, &(site, item)) in stream.iter().enumerate() {
            cluster.feed(site, item).unwrap();
            let n = (i + 1) as u64;
            let est = cluster.coordinator().estimate();
            assert!(est <= n, "[{name}] overestimate at {n}");
            assert!(
                est as f64 > (1.0 - epsilon) * n as f64 - k as f64,
                "[{name}] estimate {est} too low at {n}"
            );
        }
    }
}

#[test]
fn hh_and_allq_agree_on_heavy_hitters() {
    // Two independent protocol stacks must agree on clearly-heavy items.
    let k = 4;
    let epsilon = 0.02;
    let phi = 0.2;
    let config_hh = HhConfig::new(k, epsilon).unwrap();
    let config_aq = AllQConfig::new(k, epsilon).unwrap();
    let mut hh = dtrack::core::hh::exact_cluster(config_hh).unwrap();
    let mut aq = dtrack::core::allq::exact_cluster(config_aq).unwrap();
    let stream: Vec<(SiteId, u64)> = Stream::new(
        Zipf::new(1 << 16, 1.6, 41),
        RoundRobin::new(k),
        60_000,
    )
    .collect();
    let mut oracle = ExactOracle::new();
    for &(site, item) in &stream {
        oracle.observe(item);
        hh.feed(site, item).unwrap();
        aq.feed(site, item).unwrap();
    }
    let from_hh = hh.coordinator().heavy_hitters(phi).unwrap();
    let from_aq = aq.coordinator().heavy_hitters(phi).unwrap();
    // Every unambiguous heavy hitter appears in both answers.
    for x in oracle.heavy_hitters(phi + 2.0 * epsilon) {
        assert!(from_hh.contains(&x), "hh missed {x}");
        assert!(from_aq.contains(&x), "allq missed {x}");
    }
}

#[test]
fn cost_comparison_matches_theory_order() {
    // On the same stream: counter < single quantile <= heavy hitters /
    // all-quantiles < CGMR < forward-all (for large n and small ε).
    let k = 6;
    let epsilon = 0.02;
    let n = 120_000u64;
    let stream: Vec<(SiteId, u64)> =
        Stream::new(Uniform::new(1 << 36, 43), RoundRobin::new(k), n).collect();

    let counter_words = {
        let sites = (0..k)
            .map(|_| CounterSite::new(epsilon).unwrap())
            .collect();
        let mut c = Cluster::new(sites, CounterCoordinator::new()).unwrap();
        c.feed_stream(stream.iter().copied()).unwrap();
        c.meter().total_words()
    };
    let quantile_words = {
        let mut c =
            dtrack::core::quantile::exact_cluster(QuantileConfig::median(k, epsilon).unwrap())
                .unwrap();
        c.feed_stream(stream.iter().copied()).unwrap();
        c.meter().total_words()
    };
    let cgmr_words = {
        let mut c = dtrack::baseline::cgmr::exact_cluster(
            dtrack::baseline::CgmrConfig::new(k, epsilon).unwrap(),
        )
        .unwrap();
        c.feed_stream(stream.iter().copied()).unwrap();
        c.meter().total_words()
    };
    let forward_words = {
        let mut c = dtrack::baseline::naive::forward_all_cluster(k).unwrap();
        c.feed_stream(stream.iter().copied()).unwrap();
        c.meter().total_words()
    };
    assert!(
        counter_words < quantile_words,
        "counter {counter_words} !< quantile {quantile_words}"
    );
    assert!(
        quantile_words < cgmr_words,
        "quantile {quantile_words} !< cgmr {cgmr_words}"
    );
    // At this modest n, CGMR's 1/ε² constant can still exceed plain
    // forwarding — that is expected (the paper assumes n large); what must
    // hold is that *our* tracker beats forwarding outright.
    assert!(
        quantile_words < forward_words,
        "quantile {quantile_words} !< forward {forward_words}"
    );
}
