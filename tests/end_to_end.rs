//! End-to-end integration: every protocol against the exact oracle on
//! combinations of workloads and site assignments, driven through the
//! shared `dtrack-testkit` differential harness (which also holds every
//! run to the paper's communication bound).

use dtrack::prelude::*;
use dtrack::workload::{RoundRobin, Stream, Zipf};
use dtrack_testkit::{
    measure_cost, run_scenario, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario,
};

const N: u64 = 25_000;

/// The five workload/assignment pairings the seed suite has always
/// exercised: benign, skewed, and adversarial streams over distinct
/// routing patterns.
fn workloads() -> Vec<(GeneratorSpec, AssignmentSpec)> {
    vec![
        (
            GeneratorSpec::Zipf {
                universe: 1 << 20,
                s: 1.2,
            },
            AssignmentSpec::RoundRobin,
        ),
        (
            GeneratorSpec::Uniform { universe: 1 << 36 },
            AssignmentSpec::UniformSites,
        ),
        (
            GeneratorSpec::SortedRamp { start: 0, step: 17 },
            AssignmentSpec::Bursts { burst_len: 97 },
        ),
        (
            GeneratorSpec::ShiftingZipf {
                universe: 1 << 24,
                s: 1.3,
                shift_every: N / 4,
            },
            AssignmentSpec::SkewedSites { s: 1.3 },
        ),
        (
            GeneratorSpec::TwoPhaseDrift {
                band: 1 << 20,
                switch_at: N / 2,
            },
            AssignmentSpec::RoundRobin,
        ),
    ]
}

/// Run one protocol across all five workloads, failing with the full
/// scenario name on the first guarantee violation.
fn check_protocol_on_all_workloads(protocol: ProtocolSpec, epsilon: f64) {
    for (i, (generator, assignment)) in workloads().into_iter().enumerate() {
        let scenario = Scenario::new(
            generator,
            assignment,
            5,
            epsilon,
            N,
            11 + i as u64,
            protocol,
        );
        let report = run_scenario(&scenario).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            report.checks > 0,
            "[{}] no oracle checks ran",
            report.scenario
        );
    }
}

#[test]
fn heavy_hitters_correct_on_all_workloads() {
    check_protocol_on_all_workloads(ProtocolSpec::HhExact, 0.05);
}

#[test]
fn sketched_heavy_hitters_correct_on_all_workloads() {
    check_protocol_on_all_workloads(ProtocolSpec::HhSketched, 0.05);
}

#[test]
fn quantiles_correct_on_all_workloads() {
    for phi in [0.25, 0.5, 0.9] {
        check_protocol_on_all_workloads(ProtocolSpec::QuantileExact { phi }, 0.08);
    }
}

#[test]
fn all_quantiles_correct_on_all_workloads() {
    check_protocol_on_all_workloads(ProtocolSpec::AllQExact, 0.1);
}

#[test]
fn counter_tracks_on_all_workloads() {
    check_protocol_on_all_workloads(ProtocolSpec::Counter, 0.1);
}

#[test]
fn baselines_correct_on_all_workloads() {
    check_protocol_on_all_workloads(ProtocolSpec::Cgmr, 0.1);
    check_protocol_on_all_workloads(ProtocolSpec::ForwardAll, 0.1);
}

#[test]
fn hh_and_allq_agree_on_heavy_hitters() {
    // Two independent protocol stacks must agree on clearly-heavy items.
    // This cross-protocol comparison feeds both clusters one stream, which
    // the scenario harness intentionally does not model — so it drives the
    // facade API directly.
    let k = 4;
    let epsilon = 0.02;
    let phi = 0.2;
    let config_hh = HhConfig::new(k, epsilon).unwrap();
    let config_aq = AllQConfig::new(k, epsilon).unwrap();
    let mut hh = dtrack::core::hh::exact_cluster(config_hh).unwrap();
    let mut aq = dtrack::core::allq::exact_cluster(config_aq).unwrap();
    let stream: Vec<(SiteId, u64)> =
        Stream::new(Zipf::new(1 << 16, 1.6, 41), RoundRobin::new(k), 60_000).collect();
    let mut oracle = ExactOracle::new();
    for &(site, item) in &stream {
        oracle.observe(item);
        hh.feed(site, item).unwrap();
        aq.feed(site, item).unwrap();
    }
    let from_hh = hh.coordinator().heavy_hitters(phi).unwrap();
    let from_aq = aq.coordinator().heavy_hitters(phi).unwrap();
    // Every unambiguous heavy hitter appears in both answers.
    for x in oracle.heavy_hitters(phi + 2.0 * epsilon) {
        assert!(from_hh.contains(&x), "hh missed {x}");
        assert!(from_aq.contains(&x), "allq missed {x}");
    }
}

#[test]
fn cost_comparison_matches_theory_order() {
    // On the same stream: counter < single quantile < CGMR, and our
    // tracker beats plain forwarding outright (for large n and small ε).
    let base = Scenario::new(
        GeneratorSpec::Uniform { universe: 1 << 36 },
        AssignmentSpec::RoundRobin,
        6,
        0.02,
        120_000,
        43,
        ProtocolSpec::Counter,
    );
    let words = |protocol: ProtocolSpec| {
        measure_cost(&Scenario { protocol, ..base })
            .unwrap_or_else(|e| panic!("{e}"))
            .words
    };
    let counter_words = words(ProtocolSpec::Counter);
    let quantile_words = words(ProtocolSpec::QuantileExact { phi: 0.5 });
    let cgmr_words = words(ProtocolSpec::Cgmr);
    let forward_words = words(ProtocolSpec::ForwardAll);
    assert!(
        counter_words < quantile_words,
        "counter {counter_words} !< quantile {quantile_words}"
    );
    assert!(
        quantile_words < cgmr_words,
        "quantile {quantile_words} !< cgmr {cgmr_words}"
    );
    // At this modest n, CGMR's 1/ε² constant can still exceed plain
    // forwarding — that is expected (the paper assumes n large); what must
    // hold is that *our* tracker beats forwarding outright.
    assert!(
        quantile_words < forward_words,
        "quantile {quantile_words} !< forward {forward_words}"
    );
}
