//! # dtrack — continuous tracking of distributed heavy hitters and quantiles
//!
//! A from-scratch Rust implementation of **Ke Yi & Qin Zhang, "Optimal
//! Tracking of Distributed Heavy Hitters and Quantiles", PODS 2009**: `k`
//! remote sites observe a stream of items and a designated coordinator
//! continuously maintains approximate heavy hitters and quantiles of the
//! union stream, using communication that matches the paper's optimal
//! O(k/ε · log n) bounds.
//!
//! ## Crates
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the paper's protocols: counter, heavy hitters (§2), single quantile (§3), all quantiles (§4) |
//! | [`sim`] | the distributed streaming model: sites, coordinator, metered channels, deterministic + threaded runtimes |
//! | [`sketch`] | local summaries: SpaceSaving, Misra–Gries, Greenwald–Khanna, order-statistic stores, mergeable equi-depth summaries |
//! | [`baseline`] | prior art the paper improves on: CGMR'05 summary shipping, forward-all, periodic polling |
//! | [`adversary`] | the lower-bound constructions of Lemma 2.2/2.3 and §3.2 |
//! | [`workload`] | seeded generators (Zipf, uniform, ramps, drifts) and site assignments |
//!
//! ## Quickstart
//!
//! ```
//! use dtrack::prelude::*;
//!
//! // 4 sites, 1% error; track heavy hitters of the union stream.
//! let config = HhConfig::new(4, 0.05).unwrap();
//! let mut cluster = dtrack::core::hh::exact_cluster(config).unwrap();
//!
//! // Feed an assigned stream: site (i % 4) observes each item.
//! for i in 0..10_000u64 {
//!     let item = if i % 3 == 0 { 7 } else { i };
//!     cluster.feed(SiteId((i % 4) as u32), item).unwrap();
//! }
//!
//! // Item 7 holds a third of the stream: a 0.25-heavy hitter.
//! let heavy = cluster.coordinator().heavy_hitters(0.25).unwrap();
//! assert_eq!(heavy, vec![7]);
//!
//! // Communication stayed logarithmic in the stream length.
//! println!("{} words", cluster.meter().total_words());
//! ```

pub use dtrack_adversary as adversary;
pub use dtrack_baseline as baseline;
pub use dtrack_core as core;
pub use dtrack_sim as sim;
pub use dtrack_sketch as sketch;
pub use dtrack_workload as workload;

/// The commonly needed types in one import.
pub mod prelude {
    pub use dtrack_core::allq::{AllQConfig, AllQCoordinator, AllQSite};
    pub use dtrack_core::counter::{CounterCoordinator, CounterSite};
    pub use dtrack_core::hh::{HhConfig, HhCoordinator, HhSite};
    pub use dtrack_core::quantile::{QuantileConfig, QuantileCoordinator, QuantileSite};
    pub use dtrack_core::{CoreError, ExactOracle, ValueRange};
    pub use dtrack_sim::{Cluster, Coordinator, MessageSize, Outbox, Site, SiteId};
    pub use dtrack_sketch::{FreqStore, OrderStore};
    pub use dtrack_workload::{Assignment, Generator, Stream};
}
