//! # dtrack — continuous tracking of distributed heavy hitters and quantiles
//!
//! A from-scratch Rust implementation of **Ke Yi & Qin Zhang, "Optimal
//! Tracking of Distributed Heavy Hitters and Quantiles", PODS 2009**: `k`
//! remote sites observe a stream of items and a designated coordinator
//! continuously maintains approximate heavy hitters and quantiles of the
//! union stream, using communication that matches the paper's optimal
//! O(k/ε · log n) bounds.
//!
//! ## Crates
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the paper's protocols: counter, heavy hitters (§2), single quantile (§3), all quantiles (§4) |
//! | [`sim`] | the distributed streaming model: sites, coordinator, metered channels, deterministic + threaded runtimes |
//! | [`sketch`] | local summaries: SpaceSaving, Misra–Gries, Greenwald–Khanna, order-statistic stores, mergeable equi-depth summaries |
//! | [`baseline`] | prior art the paper improves on: CGMR'05 summary shipping, forward-all, periodic polling |
//! | [`adversary`] | the lower-bound constructions of Lemma 2.2/2.3 and §3.2 |
//! | [`workload`] | seeded generators (Zipf, uniform, ramps, drifts) and site assignments |
//!
//! ## Quickstart
//!
//! ```
//! use dtrack::prelude::*;
//!
//! // 4 sites (embedded in the config), ε = 0.05; track heavy hitters of
//! // the union stream. Swap `.backend(BackendKind::Threaded)` in to run
//! // the same protocol on OS threads.
//! let config = HhConfig::new(4, 0.05).unwrap();
//! let mut tracker = Tracker::builder()
//!     .protocol(HhExactProtocol::new(config))
//!     .build()
//!     .unwrap();
//!
//! // Feed an assigned stream: site (i % 4) observes each item.
//! for i in 0..10_000u64 {
//!     let item = if i % 3 == 0 { 7 } else { i };
//!     tracker.feed(SiteId((i % 4) as u32), item).unwrap();
//! }
//!
//! // Item 7 holds a third of the stream: a 0.25-heavy hitter. Queries
//! // read continuously maintained state — no extra communication.
//! let heavy = tracker.query(Query::HeavyHitters { phi: 0.25 }).unwrap();
//! assert_eq!(heavy.as_items(), Some(&[7u64][..]));
//!
//! // Communication stayed logarithmic in the stream length.
//! println!("{} words", tracker.cost().total_words());
//! ```

pub use dtrack_adversary as adversary;
pub use dtrack_baseline as baseline;
pub use dtrack_core as core;
pub use dtrack_sim as sim;
pub use dtrack_sketch as sketch;
pub use dtrack_workload as workload;

/// The commonly needed types in one import.
pub mod prelude {
    pub use dtrack_core::allq::{AllQConfig, AllQCoordinator, AllQExactProtocol, AllQSite};
    pub use dtrack_core::counter::{CounterCoordinator, CounterProtocol, CounterSite};
    pub use dtrack_core::hh::{
        HhConfig, HhCoordinator, HhExactProtocol, HhSite, HhSketchedProtocol,
    };
    pub use dtrack_core::quantile::{
        QuantileConfig, QuantileCoordinator, QuantileExactProtocol, QuantileSite,
        QuantileSketchedProtocol,
    };
    pub use dtrack_core::{CoreError, ExactOracle, ValueRange};
    pub use dtrack_sim::{
        Answer, BackendKind, Cluster, Coordinator, MessageSize, Outbox, Protocol, Query,
        QueryError, Site, SiteId, TraceConfig, TraceSummary, Tracker, TrackerBuilder, TrackerError,
    };
    pub use dtrack_sketch::{FreqStore, OrderStore};
    pub use dtrack_workload::{Assignment, Generator, Stream};
}
