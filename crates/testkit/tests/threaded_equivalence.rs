//! Threaded-vs-deterministic equivalence across the full default matrix.
//!
//! Every protocol family, every workload/assignment shape: driven through
//! `ThreadedCluster` on a site-at-a-time schedule, each scenario must
//! produce the *identical* final answers and the *identical* metered
//! words/messages as the deterministic runner — and those words must match
//! the golden fixture (`golden_matrix_costs.txt`) that pins the
//! deterministic transcript, so the threaded runtime is locked to the same
//! bit-for-bit communication behavior the perf work is held to.

use dtrack_testkit::{
    apply_matrix_filter, assert_matches_golden, assert_outcomes_match, default_matrix, golden,
    run_scenario_reference, run_scenario_threaded, BackendKind, BASE_MATRIX_LEN,
};

const GOLDEN: &str = include_str!("golden_matrix_costs.txt");

#[test]
fn threaded_matches_deterministic_on_full_default_matrix() {
    let golden = golden::meter_costs(GOLDEN);
    let scenarios = default_matrix();
    assert_eq!(scenarios.len(), BASE_MATRIX_LEN + 21 + 6);
    // This suite owns the frozen base rows; the hostile extension rows
    // run three-backend equivalence in `fault_axes.rs`.
    let scenarios = apply_matrix_filter(scenarios[..BASE_MATRIX_LEN].to_vec());
    assert!(!scenarios.is_empty(), "matrix filter matched nothing");
    for scenario in &scenarios {
        let name = scenario.to_string();
        let threaded = run_scenario_threaded(scenario).unwrap_or_else(|f| panic!("{f}"));
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        // On mismatch these print a per-kind cost delta table and replay
        // the scenario traced, quoting the first diverging hop window.
        assert_outcomes_match(scenario, "", BackendKind::Threaded, &threaded, &reference);
        let &(golden_words, golden_messages) = golden
            .get(&name)
            .unwrap_or_else(|| panic!("[{name}] missing from golden fixture"));
        assert_matches_golden(
            scenario,
            "",
            "threaded",
            (threaded.report.words, threaded.report.messages),
            &threaded.report.by_kind,
            (golden_words, golden_messages),
        );
    }
}
