//! Sharded-vs-deterministic equivalence across the full default matrix.
//!
//! The work-stealing pool multiplexes every scenario's sites onto fewer
//! workers than sites (workers = 2, k ∈ {3, 5, 8}), so site-runs really
//! migrate between workers — and each scenario must still produce the
//! *identical* final answers and the *identical* metered words/messages
//! as the deterministic runner, matching the golden fixture
//! (`golden_matrix_costs.txt`) bit-for-bit. This is the acceptance gate
//! the `Backend` trait was built for: a new execution engine drops in
//! behind `Tracker` and is held to the same transcript.

use dtrack_testkit::{
    apply_matrix_filter, assert_matches_golden, assert_outcomes_match, default_matrix, golden,
    run_scenario_on_backend, run_scenario_reference, BackendKind, BASE_MATRIX_LEN,
};

const GOLDEN: &str = include_str!("golden_matrix_costs.txt");

#[test]
fn sharded_matches_deterministic_on_full_default_matrix() {
    let golden = golden::meter_costs(GOLDEN);
    let scenarios = default_matrix();
    assert_eq!(scenarios.len(), BASE_MATRIX_LEN + 21 + 6);
    // This suite owns the frozen base rows; the hostile extension rows
    // run three-backend equivalence in `fault_axes.rs`.
    let scenarios = apply_matrix_filter(scenarios[..BASE_MATRIX_LEN].to_vec());
    assert!(!scenarios.is_empty(), "matrix filter matched nothing");
    // Two workers for k ∈ {3, 5, 8}: every scenario multiplexes more
    // sites than workers, so the suite exercises real site-run handoff.
    let backend = BackendKind::Sharded { workers: Some(2) };
    for scenario in &scenarios {
        let name = scenario.to_string();
        let sharded = run_scenario_on_backend(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        // On mismatch these print a per-kind cost delta table and replay
        // the scenario traced, quoting the first diverging hop window.
        assert_outcomes_match(scenario, "", backend, &sharded, &reference);
        let &(golden_words, golden_messages) = golden
            .get(&name)
            .unwrap_or_else(|| panic!("[{name}] missing from golden fixture"));
        assert_matches_golden(
            scenario,
            "",
            "sharded",
            (sharded.report.words, sharded.report.messages),
            &sharded.report.by_kind,
            (golden_words, golden_messages),
        );
    }
}

#[test]
fn worker_count_does_not_change_the_transcript() {
    // The same scenario across pool sizes (including workers > k and the
    // machine default) must give one transcript — worker count is an
    // execution detail, not a protocol parameter.
    // Selected by stable identity (an hh-exact straggler row), not by
    // position, so appending matrix rows can never silently repoint it.
    let scenarios = default_matrix();
    let scenario = scenarios
        .iter()
        .find(|s| {
            s.assignment == dtrack_testkit::matrix::STRAGGLER
                && s.protocol == dtrack_testkit::ProtocolSpec::HhExact
        })
        .expect("hh-exact straggler row");
    let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
    for workers in [Some(1), Some(3), Some(16), None] {
        let backend = BackendKind::Sharded { workers };
        let outcome = run_scenario_on_backend(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
        assert_outcomes_match(
            scenario,
            &format!("workers={workers:?}"),
            backend,
            &outcome,
            &reference,
        );
    }
}
