//! Mid-stream typed-query coverage: at every checkpoint of the
//! differential harness, the facade's typed answers must
//!
//! 1. agree with the `ExactOracle` within ε (asserted by running the
//!    registry's checkpoint check, which is written entirely against
//!    `Tracker::query`),
//! 2. render `Display` strings bit-identical to the legacy canonical
//!    format (`estimate=…`, `m=…`, `hh(phi=…)=…`, `quantile=…`,
//!    `q(…)=…`, `total=…`), and
//! 3. be identical across the deterministic and threaded backends on the
//!    site-at-a-time schedule.

use dtrack_core::ExactOracle;
use dtrack_testkit::registry::{self, WarmupPolicy};
use dtrack_testkit::{default_matrix, Answer, BackendKind, Scenario};

/// The legacy canonical rendering, reconstructed from the typed payload
/// with the exact historical format strings. `Answer::Display` must match
/// this bit-for-bit — the equivalence fixtures depend on it.
fn legacy_render(answer: &Answer) -> String {
    let fmt_opt = |q: &Option<u64>| match q {
        Some(v) => v.to_string(),
        None => "-".to_owned(),
    };
    match answer {
        Answer::Count(v) => format!("estimate={v}"),
        Answer::StreamLength(v) => format!("m={v}"),
        Answer::LengthEstimate(v) => format!("n={v}"),
        Answer::Total(v) => format!("total={v}"),
        Answer::HeavyHitters { phi, items } => format!("hh(phi={phi})={items:?}"),
        Answer::Quantile(q) => format!("quantile={}", fmt_opt(q)),
        Answer::QuantileAt { phi, value } => format!("q({phi})={}", fmt_opt(value)),
        Answer::RankLt { x, rank } => format!("rank_lt({x})={rank}"),
        Answer::Frequency { x, count } => format!("freq({x})={count}"),
        // Flow-control stats and trace summaries postdate the legacy
        // format; `Display` is the canonical rendering (no historical
        // fixture to reconstruct).
        Answer::FlowControl(stats) => stats.to_string(),
        Answer::Trace(summary) => summary.to_string(),
    }
}

/// Drive one scenario on both backends in lockstep, checkpointing
/// typed-query accuracy and Display parity along the way.
fn check_scenario(scenario: &Scenario) {
    let name = scenario.to_string();
    let (mut det, _) = registry::build_tracker(
        scenario,
        WarmupPolicy::Differential,
        BackendKind::Deterministic,
    )
    .unwrap_or_else(|e| panic!("[{name}] deterministic build: {e}"));
    let (mut thr, _) =
        registry::build_tracker(scenario, WarmupPolicy::Differential, BackendKind::Threaded)
            .unwrap_or_else(|e| panic!("[{name}] threaded build: {e}"));
    let check = registry::profile(scenario.protocol).check;

    let mut oracle = ExactOracle::new();
    let check_every = scenario.check_every();
    let stream: Vec<_> = scenario.stream().collect();
    let mut fed = 0u64;
    let mut checkpoints = 0u32;
    while fed < stream.len() as u64 {
        let stop = (fed + check_every).min(stream.len() as u64);
        let chunk = &stream[fed as usize..stop as usize];
        for &(_, item) in chunk {
            oracle.observe(item);
        }
        det.feed_batch(chunk)
            .unwrap_or_else(|e| panic!("[{name}] deterministic feed: {e}"));
        thr.feed_batch(chunk)
            .unwrap_or_else(|e| panic!("[{name}] threaded feed: {e}"));
        fed = stop;

        // (1) ε-agreement with the oracle, via typed queries, on both
        // backends.
        check(&mut det, &oracle, scenario)
            .unwrap_or_else(|e| panic!("[{name}] deterministic check at {fed}: {e}"));
        check(&mut thr, &oracle, scenario)
            .unwrap_or_else(|e| panic!("[{name}] threaded check at {fed}: {e}"));

        // (2) + (3) canonical answers: identical across backends, and
        // Display equals the legacy canonical string.
        let det_answers = det.answers().unwrap_or_else(|e| panic!("[{name}] {e}"));
        let thr_answers = thr.answers().unwrap_or_else(|e| panic!("[{name}] {e}"));
        assert_eq!(
            det_answers, thr_answers,
            "[{name}] typed answers diverge between backends at item {fed}"
        );
        for answer in &det_answers {
            assert_eq!(
                answer.to_string(),
                legacy_render(answer),
                "[{name}] Display drifted from the legacy canonical format"
            );
        }
        checkpoints += 1;
    }
    assert!(checkpoints >= 2, "[{name}] too few checkpoints");
    det.finish().unwrap_or_else(|e| panic!("[{name}] {e}"));
    thr.finish().unwrap_or_else(|e| panic!("[{name}] {e}"));
}

#[test]
fn typed_queries_agree_with_oracle_and_legacy_strings_on_both_backends() {
    // Every 4th scenario of the default matrix: 10 of 40, one per
    // protocol family (the matrix lists 4 consecutive scenarios per
    // protocol, so stride 4 visits each protocol exactly once).
    let scenarios: Vec<_> = default_matrix().into_iter().step_by(4).collect();
    let labels: std::collections::BTreeSet<_> =
        scenarios.iter().map(|s| s.protocol.label()).collect();
    assert!(
        labels.len() >= 9,
        "subset no longer covers every protocol family: {labels:?}"
    );
    for scenario in &scenarios {
        check_scenario(scenario);
    }
}
