//! Hostile-traffic fault axes: the 27 appended matrix rows (flash
//! crowds, diurnal drift, key churn, site churn, queue-cap pressure,
//! stalls, site death, and the combined-pressure band that stacks two
//! faults per row) run in equivalence mode on all three backends.
//!
//! Every row must produce the *identical* final answers and the
//! *identical* metered words/messages on the Deterministic, Threaded,
//! and Sharded backends, matching the golden fixture bit-for-bit —
//! faults included. A kill is an administrative partition injected at a
//! quiescent stream position and rerouted by the static
//! `FaultPlan::route` map, a stall is pure timing, and a queue cap is a
//! builder knob, so none of them may perturb the transcript.
//!
//! This suite also hosts the promoted runtime-fault unit tests that
//! used to live inside `dtrack-sim` (worker death, backpressure at a
//! cap of 4, stalled slow sites): each is now a thin wrapper selecting
//! the matching fault axis out of the matrix instead of a hand-rolled
//! cluster.

use dtrack_sim::{SimError, SiteId};
use dtrack_testkit::{
    apply_matrix_filter, default_matrix, golden, hostile_matrix, pressure_matrix,
    registry::build_tracker, run_scenario_on, run_scenario_on_backend, run_scenario_reference,
    BackendKind, FaultEvent, Scenario, WarmupPolicy, BASE_MATRIX_LEN, MATRIX_FILTER_ENV,
};
use std::time::{Duration, Instant};

const GOLDEN: &str = include_str!("golden_matrix_costs.txt");

/// Per-suite wall-clock budget for the release-mode CI run. Generous
/// (the whole suite runs in a few seconds on a laptop) but finite: a
/// fault that wedges `settle()` or a stall that turns into a livelock
/// shows up as a budget blowout, not a silent 6-hour CI hang.
const RELEASE_BUDGET: Duration = Duration::from_secs(120);

fn assert_release_budget(start: Instant) {
    let elapsed = start.elapsed();
    if cfg!(not(debug_assertions)) {
        assert!(
            elapsed < RELEASE_BUDGET,
            "fault-axes suite blew its wall-clock budget: {elapsed:?} >= {RELEASE_BUDGET:?}"
        );
    }
}

fn hostile_rows() -> Vec<Scenario> {
    let scenarios = default_matrix();
    assert_eq!(scenarios.len(), BASE_MATRIX_LEN + 27);
    scenarios[BASE_MATRIX_LEN..].to_vec()
}

#[test]
fn hostile_rows_are_exactly_the_matrix_extension() {
    // The suite's slice and the two extension bands must be the same
    // rows, so "every new row runs here" can't drift as the matrix grows.
    let mut expected = hostile_matrix();
    expected.extend(pressure_matrix());
    assert_eq!(hostile_rows(), expected);
}

#[test]
fn matrix_filter_passes_the_extension_through_when_unset() {
    if std::env::var(MATRIX_FILTER_ENV).is_ok_and(|v| !v.trim().is_empty()) {
        return; // externally sharded run; passthrough shape not expected
    }
    assert_eq!(apply_matrix_filter(hostile_rows()).len(), 27);
}

#[test]
fn hostile_rows_are_equivalent_on_all_three_backends() {
    let start = Instant::now();
    let golden = golden::meter_costs(GOLDEN);
    let rows = apply_matrix_filter(hostile_rows());
    assert!(!rows.is_empty(), "matrix filter matched nothing");
    // Two workers for k ∈ {4, 5}: the sharded pool really multiplexes,
    // so kill/stall handling is exercised across site-run migration.
    let backends = [
        BackendKind::Threaded,
        BackendKind::Sharded { workers: Some(2) },
    ];
    for scenario in &rows {
        let name = scenario.to_string();
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        let &(golden_words, golden_messages) = golden
            .get(&name)
            .unwrap_or_else(|| panic!("[{name}] missing from golden fixture"));
        assert_eq!(
            (reference.report.words, reference.report.messages),
            (golden_words, golden_messages),
            "[{name}] deterministic cost drifted from the golden fixture"
        );
        for backend in backends {
            let outcome =
                run_scenario_on_backend(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(
                outcome.answers, reference.answers,
                "[{name}] answers diverge on {backend:?}"
            );
            assert_eq!(
                (outcome.report.words, outcome.report.messages),
                (reference.report.words, reference.report.messages),
                "[{name}] metered cost diverges on {backend:?}"
            );
        }
    }
    assert_release_budget(start);
}

#[test]
fn hostile_rows_pass_differential_checks_on_parallel_backends() {
    // The deterministic Check-mode pass over these rows lives in
    // `matrix.rs` (they are part of `default_matrix()`); here the same
    // oracle checkpoints — post-kill accuracy within 2ε, terminating
    // settle, word budget with fault headroom — run on the parallel
    // runtimes.
    let start = Instant::now();
    let rows = apply_matrix_filter(hostile_rows());
    assert!(!rows.is_empty(), "matrix filter matched nothing");
    for scenario in &rows {
        for backend in [
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
        ] {
            let report = run_scenario_on(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
            assert!(
                report.checks > 0,
                "[{}] ran zero oracle comparisons on {backend:?}",
                report.scenario
            );
            assert!(
                report.words <= report.budget_words,
                "[{}] blew the word budget on {backend:?}",
                report.scenario
            );
        }
    }
    assert_release_budget(start);
}

// ---------------------------------------------------------------------
// Promoted runtime-fault tests (formerly hand-rolled in dtrack-sim).
// ---------------------------------------------------------------------

/// Promoted worker-death coverage: the kill rows are the site-death
/// scenario at matrix scale. A single-worker sharded pool loses a site
/// mid-stream and must still finish the rerouted stream with a
/// transcript identical to the deterministic reference.
#[test]
fn promoted_site_death_axis_survives_a_single_worker_pool() {
    let rows = hostile_rows();
    let kills: Vec<_> = rows.iter().filter(|s| s.faults.has_kill()).collect();
    assert_eq!(kills.len(), 7, "kill axis shrank");
    for scenario in kills {
        let name = scenario.to_string();
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        let sharded = run_scenario_on_backend(scenario, BackendKind::Sharded { workers: Some(1) })
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(sharded.answers, reference.answers, "[{name}]");
        assert_eq!(
            (sharded.report.words, sharded.report.messages),
            (reference.report.words, reference.report.messages),
            "[{name}]"
        );
    }
}

/// Promoted backpressure coverage: the queue-cap rows run every site
/// through a capacity-4 queue. On a single-worker pool that is the old
/// "bounded queues backpressure instead of dropping" test — deep
/// multiplexing with tiny queues — and the transcript must not notice.
#[test]
fn promoted_backpressure_axis_holds_at_cap_4() {
    let rows = hostile_rows();
    let capped: Vec<_> = rows
        .iter()
        .filter(|s| s.faults.queue_cap.is_some())
        .collect();
    assert_eq!(capped.len(), 9, "queue-cap axis shrank");
    for scenario in capped {
        assert_eq!(scenario.faults.queue_cap, Some(4));
        let name = scenario.to_string();
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        let sharded = run_scenario_on_backend(scenario, BackendKind::Sharded { workers: Some(1) })
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(sharded.answers, reference.answers, "[{name}]");
        assert_eq!(
            (sharded.report.words, sharded.report.messages),
            (reference.report.words, reference.report.messages),
            "[{name}]"
        );
    }
}

/// Promoted stalled-slow-site coverage: the stall rows sleep one site's
/// consumer mid-stream. `settle()` must still terminate and the final
/// answers must be timing-independent — a stall is pure latency, never
/// a transcript edit.
#[test]
fn promoted_stall_axis_settles_and_keeps_the_transcript() {
    let rows = hostile_rows();
    let stalled: Vec<_> = rows
        .iter()
        .filter(|s| s.faults.stall.is_some() && !s.faults.has_kill())
        .collect();
    assert_eq!(stalled.len(), 6, "stall axis shrank");
    for scenario in stalled {
        let name = scenario.to_string();
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        let threaded = run_scenario_on_backend(scenario, BackendKind::Threaded)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(threaded.answers, reference.answers, "[{name}]");
        assert_eq!(
            (threaded.report.words, threaded.report.messages),
            (reference.report.words, reference.report.messages),
            "[{name}]"
        );
    }
}

/// The stall axis with the deadline contract: a stall much longer than
/// the settle deadline must surface as `SimError::Timeout`, not a hang —
/// and once the stall drains, the same tracker settles and finishes
/// cleanly. This is the matrix-level version of the backend unit tests:
/// it goes through a registry-built tracker for a real pressure row.
#[test]
fn stall_axis_deadline_times_out_instead_of_hanging() {
    let rows = pressure_matrix();
    let scenario = rows
        .iter()
        .find(|s| s.faults.stall.is_some() && !s.faults.has_kill())
        .expect("pressure band lost its stall rows");
    let (mut tracker, _warmup) = build_tracker(
        scenario,
        WarmupPolicy::ProtocolDefault,
        BackendKind::Threaded,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    // A stall two orders of magnitude past the deadline, then one item so
    // the stalled site has pending work to wait on.
    tracker
        .inject_fault(FaultEvent::StallSite {
            site: SiteId(0),
            micros: 300_000,
        })
        .unwrap();
    tracker.feed(SiteId(0), 7).unwrap();
    let err = tracker
        .settle_deadline(Duration::from_millis(20))
        .expect_err("a 300ms stall must blow a 20ms deadline");
    assert!(
        matches!(err, SimError::Timeout { waited_ms: 20 }),
        "unexpected error: {err}"
    );
    // The timeout is observational, not destructive: settle() still
    // drains and the tracker finishes with its transcript intact.
    tracker.settle();
    tracker.finish().unwrap_or_else(|e| panic!("{e}"));
}
