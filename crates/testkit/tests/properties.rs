//! Property-based cross-backend equivalence: for arbitrary seeds and
//! stream shapes — not just the curated matrix rows — the threaded and
//! sharded runtimes must produce the identical final answers and the
//! identical metered cost as the deterministic reference. This is the
//! randomized companion to the equivalence suites: the matrix pins 77
//! named rows forever, while this test walks fresh seeds every run
//! (deterministically, via the offline proptest runner's fixed RNG).

use dtrack_testkit::{
    run_scenario_on_backend, run_scenario_reference, AssignmentSpec, BackendKind, GeneratorSpec,
    ProtocolSpec, Scenario,
};
use proptest::prelude::*;

/// The protocol families under test, indexable by a fuzzed byte. Counter
/// and heavy hitters cover the multiset side, the quantile pair covers
/// order statistics, CGMR covers the baseline path.
fn protocol(idx: u8) -> ProtocolSpec {
    match idx % 5 {
        0 => ProtocolSpec::Counter,
        1 => ProtocolSpec::HhExact,
        2 => ProtocolSpec::QuantileExact { phi: 0.5 },
        3 => ProtocolSpec::QuantileSketched { phi: 0.5 },
        _ => ProtocolSpec::Cgmr,
    }
}

fn generator(idx: u8) -> GeneratorSpec {
    match idx % 3 {
        0 => GeneratorSpec::Uniform { universe: 1 << 20 },
        1 => GeneratorSpec::Zipf {
            universe: 1 << 16,
            s: 1.1,
        },
        _ => GeneratorSpec::SortedRamp { start: 0, step: 3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Same seed ⇒ identical answers and identical meter on every
    /// backend, for arbitrary (protocol, generator, k, n, seed) points.
    #[test]
    fn backends_agree_on_arbitrary_scenarios(
        proto_idx in 0u8..5,
        gen_idx in 0u8..3,
        k in 3u32..6,
        n in 1_500u64..3_500,
        seed in 1u64..1_000_000,
    ) {
        let scenario = Scenario {
            generator: generator(gen_idx),
            assignment: AssignmentSpec::RoundRobin,
            k,
            epsilon: 0.1,
            n,
            seed,
            protocol: protocol(proto_idx),
            tuning: Default::default(),
            faults: Default::default(),
        };
        let name = scenario.to_string();
        let reference = run_scenario_reference(&scenario)
            .map_err(|f| TestCaseError::fail(format!("{f}")))?;
        for backend in [
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
        ] {
            let outcome = run_scenario_on_backend(&scenario, backend)
                .map_err(|f| TestCaseError::fail(format!("{f}")))?;
            prop_assert_eq!(
                &outcome.answers,
                &reference.answers,
                "[{}] answers diverge on {:?}",
                name,
                backend
            );
            prop_assert_eq!(
                (outcome.report.words, outcome.report.messages),
                (reference.report.words, reference.report.messages),
                "[{}] meter diverges on {:?}",
                name,
                backend
            );
        }
    }
}
