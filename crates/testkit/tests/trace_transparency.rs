//! Tracing transparency and determinism.
//!
//! The structured-event layer must be a pure observer:
//!
//! 1. **Transparency** — enabling tracing changes *nothing* observable:
//!    answers, metered words/messages, and the per-kind breakdown are
//!    byte-identical with tracing on and off, on every row of the
//!    default matrix (shardable via `DTRACK_MATRIX_FILTER`, like the
//!    equivalence suites) and on every parallel backend for a stride
//!    subset.
//! 2. **Determinism** — on the deterministic backend the trace stream
//!    itself is part of the pinned transcript: two traced runs of the
//!    same seeded `Scenario` produce bit-identical event streams
//!    (clock stamps included), for arbitrary scenario points.
//!
//! The demo test at the bottom exports the PR 7 heavy-hitter `Start`
//! storm as a Chrome trace: every resync round is a visible
//! `broadcast` burst on the coordinator lane.

use dtrack_testkit::{
    apply_matrix_filter, default_matrix, run_scenario_reference, run_scenario_traced,
    AssignmentSpec, BackendKind, GeneratorSpec, ProtocolSpec, Scenario, TraceEventKind, TraceLane,
};
use proptest::prelude::*;

/// Tracing on vs off on the deterministic backend, across the whole
/// default matrix: identical answers, identical meter, identical
/// per-kind breakdown — and the traced run actually recorded events.
#[test]
fn tracing_is_transparent_on_the_full_default_matrix() {
    let scenarios = apply_matrix_filter(default_matrix());
    assert!(!scenarios.is_empty(), "matrix filter matched nothing");
    for scenario in &scenarios {
        let name = scenario.to_string();
        let off = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        let on = run_scenario_traced(scenario, BackendKind::Deterministic)
            .unwrap_or_else(|f| panic!("{f}"));
        assert!(
            off.trace.is_empty(),
            "[{name}] untraced run recorded events"
        );
        assert!(!on.trace.is_empty(), "[{name}] traced run recorded nothing");
        assert_eq!(
            on.answers, off.answers,
            "[{name}] tracing changed the answers"
        );
        assert_eq!(
            (on.report.words, on.report.messages),
            (off.report.words, off.report.messages),
            "[{name}] tracing changed the metered cost"
        );
        assert_eq!(
            on.report.by_kind, off.report.by_kind,
            "[{name}] tracing changed the per-kind breakdown"
        );
    }
}

/// The same transparency contract on every parallel backend, for a
/// stride subset of the matrix (full coverage lives in the equivalence
/// suites; this pins that *tracing* perturbs none of them).
#[test]
fn tracing_is_transparent_on_parallel_backends() {
    let scenarios: Vec<_> = default_matrix().into_iter().step_by(11).collect();
    assert!(scenarios.len() >= 6, "stride subset too small");
    for scenario in &scenarios {
        let name = scenario.to_string();
        for backend in [
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
            BackendKind::Async {
                workers: Some(2),
                wire: true,
            },
        ] {
            let off = dtrack_testkit::run_scenario_on_backend(scenario, backend)
                .unwrap_or_else(|f| panic!("{f}"));
            let on = run_scenario_traced(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
            assert!(
                !on.trace.is_empty(),
                "[{name}] {backend}: traced run recorded nothing"
            );
            assert_eq!(
                on.answers, off.answers,
                "[{name}] {backend}: tracing changed the answers"
            );
            assert_eq!(
                (on.report.words, on.report.messages),
                (off.report.words, off.report.messages),
                "[{name}] {backend}: tracing changed the metered cost"
            );
        }
    }
}

fn protocol(idx: u8) -> ProtocolSpec {
    match idx % 4 {
        0 => ProtocolSpec::Counter,
        1 => ProtocolSpec::HhExact,
        2 => ProtocolSpec::QuantileExact { phi: 0.5 },
        _ => ProtocolSpec::Cgmr,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Same seed ⇒ the deterministic backend's trace stream is part of
    /// the transcript: two traced runs are bit-identical, clock stamps
    /// and all.
    #[test]
    fn deterministic_trace_stream_is_bit_identical_across_runs(
        proto_idx in 0u8..4,
        k in 3u32..6,
        n in 1_000u64..2_500,
        seed in 1u64..1_000_000,
    ) {
        let scenario = Scenario {
            generator: GeneratorSpec::Zipf { universe: 1 << 16, s: 1.2 },
            assignment: AssignmentSpec::RoundRobin,
            k,
            epsilon: 0.1,
            n,
            seed,
            protocol: protocol(proto_idx),
            tuning: Default::default(),
            faults: Default::default(),
        };
        let a = run_scenario_traced(&scenario, BackendKind::Deterministic)
            .map_err(|f| TestCaseError::fail(format!("{f}")))?;
        let b = run_scenario_traced(&scenario, BackendKind::Deterministic)
            .map_err(|f| TestCaseError::fail(format!("{f}")))?;
        prop_assert!(!a.trace.is_empty(), "traced run recorded nothing");
        prop_assert_eq!(&a.trace, &b.trace, "trace stream not replayable");
        prop_assert_eq!(&a.answers, &b.answers);
    }
}

/// Demo: the PR 7 heavy-hitter `Start` storm — the warm-up→tracking
/// broadcast that slams every site at once — is a first-class burst in
/// the trace: one `broadcast:hh/start` on the coordinator lane followed
/// by k clustered `down-hop:hh/start` events, one per site. With eager
/// resync the same burst shape then repeats every round as
/// `hh/sync-poll` storms. The exported Chrome trace carries all of it,
/// so a profiler renders each storm as a vertical instant-event wall.
#[test]
fn hh_start_storm_is_a_visible_broadcast_burst_in_the_chrome_trace() {
    const K: u32 = 8;
    let scenario = Scenario::new(
        GeneratorSpec::Zipf {
            universe: 1 << 18,
            s: 1.2,
        },
        AssignmentSpec::RoundRobin,
        K,
        0.1,
        20_000,
        7,
        ProtocolSpec::HhExact,
    )
    .with_resync_after(1);
    let out = run_scenario_traced(&scenario, BackendKind::Deterministic)
        .unwrap_or_else(|f| panic!("{f}"));

    // The Start storm proper: one pre-expansion broadcast, fanout k.
    let start_bcast = out
        .trace
        .iter()
        .find(|e| {
            e.lane == TraceLane::Coordinator
                && matches!(
                    e.kind,
                    TraceEventKind::Broadcast {
                        kind: "hh/start",
                        ..
                    }
                )
        })
        .expect("warm-up end must broadcast hh/start");
    let TraceEventKind::Broadcast { fanout, .. } = start_bcast.kind else {
        unreachable!()
    };
    assert_eq!(fanout, K, "the Start storm hits every live site");

    // ... expanding into one down-hop per site, clustered right after
    // the broadcast (the burst a profiler shows as a vertical wall).
    let start_downs: Vec<_> = out
        .trace
        .iter()
        .filter(|e| {
            matches!(e.lane, TraceLane::Site(_))
                && matches!(
                    e.kind,
                    TraceEventKind::DownHop {
                        kind: "hh/start",
                        ..
                    }
                )
        })
        .collect();
    assert_eq!(start_downs.len(), K as usize, "one Start per live site");
    for hop in &start_downs {
        assert!(
            hop.clock > start_bcast.clock && hop.clock <= start_bcast.clock + 3 * K as u64,
            "Start fan-out must cluster right after the broadcast \
             (broadcast at clock {}, hop at {})",
            start_bcast.clock,
            hop.clock
        );
    }

    // Eager resync repeats the storm shape every round: many sync-poll
    // broadcast bursts follow the one-time Start.
    let polls = out
        .trace
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::Broadcast {
                    kind: "hh/sync-poll",
                    ..
                }
            )
        })
        .count();
    assert!(polls >= 3, "expected repeated resync storms, saw {polls}");

    let path = dtrack_testkit::trace_artifact_dir().join("hh-start-storm.trace.json");
    dtrack_sim::write_chrome_file(&out.trace, &path).expect("chrome export");
    let json = std::fs::read_to_string(&path).expect("read exported trace");
    assert!(json.contains("\"traceEvents\""), "not a chrome trace");
    assert!(
        // The broadcast plus one down-hop per site.
        json.matches("hh/start").count() > K as usize,
        "Start burst missing from the exported trace"
    );
}
