//! Async-vs-deterministic equivalence across the full default matrix,
//! wire codec off AND on.
//!
//! The async runtime multiplexes every scenario's sites as lightweight
//! tasks on a two-worker executor (workers = 2, k up to 8), so tasks
//! really interleave on shared workers — and each scenario must still
//! produce the *identical* final answers and the *identical* metered
//! words/messages as the deterministic runner, matching the golden
//! fixture (`golden_matrix_costs.txt`) bit-for-bit. The suite then
//! repeats every row with `wire: true`, routing every site↔coordinator
//! hop through the `dtrack-wire` length-prefixed codec: encode → frame
//! → decode is an exact inverse, so serialization must not perturb a
//! single metered word. Both the frozen base rows and the hostile/
//! pressure extension rows (faults included) run here — the async
//! backend is held to the whole 77-row transcript.

use dtrack_testkit::{
    apply_matrix_filter, assert_matches_golden, assert_outcomes_match, default_matrix, golden,
    run_scenario_on_backend, run_scenario_reference, BackendKind, BASE_MATRIX_LEN,
};

const GOLDEN: &str = include_str!("golden_matrix_costs.txt");

#[test]
fn async_matches_deterministic_on_full_matrix_wire_off_and_on() {
    let golden = golden::meter_costs(GOLDEN);
    let scenarios = default_matrix();
    assert_eq!(scenarios.len(), BASE_MATRIX_LEN + 27);
    let scenarios = apply_matrix_filter(scenarios);
    assert!(!scenarios.is_empty(), "matrix filter matched nothing");
    for scenario in &scenarios {
        let name = scenario.to_string();
        let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
        let &(golden_words, golden_messages) = golden
            .get(&name)
            .unwrap_or_else(|| panic!("[{name}] missing from golden fixture"));
        for wire in [false, true] {
            let backend = BackendKind::Async {
                workers: Some(2),
                wire,
            };
            let outcome =
                run_scenario_on_backend(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
            let context = format!("wire={wire}");
            // On mismatch these print a per-kind cost delta table and
            // replay the scenario traced, quoting the first diverging
            // hop window.
            assert_outcomes_match(scenario, &context, backend, &outcome, &reference);
            assert_matches_golden(
                scenario,
                &context,
                "async",
                (outcome.report.words, outcome.report.messages),
                &outcome.report.by_kind,
                (golden_words, golden_messages),
            );
        }
    }
}

#[test]
fn worker_count_does_not_change_the_async_transcript() {
    // Pool size (including workers > k and the machine default) is an
    // execution detail, not a protocol parameter: one transcript across
    // all of them, with the wire codec on to stack both perturbation
    // sources at once. Selected by stable identity, not position.
    let scenarios = default_matrix();
    let scenario = scenarios
        .iter()
        .find(|s| {
            s.assignment == dtrack_testkit::matrix::STRAGGLER
                && s.protocol == dtrack_testkit::ProtocolSpec::HhExact
        })
        .expect("hh-exact straggler row");
    let reference = run_scenario_reference(scenario).unwrap_or_else(|f| panic!("{f}"));
    for workers in [Some(1), Some(3), Some(16), None] {
        let backend = BackendKind::Async {
            workers,
            wire: true,
        };
        let outcome = run_scenario_on_backend(scenario, backend).unwrap_or_else(|f| panic!("{f}"));
        assert_outcomes_match(
            scenario,
            &format!("workers={workers:?}"),
            backend,
            &outcome,
            &reference,
        );
    }
}
