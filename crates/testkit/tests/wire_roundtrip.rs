//! Wire-codec properties over the real protocol message vocabulary.
//!
//! The async backend's `wire: true` mode proves, via the golden matrix,
//! that framing cannot perturb a metered word — but that proof only
//! exercises the values the protocols happen to produce. This suite pins
//! the codec's two contracts over *arbitrary* values:
//!
//! 1. **Roundtrip identity**: `decode(encode(x)) == x` for every message
//!    kind the workspace puts on the wire, in both frame directions and
//!    for both unicast and broadcast routing. This is the property the
//!    run-equivalence argument leans on (`WireLink` forwards the decoded
//!    value, so identity ⇒ unchanged transcript).
//! 2. **Totality**: truncated, corrupted, or outright garbage bytes decode
//!    to a typed [`DecodeError`] — never a panic, never an
//!    overallocation. A transport can therefore surface any fault as
//!    `SimError::Decode` and keep the cluster alive for teardown.
//!
//! Like `properties.rs`, this runs under the offline proptest runner's
//! fixed RNG: fresh values every run, deterministically.

use dtrack_baseline::cgmr::CgmrUp;
use dtrack_baseline::naive::{FwdItem, PollRequest, PollUp};
use dtrack_core::allq::{AqDown, AqUp, Tree};
use dtrack_core::counter::{CountDelta, NoDown};
use dtrack_core::hh::{HhDown, HhUp};
use dtrack_core::quantile::{QDown, QUp};
use dtrack_core::sampling::{Sampled, SetLevel};
use dtrack_core::window::{NewEpoch, WUp, WqUp};
use dtrack_core::ValueRange;
use dtrack_sketch::{EquiDepthSummary, MergedSummary};
use dtrack_wire::{decode, encode_down, encode_up, DecodeError, Dest, Frame, WireMessage};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Value strategies
// ---------------------------------------------------------------------

fn summary() -> impl Strategy<Value = EquiDepthSummary> {
    (vec(any::<u64>(), 0..32), 1u64..8, 0u64..6).prop_map(|(mut vals, step, sep_error)| {
        vals.sort_unstable();
        EquiDepthSummary::from_sorted(&vals, step).with_sep_error(sep_error)
    })
}

fn range() -> impl Strategy<Value = ValueRange> {
    (any::<u64>(), proptest::option::of(any::<u64>())).prop_map(|(lo, hi)| ValueRange { lo, hi })
}

fn tree() -> impl Strategy<Value = Tree> {
    // Arbitrary *valid* trees: build from a fuzzed summary the same way
    // the all-quantile coordinator does. Leaf limits below the summary
    // total force real splits, so internal nodes (split/left/right and
    // parent links) go over the wire, not just single-leaf arenas.
    (summary(), 1u64..12).prop_map(|(s, leaf_limit)| {
        Tree::build(&MergedSummary::new(vec![s]), ValueRange::all(), leaf_limit)
    })
}

fn hh_up() -> impl Strategy<Value = HhUp> {
    prop_oneof![
        any::<u64>().prop_map(|item| HhUp::Raw { item }),
        any::<u64>().prop_map(|delta| HhUp::AllSignal { delta }),
        (any::<u64>(), any::<u64>()).prop_map(|(item, delta)| HhUp::ItemSignal { item, delta }),
        any::<u64>().prop_map(|local| HhUp::CountReply { local }),
    ]
}

fn hh_down() -> impl Strategy<Value = HhDown> {
    prop_oneof![
        any::<u64>().prop_map(|m| HhDown::Start { m }),
        Just(HhDown::SyncPoll),
        any::<u64>().prop_map(|m| HhDown::NewCount { m }),
    ]
}

fn q_up() -> impl Strategy<Value = QUp> {
    prop_oneof![
        any::<u64>().prop_map(|item| QUp::Raw { item }),
        (any::<u32>(), any::<u64>()).prop_map(|(id, delta)| QUp::IntervalDelta { id, delta }),
        (any::<u32>(), any::<bool>(), any::<u64>())
            .prop_map(|(epoch, left, delta)| QUp::SideDelta { epoch, left, delta }),
        summary().prop_map(QUp::FullSummary),
        vec(any::<u64>(), 0..24).prop_map(QUp::IntervalCounts),
        (any::<u64>(), any::<u64>()).prop_map(|(left, right)| QUp::SideCounts { left, right }),
        any::<u64>().prop_map(|count| QUp::RangeCount { count }),
        summary().prop_map(QUp::RangeSummary),
        (any::<u64>(), any::<u64>()).prop_map(|(left, right)| QUp::SplitCounts { left, right }),
    ]
}

fn q_down() -> impl Strategy<Value = QDown> {
    prop_oneof![
        Just(QDown::SummaryPoll),
        (
            any::<u32>(),
            vec(any::<u64>(), 0..24),
            vec(any::<u32>(), 0..25),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(epoch, seps, ids, pivot, m)| QDown::Install {
                epoch,
                seps,
                ids,
                pivot,
                m
            }),
        Just(QDown::SidePoll),
        range().prop_map(|range| QDown::RangePoll { range }),
        (any::<u32>(), any::<u64>()).prop_map(|(epoch, pivot)| QDown::SetPivot { epoch, pivot }),
        range().prop_map(|range| QDown::RangeSummaryPoll { range }),
        (any::<u64>(), any::<u32>(), any::<u32>()).prop_map(|(sep, left_id, right_id)| {
            QDown::SplitInstall {
                sep,
                left_id,
                right_id,
            }
        }),
    ]
}

fn aq_up() -> impl Strategy<Value = AqUp> {
    prop_oneof![
        any::<u64>().prop_map(|item| AqUp::Raw { item }),
        (any::<u32>(), any::<u32>(), any::<u64>())
            .prop_map(|(round, node, delta)| AqUp::NodeDelta { round, node, delta }),
        summary().prop_map(AqUp::FullSummary),
        vec(any::<u64>(), 0..24).prop_map(AqUp::NodeCounts),
        summary().prop_map(AqUp::RangeSummary),
        vec(any::<u64>(), 0..24).prop_map(AqUp::SubtreeCounts),
    ]
}

fn aq_down() -> impl Strategy<Value = AqDown> {
    prop_oneof![
        Just(AqDown::SummaryPoll),
        (any::<u32>(), tree(), any::<u64>()).prop_map(|(round, tree, m)| AqDown::InstallTree {
            round,
            tree,
            m
        }),
        range().prop_map(|range| AqDown::RangeSummaryPoll { range }),
        (any::<u32>(), tree()).prop_map(|(at, sub)| AqDown::ReplaceSubtree { at, sub }),
    ]
}

fn w_up() -> impl Strategy<Value = WUp> {
    prop_oneof![
        any::<u64>().prop_map(|delta| WUp::CountDelta { delta }),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(epoch, item, delta)| WUp::ItemDelta { epoch, item, delta }),
    ]
}

fn wq_up() -> impl Strategy<Value = WqUp> {
    prop_oneof![
        any::<u64>().prop_map(|delta| WqUp::CountDelta { delta }),
        (any::<u64>(), summary())
            .prop_map(|(epoch, summary)| WqUp::EpochSummary { epoch, summary }),
    ]
}

fn poll_up() -> impl Strategy<Value = PollUp> {
    prop_oneof![
        any::<u64>().prop_map(PollUp::CountDelta),
        summary().prop_map(PollUp::Summary),
    ]
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

/// Roundtrip one value through a full frame in both directions and both
/// destinations, then sweep every truncation of every frame: identity on
/// the whole bytes, a typed error on any prefix.
fn check<M>(msg: M)
where
    M: WireMessage + Clone + PartialEq + std::fmt::Debug,
{
    let up = encode_up(7, &msg);
    match decode::<M, M>(&up) {
        Ok(Frame::Up { origin, msg: back }) => {
            assert_eq!(origin, 7);
            assert_eq!(back, msg, "up frame changed the message");
        }
        other => panic!("up frame failed to decode: {other:?}"),
    }
    for dest in [Dest::Site(3), Dest::Broadcast] {
        let down = encode_down(dest, &msg);
        match decode::<M, M>(&down) {
            Ok(Frame::Down { dest: d, msg: back }) => {
                assert_eq!(d, dest);
                assert_eq!(back, msg, "down frame changed the message");
            }
            other => panic!("down frame failed to decode: {other:?}"),
        }
        for cut in 0..down.len() {
            assert!(
                decode::<M, M>(&down[..cut]).is_err(),
                "truncated down frame decoded at cut {cut}"
            );
        }
    }
    for cut in 0..up.len() {
        assert!(
            decode::<M, M>(&up[..cut]).is_err(),
            "truncated up frame decoded at cut {cut}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn hh_messages_roundtrip(up in hh_up(), down in hh_down()) {
        check(up);
        check(down);
    }

    #[test]
    fn counter_and_sampling_messages_roundtrip(
        delta in any::<u64>(),
        item in any::<u64>(),
        level in any::<u32>(),
    ) {
        check(CountDelta(delta));
        check(Sampled { item, level });
        check(SetLevel(level));
    }

    #[test]
    fn quantile_messages_roundtrip(up in q_up(), down in q_down()) {
        check(up);
        check(down);
    }

    #[test]
    fn allq_messages_roundtrip(up in aq_up(), down in aq_down()) {
        check(up);
        check(down);
    }

    #[test]
    fn window_messages_roundtrip(up in w_up(), wq in wq_up(), epoch in any::<u64>()) {
        check(up);
        check(wq);
        check(NewEpoch(epoch));
    }

    #[test]
    fn baseline_messages_roundtrip(s in summary(), item in any::<u64>(), p in poll_up()) {
        check(CgmrUp(s));
        check(FwdItem(item));
        check(p);
        check(PollRequest);
    }

    /// Single-byte corruption anywhere in a valid frame either decodes to
    /// *some* value (payload bytes are honest data) or fails with a typed
    /// error — it never panics and never hangs on an absurd allocation.
    #[test]
    fn corrupted_frames_never_panic(down in q_down(), pos_seed in any::<usize>(), xor in 1u16..256) {
        let mut frame = encode_down(Dest::Broadcast, &down);
        let pos = pos_seed % frame.len();
        frame[pos] ^= xor as u8;
        let _ = decode::<QUp, QDown>(&frame);
    }

    /// Arbitrary garbage decodes to a typed error, with or without a
    /// self-consistent length prefix.
    #[test]
    fn garbage_is_a_typed_error(bytes in vec(any::<u8>(), 0..96), pin_len in any::<bool>()) {
        let mut bytes = bytes;
        if pin_len && bytes.len() >= 4 {
            let len = (bytes.len() - 4) as u32;
            bytes[..4].copy_from_slice(&len.to_le_bytes());
            // Leave the magic unpinned: reaching it is the error path
            // under test. (Pinning everything would just re-test payload
            // decoding, which the corruption case covers.)
        }
        let result = decode::<HhUp, HhDown>(&bytes);
        prop_assert!(result.is_err(), "garbage decoded: {result:?}");
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases the fuzz axes above cannot hit
// ---------------------------------------------------------------------

/// A frame can claim to carry a message for a protocol whose downstream
/// direction is uninhabited (`NoDown`, `FwdDown`, `CgmrDown`); decoding
/// must surface that as a typed error, since no value can exist.
#[test]
fn uninhabited_message_types_decode_to_typed_errors() {
    // Hand-build a broadcast Down frame with an empty payload.
    let mut frame = vec![0, 0, 0, 0, b'D', b'W', 1, 1, 1];
    let len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    let err = decode::<CountDelta, NoDown>(&frame).unwrap_err();
    assert!(
        matches!(err, DecodeError::Uninhabited { .. }),
        "expected Uninhabited, got {err:?}"
    );
}

/// An empty-payload frame for a fieldless message decodes; one stray
/// byte after it is `Trailing`, not silently ignored.
#[test]
fn exact_frame_boundaries_are_enforced() {
    let frame = encode_down(Dest::Site(0), &PollRequest);
    assert!(matches!(
        decode::<PollUp, PollRequest>(&frame),
        Ok(Frame::Down {
            dest: Dest::Site(0),
            msg: PollRequest
        })
    ));
    let mut padded = frame.clone();
    padded.push(0);
    let len = (padded.len() - 4) as u32;
    padded[..4].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        decode::<PollUp, PollRequest>(&padded),
        Err(DecodeError::Trailing { unread: 1, .. })
    ));
}
