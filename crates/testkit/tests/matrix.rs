//! The differential-testing matrix: every protocol against the exact
//! oracle across rotated (generator, assignment, k, ε) combinations,
//! with the metered communication held to the paper's bound.

use dtrack_testkit::{apply_matrix_filter, default_matrix, run_scenario, BASE_MATRIX_LEN};
use std::collections::BTreeSet;

#[test]
fn default_matrix_passes_accuracy_and_bound_checks() {
    let scenarios = default_matrix();
    assert!(
        scenarios.len() >= BASE_MATRIX_LEN,
        "matrix shrank to {}",
        scenarios.len()
    );
    // CI sharding / single-failure replay: DTRACK_MATRIX_FILTER selects
    // scenarios by stable-name substring (after the shape assert above,
    // so a typo'd filter fails the non-empty check instead of passing
    // an empty suite).
    let scenarios = apply_matrix_filter(scenarios);
    assert!(!scenarios.is_empty(), "matrix filter matched nothing");
    let mut failures = Vec::new();
    let mut total_checks = 0u64;
    for scenario in &scenarios {
        match run_scenario(scenario) {
            Ok(report) => {
                assert!(
                    report.checks > 0,
                    "[{}] ran zero oracle comparisons",
                    report.scenario
                );
                assert!(report.words <= report.budget_words);
                total_checks += report.checks;
            }
            Err(e) => failures.push(e.to_string()),
        }
    }
    assert!(
        failures.is_empty(),
        "{} scenario(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // The matrix must exercise the oracle heavily — per scenario, so the
    // density bar also holds for any DTRACK_MATRIX_FILTER selection.
    assert!(
        total_checks > 16 * scenarios.len() as u64,
        "only {total_checks} oracle checks across {} scenarios",
        scenarios.len()
    );
}

#[test]
fn matrix_spans_all_five_axes() {
    let scenarios = default_matrix();
    let generators: BTreeSet<_> = scenarios.iter().map(|s| s.generator.label()).collect();
    let assignments: BTreeSet<_> = scenarios.iter().map(|s| s.assignment.label()).collect();
    // Debug form distinguishes the two quantile φ values that share the
    // "quantile-exact" label.
    let protocols: BTreeSet<_> = scenarios
        .iter()
        .map(|s| format!("{:?}", s.protocol))
        .collect();
    let ks: BTreeSet<_> = scenarios.iter().map(|s| s.k).collect();
    let epsilons: BTreeSet<_> = scenarios.iter().map(|s| s.epsilon.to_bits()).collect();
    // 5 original generators + flash-crowd, diurnal, key-churn.
    assert_eq!(generators.len(), 8);
    // 5 original assignments + site-churn.
    assert_eq!(assignments.len(), 6);
    assert_eq!(protocols.len(), 10);
    assert!(ks.len() >= 3);
    assert!(epsilons.len() >= 3);
}

#[test]
fn reports_are_deterministic() {
    let scenario = &default_matrix()[0];
    let a = run_scenario(scenario).unwrap();
    let b = run_scenario(scenario).unwrap();
    assert_eq!(a, b, "same scenario, different transcript");
}

#[test]
fn optimal_protocol_beats_cgmr_at_small_epsilon() {
    // The paper's headline: Θ(k/ε·log n) vs CGMR's Θ(k/ε²·log n). The
    // harness must reproduce the separation on a concrete scenario pair.
    use dtrack_testkit::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
    let base = Scenario::new(
        GeneratorSpec::Uniform { universe: 1 << 36 },
        AssignmentSpec::RoundRobin,
        5,
        0.05,
        40_000,
        11,
        ProtocolSpec::QuantileExact { phi: 0.5 },
    );
    let quantile = run_scenario(&base).unwrap();
    let cgmr = run_scenario(&Scenario {
        protocol: ProtocolSpec::Cgmr,
        ..base
    })
    .unwrap();
    assert!(
        cgmr.words > 2 * quantile.words,
        "no separation: cgmr {} vs quantile {}",
        cgmr.words,
        quantile.words
    );
}

#[test]
fn rejects_degenerate_site_counts() {
    use dtrack_testkit::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
    let err = run_scenario(&Scenario::new(
        GeneratorSpec::Uniform { universe: 100 },
        AssignmentSpec::RoundRobin,
        1,
        0.1,
        100,
        1,
        ProtocolSpec::Counter,
    ))
    .unwrap_err();
    assert!(err.to_string().contains("k >= 2"), "{err}");
}
