//! Differential test: batched ingestion (`Cluster::feed_batch` via the
//! default runner path) and per-item ingestion (`Cluster::feed`) must
//! produce identical meter tallies AND identical query answers.
//!
//! `run_scenario` checkpoints already compare protocol answers against the
//! oracle; here the two delivery paths run the same scenario and the full
//! reports (words, messages, checks, budget) are compared field by field.
//! A subset of `default_matrix()` keeps the runtime reasonable while still
//! covering every protocol family and every assignment policy.

use dtrack_testkit::{
    default_matrix, measure_cost, measure_cost_per_item, run_scenario, run_scenario_per_item,
};

#[test]
fn batched_and_per_item_feeding_are_transcript_identical() {
    // Every 3rd scenario: 14 of 40, hitting all 10 protocols (4 scenarios
    // per protocol, stride 3 is coprime to 4) and all assignments.
    let scenarios: Vec<_> = default_matrix().into_iter().step_by(3).collect();
    let protocols: std::collections::BTreeSet<_> =
        scenarios.iter().map(|s| s.protocol.label()).collect();
    // 9 labels = all 10 protocols (the two QuantileExact φ variants share
    // a label).
    assert!(
        protocols.len() >= 9,
        "subset no longer covers every protocol family: {protocols:?}"
    );
    for scenario in &scenarios {
        let batched = run_scenario(scenario).unwrap_or_else(|f| panic!("batched: {f}"));
        let per_item = run_scenario_per_item(scenario).unwrap_or_else(|f| panic!("per-item: {f}"));
        assert_eq!(batched, per_item, "differential reports diverged");
    }
}

#[test]
fn batched_and_per_item_metering_agree_without_oracle() {
    // Meter-only mode exercises the protocol-default warm-up (a different
    // code path through every site), so cover it separately on a smaller
    // slice.
    for scenario in default_matrix().into_iter().step_by(7) {
        let batched = measure_cost(&scenario).unwrap_or_else(|f| panic!("batched: {f}"));
        let per_item = measure_cost_per_item(&scenario).unwrap_or_else(|f| panic!("per-item: {f}"));
        assert_eq!(batched, per_item, "meter-only reports diverged");
    }
}
