//! Golden-cost lock: the metered words and messages of every
//! `default_matrix()` scenario are pinned to the values the *pre-overhaul*
//! (PR 1) harness produced.
//!
//! Performance work — batching, hashing, metering, sampling — must leave
//! the communication transcript bit-identical: any drift here is a change
//! to protocol semantics (or to the seeded workload bytes), not a speedup.
//! Regenerate the fixture only when a PR *deliberately* changes protocol
//! behavior, with:
//!
//! ```text
//! cargo run --release -p dtrack-testkit --example golden_dump \
//!     > crates/testkit/tests/golden_matrix_costs.txt
//! ```

use dtrack_testkit::{default_matrix, measure_cost, run_scenario};

const GOLDEN: &str = include_str!("golden_matrix_costs.txt");

#[derive(Debug, PartialEq, Eq)]
struct GoldenLine {
    scenario: String,
    check_words: u64,
    check_messages: u64,
    meter_words: u64,
    meter_messages: u64,
}

fn parse_golden() -> Vec<GoldenLine> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let parts: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(parts.len(), 7, "malformed golden line: {l}");
            assert_eq!(parts[1], "check");
            assert_eq!(parts[4], "meter");
            GoldenLine {
                scenario: parts[0].to_owned(),
                check_words: parts[2].parse().unwrap(),
                check_messages: parts[3].parse().unwrap(),
                meter_words: parts[5].parse().unwrap(),
                meter_messages: parts[6].parse().unwrap(),
            }
        })
        .collect()
}

#[test]
fn default_matrix_costs_are_bit_identical_to_golden() {
    let golden = parse_golden();
    let scenarios = default_matrix();
    assert_eq!(
        golden.len(),
        scenarios.len(),
        "fixture and matrix disagree on scenario count — regenerate the fixture"
    );
    for (scenario, expect) in scenarios.iter().zip(&golden) {
        assert_eq!(
            scenario.to_string(),
            expect.scenario,
            "matrix order changed — regenerate the fixture"
        );
        let checked = run_scenario(scenario).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(
            (checked.words, checked.messages),
            (expect.check_words, expect.check_messages),
            "differential-mode cost drifted for {scenario}"
        );
        let metered = measure_cost(scenario).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(
            (metered.words, metered.messages),
            (expect.meter_words, expect.meter_messages),
            "meter-mode cost drifted for {scenario}"
        );
    }
}
