//! Golden-cost lock: the metered words and messages of every
//! `default_matrix()` scenario are pinned to the values the *pre-overhaul*
//! (PR 1) harness produced.
//!
//! Performance work — batching, hashing, metering, sampling — must leave
//! the communication transcript bit-identical: any drift here is a change
//! to protocol semantics (or to the seeded workload bytes), not a speedup.
//! Regenerate the fixture only when a PR *deliberately* changes protocol
//! behavior, with:
//!
//! ```text
//! cargo run --release -p dtrack-testkit --example golden_dump \
//!     > crates/testkit/tests/golden_matrix_costs.txt
//! ```

use dtrack_testkit::{assert_matches_golden, default_matrix, golden, measure_cost, run_scenario};

const GOLDEN: &str = include_str!("golden_matrix_costs.txt");

#[test]
fn default_matrix_costs_are_bit_identical_to_golden() {
    let golden = golden::parse(GOLDEN);
    let scenarios = default_matrix();
    assert_eq!(
        golden.len(),
        scenarios.len(),
        "fixture and matrix disagree on scenario count — regenerate the fixture"
    );
    for (scenario, expect) in scenarios.iter().zip(&golden) {
        assert_eq!(
            scenario.to_string(),
            expect.scenario,
            "matrix order changed — regenerate the fixture"
        );
        // On drift these print the actual per-kind breakdown next to the
        // golden totals instead of two bare integers.
        let checked = run_scenario(scenario).unwrap_or_else(|f| panic!("{f}"));
        assert_matches_golden(
            scenario,
            "",
            "differential-mode",
            (checked.words, checked.messages),
            &checked.by_kind,
            (expect.check_words, expect.check_messages),
        );
        let metered = measure_cost(scenario).unwrap_or_else(|f| panic!("{f}"));
        assert_matches_golden(
            scenario,
            "",
            "meter-mode",
            (metered.words, metered.messages),
            &metered.by_kind,
            (expect.meter_words, expect.meter_messages),
        );
    }
}
