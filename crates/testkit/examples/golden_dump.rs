//! Regenerate the golden communication-cost fixture.
//!
//! ```text
//! cargo run --release -p dtrack-testkit --example golden_dump \
//!     > crates/testkit/tests/golden_matrix_costs.txt
//! ```
//!
//! The fixture pins the metered words and messages of every
//! `default_matrix()` scenario, in both differential (`check`) and
//! meter-only modes. Performance work must keep these values bit-identical:
//! any drift means the protocol semantics moved, not just the speed.

use dtrack_testkit::{default_matrix, measure_cost, run_scenario};

fn main() {
    for scenario in default_matrix() {
        let checked = run_scenario(&scenario).expect("matrix scenario must pass");
        let metered = measure_cost(&scenario).expect("metering must succeed");
        println!(
            "{} check {} {} meter {} {}",
            scenario, checked.words, checked.messages, metered.words, metered.messages
        );
    }
}
