fn main() {
    for s in dtrack_testkit::default_matrix() {
        match dtrack_testkit::run_scenario(&s) {
            Ok(r) => println!(
                "{:>6.1}% {:>9} / {:>9}  {}",
                100.0 * r.budget_used(),
                r.words,
                r.budget_words,
                r.scenario
            ),
            Err(e) => println!("FAIL {e}"),
        }
    }
}
