//! Parser for the golden communication-cost fixture
//! (`tests/golden_matrix_costs.txt`) — one place, so every suite that
//! locks against the fixture (`golden_costs.rs`,
//! `threaded_equivalence.rs`, `sharded_equivalence.rs`) reads the same
//! format and a format change is absorbed here instead of in three
//! copies.
//!
//! Each line is `SCENARIO check WORDS MESSAGES meter WORDS MESSAGES`:
//! the costs of the scenario in differential (`check`) mode and in
//! meter-only mode, as written by `--example golden_dump`.

use std::collections::BTreeMap;

/// One parsed fixture line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenLine {
    /// Replayable scenario name (`Scenario`'s `Display`).
    pub scenario: String,
    /// Metered words in differential (check) mode.
    pub check_words: u64,
    /// Metered messages in differential (check) mode.
    pub check_messages: u64,
    /// Metered words in meter-only mode.
    pub meter_words: u64,
    /// Metered messages in meter-only mode.
    pub meter_messages: u64,
}

/// Parse the whole fixture, panicking (with the offending line) on any
/// format drift — a malformed fixture must fail the suite loudly.
pub fn parse(fixture: &str) -> Vec<GoldenLine> {
    fixture
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let parts: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(parts.len(), 7, "malformed golden line: {l}");
            assert_eq!(parts[1], "check", "malformed golden line: {l}");
            assert_eq!(parts[4], "meter", "malformed golden line: {l}");
            GoldenLine {
                scenario: parts[0].to_owned(),
                check_words: parts[2].parse().unwrap(),
                check_messages: parts[3].parse().unwrap(),
                meter_words: parts[5].parse().unwrap(),
                meter_messages: parts[6].parse().unwrap(),
            }
        })
        .collect()
}

/// scenario name → (meter-mode words, meter-mode messages): the map the
/// equivalence suites compare parallel backends against.
pub fn meter_costs(fixture: &str) -> BTreeMap<String, (u64, u64)> {
    parse(fixture)
        .into_iter()
        .map(|l| (l.scenario, (l.meter_words, l.meter_messages)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lines_and_builds_the_meter_map() {
        let fixture = "a/b/k3 check 10 5 meter 20 7\n\nc/d/k5 check 1 1 meter 2 2\n";
        let lines = parse(fixture);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].scenario, "a/b/k3");
        assert_eq!(lines[0].check_words, 10);
        assert_eq!(lines[0].meter_messages, 7);
        let map = meter_costs(fixture);
        assert_eq!(map["a/b/k3"], (20, 7));
        assert_eq!(map["c/d/k5"], (2, 2));
    }

    #[test]
    #[should_panic(expected = "malformed golden line")]
    fn rejects_format_drift() {
        parse("a/b check 1 2 3 4\n");
    }
}
