//! Seeded fault schedules for hostile-scenario testing.
//!
//! A [`FaultPlan`] is part of a [`crate::Scenario`]: a `Copy` description
//! of *when* the environment turns hostile — a site dying mid-stream, a
//! slow consumer stalling, a tight queue cap — that is fully determined
//! by the scenario itself. The runner injects each event at a quiescent
//! chunk boundary (after exactly `at` items have been fed and settled),
//! so the fault's position in the protocol transcript is identical on
//! every backend and the run stays replayable bit-for-bit.
//!
//! The plan also owns the *static rerouting rule* for kills: every item
//! at stream index `>= at` whose assigned site is the dead one is
//! redirected to the next live site (`(dead + 1) % k`). Because the rule
//! depends only on the plan — not on runtime state — all three backends
//! derive the same rerouted stream, which is what makes post-kill
//! equivalence checking possible at all.

use dtrack_sim::{FaultEvent, SiteId};
use std::fmt;

/// Kill one site after `at` items (administrative partition — see
/// [`FaultEvent::KillSite`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillFault {
    /// The site to kill.
    pub site: u32,
    /// Stream index at which the kill is injected (items fed so far).
    pub at: u64,
}

/// Stall one site for `micros` microseconds after `at` items (slow
/// consumer — see [`FaultEvent::StallSite`]; a no-op on the
/// deterministic backend, which has no timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFault {
    /// The site to stall.
    pub site: u32,
    /// Stream index at which the stall is injected.
    pub at: u64,
    /// Stall duration in microseconds.
    pub micros: u64,
}

/// The complete (possibly empty) fault schedule of one scenario.
///
/// `Default` is the benign plan — no faults, default queue depth — and
/// renders as the empty string, so fault-free scenario names (including
/// every golden-fixture row) are unchanged by this type's existence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Kill one site mid-stream.
    pub kill: Option<KillFault>,
    /// Stall one site mid-stream.
    pub stall: Option<StallFault>,
    /// Cap the per-site command queue (parallel backends) at this depth,
    /// forcing backpressure; `None` means the default capacity.
    pub queue_cap: Option<u32>,
}

impl FaultPlan {
    /// True when this plan perturbs nothing (the default).
    pub fn is_benign(&self) -> bool {
        self.kill.is_none() && self.stall.is_none() && self.queue_cap.is_none()
    }

    /// True when the plan kills a site — the one fault class that loses
    /// state, so accuracy checks after it run with relaxed ε.
    pub fn has_kill(&self) -> bool {
        self.kill.is_some()
    }

    /// The injection schedule, sorted by stream index: each entry is
    /// (items-fed-before-injection, event). Stall sorts before kill at
    /// equal indices so a same-instant schedule still stalls a live site.
    pub fn schedule(&self) -> Vec<(u64, FaultEvent)> {
        let mut events = Vec::new();
        if let Some(stall) = self.stall {
            events.push((
                stall.at,
                FaultEvent::StallSite {
                    site: SiteId(stall.site),
                    micros: stall.micros,
                },
            ));
        }
        if let Some(kill) = self.kill {
            events.push((
                kill.at,
                FaultEvent::KillSite {
                    site: SiteId(kill.site),
                },
            ));
        }
        events.sort_by_key(|(at, _)| *at);
        events
    }

    /// The static rerouting rule: where the item at stream index `idx`,
    /// assigned to `site`, is actually delivered. Items at or past the
    /// kill point addressed to the dead site go to the next live site;
    /// everything else is unchanged.
    pub fn route(&self, idx: u64, site: SiteId, k: u32) -> SiteId {
        match self.kill {
            Some(kill) if idx >= kill.at && site.0 == kill.site => SiteId((kill.site + 1) % k),
            _ => site,
        }
    }

    /// Check the plan is injectable into a (k, n) scenario: sites in
    /// range, indices within the stream, a kill never orphans the
    /// reroute target, durations/caps nonzero.
    pub fn validate(&self, k: u32, n: u64) -> Result<(), String> {
        if let Some(kill) = self.kill {
            if kill.site >= k {
                return Err(format!("kill site {} out of range (k={k})", kill.site));
            }
            if kill.at == 0 || kill.at >= n {
                return Err(format!("kill at {} outside (0, n={n})", kill.at));
            }
            if k < 2 {
                return Err("kill needs k >= 2 (no reroute target)".into());
            }
        }
        if let Some(stall) = self.stall {
            if stall.site >= k {
                return Err(format!("stall site {} out of range (k={k})", stall.site));
            }
            if stall.at >= n {
                return Err(format!("stall at {} outside [0, n={n})", stall.at));
            }
            if stall.micros == 0 {
                return Err("stall duration must be nonzero".into());
            }
            if let Some(kill) = self.kill {
                if stall.site == kill.site && stall.at >= kill.at {
                    return Err("cannot stall a site at or after its own kill".into());
                }
            }
        }
        if self.queue_cap == Some(0) {
            return Err("queue cap must be nonzero".into());
        }
        Ok(())
    }

    /// A deterministic, always-valid plan derived from `seed` for a
    /// (k, n) scenario — the property-test surface: same seed, same
    /// plan, bit for bit. Low seed bits select which fault classes are
    /// present, so the space covers benign through fully hostile.
    pub fn seeded(seed: u64, k: u32, n: u64) -> FaultPlan {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        if k < 2 || n < 4 {
            return FaultPlan::default();
        }
        let kill = (seed & 1 != 0).then(|| KillFault {
            site: (mix(seed) % u64::from(k)) as u32,
            at: 1 + mix(seed ^ 0xdead) % (n - 1),
        });
        let mut plan = FaultPlan {
            kill,
            stall: None,
            queue_cap: (seed & 4 != 0).then(|| 2 + (mix(seed ^ 0xca9) % 31) as u32),
        };
        if seed & 2 != 0 {
            // Pick a (site, at) that validate() accepts alongside the kill.
            let site = (mix(seed ^ 0x57a11) % u64::from(k)) as u32;
            let at = mix(seed ^ 0x0057_a112) % n;
            let conflicts = plan.kill.is_some_and(|kf| kf.site == site && at >= kf.at);
            if !conflicts {
                plan.stall = Some(StallFault {
                    site,
                    at,
                    micros: 1 + mix(seed ^ 0x0057_a113) % 500,
                });
            }
        }
        debug_assert!(plan.validate(k, n).is_ok());
        plan
    }
}

/// Renders the scenario-name suffix: empty for the benign plan, else
/// `/kill{site}@{at}`, `/stall{site}@{at}x{micros}`, `/cap{cap}` in that
/// fixed order — appended to [`crate::Scenario`]'s `Display`, keeping
/// fault-free names (and the golden fixture) byte-identical.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(kill) = self.kill {
            write!(f, "/kill{}@{}", kill.site, kill.at)?;
        }
        if let Some(stall) = self.stall {
            write!(f, "/stall{}@{}x{}", stall.site, stall.at, stall.micros)?;
        }
        if let Some(cap) = self.queue_cap {
            write!(f, "/cap{cap}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_is_invisible() {
        let plan = FaultPlan::default();
        assert!(plan.is_benign());
        assert!(!plan.has_kill());
        assert_eq!(plan.to_string(), "");
        assert!(plan.schedule().is_empty());
        assert!(plan.validate(4, 100).is_ok());
    }

    #[test]
    fn display_suffix_is_stable() {
        let plan = FaultPlan {
            kill: Some(KillFault { site: 1, at: 3000 }),
            stall: Some(StallFault {
                site: 0,
                at: 1000,
                micros: 2000,
            }),
            queue_cap: Some(4),
        };
        assert_eq!(plan.to_string(), "/kill1@3000/stall0@1000x2000/cap4");
    }

    #[test]
    fn schedule_sorts_by_stream_index() {
        let plan = FaultPlan {
            kill: Some(KillFault { site: 1, at: 100 }),
            stall: Some(StallFault {
                site: 0,
                at: 400,
                micros: 10,
            }),
            queue_cap: None,
        };
        let schedule = plan.schedule();
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule[0].0, 100);
        assert!(matches!(schedule[0].1, FaultEvent::KillSite { site } if site == SiteId(1)));
        assert_eq!(schedule[1].0, 400);
    }

    #[test]
    fn route_redirects_only_the_dead_site_after_the_kill() {
        let plan = FaultPlan {
            kill: Some(KillFault { site: 2, at: 50 }),
            ..FaultPlan::default()
        };
        // Before the kill: untouched.
        assert_eq!(plan.route(49, SiteId(2), 4), SiteId(2));
        // After: dead site's items go to the next live site.
        assert_eq!(plan.route(50, SiteId(2), 4), SiteId(3));
        assert_eq!(plan.route(99, SiteId(2), 4), SiteId(3));
        // Other sites are never touched.
        assert_eq!(plan.route(99, SiteId(0), 4), SiteId(0));
        // Wraparound when the last site dies.
        let plan = FaultPlan {
            kill: Some(KillFault { site: 3, at: 50 }),
            ..FaultPlan::default()
        };
        assert_eq!(plan.route(60, SiteId(3), 4), SiteId(0));
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let ok = |plan: FaultPlan| plan.validate(4, 1000);
        assert!(ok(FaultPlan {
            kill: Some(KillFault { site: 4, at: 10 }),
            ..FaultPlan::default()
        })
        .is_err());
        assert!(ok(FaultPlan {
            kill: Some(KillFault { site: 0, at: 0 }),
            ..FaultPlan::default()
        })
        .is_err());
        assert!(ok(FaultPlan {
            kill: Some(KillFault { site: 0, at: 1000 }),
            ..FaultPlan::default()
        })
        .is_err());
        assert!(ok(FaultPlan {
            stall: Some(StallFault {
                site: 0,
                at: 10,
                micros: 0,
            }),
            ..FaultPlan::default()
        })
        .is_err());
        // Stalling a site after its own death is meaningless.
        assert!(ok(FaultPlan {
            kill: Some(KillFault { site: 1, at: 100 }),
            stall: Some(StallFault {
                site: 1,
                at: 200,
                micros: 5,
            }),
            ..FaultPlan::default()
        })
        .is_err());
        assert!(ok(FaultPlan {
            queue_cap: Some(0),
            ..FaultPlan::default()
        })
        .is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, 5, 2000);
            let b = FaultPlan::seeded(seed, 5, 2000);
            assert_eq!(a, b);
            assert!(a.validate(5, 2000).is_ok(), "seed {seed}: {a:?}");
        }
        // The space includes all fault classes.
        let plans: Vec<_> = (0..64).map(|s| FaultPlan::seeded(s, 5, 2000)).collect();
        assert!(plans.iter().any(|p| p.is_benign()));
        assert!(plans.iter().any(|p| p.kill.is_some()));
        assert!(plans.iter().any(|p| p.stall.is_some()));
        assert!(plans.iter().any(|p| p.queue_cap.is_some()));
    }

    #[test]
    fn tiny_scenarios_get_benign_plans() {
        assert!(FaultPlan::seeded(7, 1, 2000).is_benign());
        assert!(FaultPlan::seeded(7, 5, 3).is_benign());
    }
}
