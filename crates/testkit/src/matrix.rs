//! The default scenario matrix: a deterministic spread of
//! (generator × assignment × k × ε × protocol) combinations.
//!
//! A full cartesian product over the axes would be thousands of runs; the
//! default matrix instead rotates the axes Latin-square style so that
//! every protocol meets every generator, every assignment, several k and
//! several ε across the suite, while staying fast enough to run in every
//! `cargo test`. Use [`matrix`] directly for a custom (e.g. nightly-sized)
//! product.

use crate::faults::{FaultPlan, KillFault, StallFault};
use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};

/// The generator axis used by the default matrix.
pub const GENERATORS: [GeneratorSpec; 5] = [
    GeneratorSpec::Zipf {
        universe: 1 << 20,
        s: 1.2,
    },
    GeneratorSpec::Uniform { universe: 1 << 36 },
    GeneratorSpec::SortedRamp { start: 0, step: 17 },
    GeneratorSpec::ShiftingZipf {
        universe: 1 << 24,
        s: 1.3,
        shift_every: 1_500,
    },
    GeneratorSpec::TwoPhaseDrift {
        band: 1 << 20,
        switch_at: 3_000,
    },
];

/// The assignment axis used by the default matrix.
pub const ASSIGNMENTS: [AssignmentSpec; 4] = [
    AssignmentSpec::RoundRobin,
    AssignmentSpec::UniformSites,
    AssignmentSpec::SkewedSites { s: 1.3 },
    AssignmentSpec::Bursts { burst_len: 97 },
];

/// The protocol axis used by the default matrix.
pub const PROTOCOLS: [ProtocolSpec; 10] = [
    ProtocolSpec::Counter,
    ProtocolSpec::HhExact,
    ProtocolSpec::HhSketched,
    ProtocolSpec::QuantileExact { phi: 0.5 },
    ProtocolSpec::QuantileExact { phi: 0.25 },
    ProtocolSpec::QuantileSketched { phi: 0.5 },
    ProtocolSpec::AllQExact,
    ProtocolSpec::Cgmr,
    ProtocolSpec::Polling,
    ProtocolSpec::ForwardAll,
];

/// The site-count axis used by the default matrix.
pub const KS: [u32; 3] = [3, 5, 8];

/// The ε axis used by the default matrix.
pub const EPSILONS: [f64; 3] = [0.05, 0.1, 0.2];

/// Explicit cartesian product over given axes — every combination, one
/// scenario each. Stream length and seed are derived deterministically.
pub fn matrix(
    generators: &[GeneratorSpec],
    assignments: &[AssignmentSpec],
    ks: &[u32],
    epsilons: &[f64],
    protocols: &[ProtocolSpec],
    n: u64,
) -> Vec<Scenario> {
    let mut out = Vec::new();
    for (gi, &generator) in generators.iter().enumerate() {
        for (ai, &assignment) in assignments.iter().enumerate() {
            for (ki, &k) in ks.iter().enumerate() {
                for (ei, &epsilon) in epsilons.iter().enumerate() {
                    for (pi, &protocol) in protocols.iter().enumerate() {
                        out.push(Scenario {
                            generator,
                            assignment,
                            k,
                            epsilon,
                            n,
                            seed: 1
                                + (((gi * 131 + ai) * 131 + ki) * 131 + ei) as u64 * 131
                                + pi as u64,
                            protocol,
                            tuning: Default::default(),
                            faults: Default::default(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The concurrency-shaped assignment appended as a fifth slice: one
/// straggler site receiving long runs while the rest stay fast. Kept out
/// of [`ASSIGNMENTS`] so the rotation (and therefore the first 40
/// scenarios' parameters and golden costs) stays bit-identical.
pub const STRAGGLER: AssignmentSpec = AssignmentSpec::Straggler { slow_run: 97 };

/// The default matrix: every protocol × 4 rotated slices of the
/// generator/assignment/k/ε axes (40 scenarios, each a distinct
/// combination), plus one straggler-assignment scenario per protocol —
/// the concurrency axis the parallel backends are equivalence-tested on
/// (10 more, [`BASE_MATRIX_LEN`] = 50 so far) — plus the appended
/// hostile-traffic extension ([`hostile_matrix`], 21 more, 71) and the
/// compound-pressure extension ([`pressure_matrix`], 6 more, 77 total).
/// The first [`BASE_MATRIX_LEN`] rows are frozen: extensions are
/// append-only so golden costs and quoted scenario names never move.
pub fn default_matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (pi, &protocol) in PROTOCOLS.iter().enumerate() {
        for slice in 0..4usize {
            let generator = GENERATORS[(pi + slice) % GENERATORS.len()];
            // Stride 3 is coprime to the 4-wide axis, so the four slices
            // visit all four assignments for every protocol.
            let assignment = ASSIGNMENTS[(pi + 3 * slice + 1) % ASSIGNMENTS.len()];
            let k = KS[(pi + slice) % KS.len()];
            let epsilon = EPSILONS[(pi + 2 * slice) % EPSILONS.len()];
            out.push(Scenario {
                generator,
                assignment,
                k,
                epsilon,
                n: 6_000,
                seed: (pi as u64) * 41 + slice as u64 + 1,
                protocol,
                tuning: Default::default(),
                faults: Default::default(),
            });
        }
    }
    for (pi, &protocol) in PROTOCOLS.iter().enumerate() {
        out.push(Scenario {
            generator: GENERATORS[pi % GENERATORS.len()],
            assignment: STRAGGLER,
            k: KS[pi % KS.len()],
            epsilon: EPSILONS[pi % EPSILONS.len()],
            n: 6_000,
            seed: 500 + pi as u64,
            protocol,
            tuning: Default::default(),
            faults: Default::default(),
        });
    }
    debug_assert_eq!(out.len(), BASE_MATRIX_LEN);
    out.extend(hostile_matrix());
    out.extend(pressure_matrix());
    out
}

/// Number of scenarios before the hostile-traffic extension — the prefix
/// whose parameters and golden costs are frozen bit-for-bit.
pub const BASE_MATRIX_LEN: usize = 50;

/// The hostile-traffic extension rows (appended after the frozen
/// [`BASE_MATRIX_LEN`] prefix, seeds 601+): flash crowds, diurnal drift,
/// key churn and site-membership churn across the protocol spread, plus
/// seeded fault rows — queue-cap pressure, slow-consumer stalls, and
/// mid-stream site death (the latter only for protocols that tolerate
/// losing one site's frozen residual state; the checked bound there is
/// 2ε, see `FaultPlan`).
pub fn hostile_matrix() -> Vec<Scenario> {
    let flash = GeneratorSpec::FlashCrowd {
        universe: 1 << 20,
        s: 1.2,
        period: 750,
        flash_len: 150,
    };
    let diurnal = GeneratorSpec::Diurnal {
        band: 1 << 18,
        phases: 4,
        phase_len: 750,
    };
    let key_churn = GeneratorSpec::KeyChurn {
        window: 1 << 16,
        s: 1.2,
        churn_every: 500,
        step: 1 << 12,
    };
    let zipf = GENERATORS[0];
    let uniform = GENERATORS[1];
    let ramp = GENERATORS[2];
    let drift = GENERATORS[4];
    let churn_small = AssignmentSpec::SiteChurn {
        active: 2,
        epoch: 64,
    };
    let churn_wide = AssignmentSpec::SiteChurn {
        active: 3,
        epoch: 128,
    };
    let cap4 = FaultPlan {
        queue_cap: Some(4),
        ..FaultPlan::default()
    };
    let stall0 = FaultPlan {
        stall: Some(StallFault {
            site: 0,
            at: 3_000,
            micros: 2_000,
        }),
        ..FaultPlan::default()
    };
    let kill1 = FaultPlan {
        kill: Some(KillFault { site: 1, at: 3_000 }),
        ..FaultPlan::default()
    };
    let row = |gen, assign, k, eps, seed, protocol| {
        Scenario::new(gen, assign, k, eps, 6_000, seed, protocol)
    };
    vec![
        // Hostile traffic, benign environment (601–610).
        row(flash, ASSIGNMENTS[0], 4, 0.1, 601, ProtocolSpec::HhExact),
        row(flash, ASSIGNMENTS[1], 5, 0.1, 602, ProtocolSpec::HhSketched),
        row(flash, ASSIGNMENTS[2], 4, 0.2, 603, ProtocolSpec::Counter),
        row(
            diurnal,
            ASSIGNMENTS[0],
            4,
            0.1,
            604,
            ProtocolSpec::QuantileExact { phi: 0.5 },
        ),
        row(
            diurnal,
            ASSIGNMENTS[3],
            5,
            0.1,
            605,
            ProtocolSpec::QuantileSketched { phi: 0.5 },
        ),
        row(
            diurnal,
            ASSIGNMENTS[1],
            4,
            0.2,
            606,
            ProtocolSpec::AllQExact,
        ),
        row(
            key_churn,
            ASSIGNMENTS[0],
            4,
            0.1,
            607,
            ProtocolSpec::HhExact,
        ),
        row(
            key_churn,
            ASSIGNMENTS[1],
            5,
            0.2,
            608,
            ProtocolSpec::QuantileExact { phi: 0.25 },
        ),
        row(zipf, churn_small, 4, 0.1, 609, ProtocolSpec::HhExact),
        // Diurnal, not flash, for the summary-reshipping baseline: a
        // flash atom worth ~30% of a short prefix puts more rank error
        // into CGMR's merged summaries than its ε-band tolerates at the
        // first checkpoint (a baseline limitation, not a harness bug).
        row(diurnal, churn_wide, 5, 0.1, 610, ProtocolSpec::Cgmr),
        // Queue-cap pressure: depth-4 site queues force backpressure on
        // the parallel backends (611–614).
        row(zipf, ASSIGNMENTS[0], 4, 0.1, 611, ProtocolSpec::Counter).with_faults(cap4),
        row(zipf, ASSIGNMENTS[3], 4, 0.1, 612, ProtocolSpec::HhExact).with_faults(cap4),
        row(
            ramp,
            ASSIGNMENTS[0],
            4,
            0.1,
            613,
            ProtocolSpec::QuantileExact { phi: 0.5 },
        )
        .with_faults(cap4),
        row(
            uniform,
            ASSIGNMENTS[1],
            5,
            0.1,
            614,
            ProtocolSpec::ForwardAll,
        )
        .with_faults(cap4),
        // Slow-consumer stalls: site 0 sleeps 2ms mid-stream (615–617).
        row(zipf, ASSIGNMENTS[0], 4, 0.1, 615, ProtocolSpec::HhExact).with_faults(stall0),
        row(
            drift,
            ASSIGNMENTS[0],
            4,
            0.1,
            616,
            ProtocolSpec::QuantileExact { phi: 0.5 },
        )
        .with_faults(stall0),
        row(zipf, ASSIGNMENTS[2], 5, 0.1, 617, ProtocolSpec::Counter).with_faults(stall0),
        // Site death: site 1 is partitioned away mid-stream and its items
        // rerouted; only death-tolerant protocols (618–621).
        row(zipf, ASSIGNMENTS[0], 4, 0.1, 618, ProtocolSpec::Counter).with_faults(kill1),
        row(
            uniform,
            ASSIGNMENTS[0],
            4,
            0.1,
            619,
            ProtocolSpec::ForwardAll,
        )
        .with_faults(kill1),
        row(zipf, ASSIGNMENTS[1], 5, 0.1, 620, ProtocolSpec::Cgmr).with_faults(kill1),
        row(zipf, ASSIGNMENTS[0], 4, 0.1, 621, ProtocolSpec::Polling).with_faults(kill1),
    ]
}

/// The compound-pressure extension rows (appended after the hostile
/// rows, seeds 701+): slow-consumer backpressure and mid-run site death
/// promoted to first-class axes by *combining* faults — every row pairs
/// a stall or a kill with depth-4 queue caps (or a second fault), so the
/// AIMD flow controller and the deadline-aware settle are exercised
/// under compound stress, not one fault at a time. The invariants the
/// suites hold these rows to are the usual ones: settle terminates
/// within the harness deadline, accuracy stays within the checked band
/// (2ε for kill rows), and the per-phase word budget holds.
pub fn pressure_matrix() -> Vec<Scenario> {
    let zipf = GENERATORS[0];
    let uniform = GENERATORS[1];
    let drift = GENERATORS[4];
    // A stalled site whose queue is only 4 commands deep: the feeder hits
    // backpressure almost immediately, the controller's drift signal
    // fires, and settle still has to terminate.
    let stall_cap = FaultPlan {
        stall: Some(StallFault {
            site: 0,
            at: 3_000,
            micros: 2_000,
        }),
        queue_cap: Some(4),
        ..FaultPlan::default()
    };
    // A site dying mid-run while every queue is shallow: rerouted items
    // land on already-backpressured neighbours.
    let kill_cap = FaultPlan {
        kill: Some(KillFault { site: 1, at: 3_000 }),
        queue_cap: Some(4),
        ..FaultPlan::default()
    };
    let kill2_cap = FaultPlan {
        kill: Some(KillFault { site: 2, at: 2_000 }),
        queue_cap: Some(4),
        ..FaultPlan::default()
    };
    // A stall early and a death late, on different sites.
    let kill_stall = FaultPlan {
        kill: Some(KillFault { site: 1, at: 4_000 }),
        stall: Some(StallFault {
            site: 0,
            at: 1_000,
            micros: 1_000,
        }),
        ..FaultPlan::default()
    };
    let row = |gen, assign, k, eps, seed, protocol| {
        Scenario::new(gen, assign, k, eps, 6_000, seed, protocol)
    };
    vec![
        // Slow-consumer backpressure under shallow queues (701–703).
        row(zipf, ASSIGNMENTS[0], 4, 0.1, 701, ProtocolSpec::Counter).with_faults(stall_cap),
        row(zipf, ASSIGNMENTS[3], 4, 0.1, 702, ProtocolSpec::HhExact).with_faults(stall_cap),
        row(
            drift,
            ASSIGNMENTS[0],
            4,
            0.1,
            703,
            ProtocolSpec::QuantileSketched { phi: 0.5 },
        )
        .with_faults(stall_cap),
        // Mid-run site death under pressure; death-tolerant protocols
        // only, as in the hostile rows (704–706).
        row(zipf, ASSIGNMENTS[0], 4, 0.1, 704, ProtocolSpec::Counter).with_faults(kill_cap),
        row(zipf, ASSIGNMENTS[1], 5, 0.1, 705, ProtocolSpec::Polling).with_faults(kill2_cap),
        row(uniform, ASSIGNMENTS[0], 4, 0.1, 706, ProtocolSpec::Cgmr).with_faults(kill_stall),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn combo_key(s: &Scenario) -> (String, String, u32, u64, String, String) {
        (
            s.generator.label().to_owned(),
            s.assignment.label().to_owned(),
            s.k,
            s.epsilon.to_bits(),
            s.protocol.label().to_owned(),
            s.faults.to_string(),
        )
    }

    #[test]
    fn default_matrix_has_at_least_30_distinct_combinations() {
        let scenarios = default_matrix();
        let combos: BTreeSet<_> = scenarios.iter().map(combo_key).collect();
        assert!(
            combos.len() >= 30,
            "only {} distinct combinations",
            combos.len()
        );
        assert_eq!(combos.len(), scenarios.len(), "duplicate combination");
    }

    #[test]
    fn default_matrix_covers_every_axis_value() {
        let scenarios = default_matrix();
        for g in GENERATORS {
            assert!(scenarios.iter().any(|s| s.generator == g), "missing {g:?}");
        }
        for a in ASSIGNMENTS {
            assert!(scenarios.iter().any(|s| s.assignment == a), "missing {a:?}");
        }
        // The concurrency axis: every protocol meets the straggler shape.
        for p in PROTOCOLS {
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.assignment == STRAGGLER && s.protocol == p),
                "missing straggler scenario for {p:?}"
            );
        }
        for p in PROTOCOLS {
            assert!(scenarios.iter().any(|s| s.protocol == p), "missing {p:?}");
        }
        for k in KS {
            assert!(scenarios.iter().any(|s| s.k == k), "missing k={k}");
        }
        for e in EPSILONS {
            assert!(scenarios.iter().any(|s| s.epsilon == e), "missing eps={e}");
        }
    }

    #[test]
    fn hostile_rows_are_append_only_and_valid() {
        let scenarios = default_matrix();
        assert_eq!(scenarios.len(), BASE_MATRIX_LEN + 21 + 6);
        // The frozen prefix is fault-free — its names (and golden costs)
        // are untouched by the extension.
        for s in &scenarios[..BASE_MATRIX_LEN] {
            assert!(s.faults.is_benign(), "{s}: frozen row gained a fault");
        }
        // Every extension row carries an injectable plan and a fresh seed
        // band, and every hostile axis is represented.
        let hostile = &scenarios[BASE_MATRIX_LEN..];
        for s in hostile {
            assert!(s.faults.validate(s.k, s.n).is_ok(), "{s}");
            assert!(
                (601..=621).contains(&s.seed) || (701..=706).contains(&s.seed),
                "{s}"
            );
        }
        for label in ["flash-crowd", "diurnal", "key-churn"] {
            assert!(hostile.iter().any(|s| s.generator.label() == label));
        }
        assert!(hostile.iter().any(|s| s.assignment.label() == "site-churn"));
        assert!(hostile.iter().any(|s| s.faults.queue_cap.is_some()));
        assert!(hostile.iter().any(|s| s.faults.stall.is_some()));
        assert!(hostile.iter().any(|s| s.faults.has_kill()));
        // Kill rows reroute to the next site, so they need it live: no
        // same-row stall on the reroute target, and k >= 3 or site 2 up.
        for s in hostile.iter().filter(|s| s.faults.has_kill()) {
            assert!(s.k >= 3, "{s}");
        }
    }

    #[test]
    fn pressure_rows_combine_faults_in_a_fresh_seed_band() {
        let rows = pressure_matrix();
        assert_eq!(rows.len(), 6);
        for s in &rows {
            assert!(s.faults.validate(s.k, s.n).is_ok(), "{s}");
            assert!((701..=706).contains(&s.seed), "{s}");
            // The whole point of the band: every row carries at least two
            // fault dimensions at once.
            let dims = usize::from(s.faults.has_kill())
                + usize::from(s.faults.stall.is_some())
                + usize::from(s.faults.queue_cap.is_some());
            assert!(dims >= 2, "{s}: only {dims} fault dimension(s)");
        }
        // Both promoted axes appear: backpressured stalls and kills.
        assert!(rows
            .iter()
            .any(|s| s.faults.stall.is_some() && s.faults.queue_cap.is_some()));
        assert!(rows.iter().any(|s| s.faults.has_kill()));
        // The extension is exactly what default_matrix appends last.
        let all = default_matrix();
        assert_eq!(&all[BASE_MATRIX_LEN + 21..], &rows[..]);
    }

    #[test]
    fn cartesian_matrix_is_complete() {
        let m = matrix(
            &GENERATORS[..2],
            &ASSIGNMENTS[..2],
            &[4],
            &[0.1, 0.2],
            &[ProtocolSpec::Counter, ProtocolSpec::ForwardAll],
            1000,
        );
        assert_eq!(m.len(), 2 * 2 * 2 * 2);
        let combos: BTreeSet<_> = m.iter().map(combo_key).collect();
        assert_eq!(combos.len(), m.len());
    }
}
