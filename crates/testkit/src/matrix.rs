//! The default scenario matrix: a deterministic spread of
//! (generator × assignment × k × ε × protocol) combinations.
//!
//! A full cartesian product over the axes would be thousands of runs; the
//! default matrix instead rotates the axes Latin-square style so that
//! every protocol meets every generator, every assignment, several k and
//! several ε across the suite, while staying fast enough to run in every
//! `cargo test`. Use [`matrix`] directly for a custom (e.g. nightly-sized)
//! product.

use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};

/// The generator axis used by the default matrix.
pub const GENERATORS: [GeneratorSpec; 5] = [
    GeneratorSpec::Zipf {
        universe: 1 << 20,
        s: 1.2,
    },
    GeneratorSpec::Uniform { universe: 1 << 36 },
    GeneratorSpec::SortedRamp { start: 0, step: 17 },
    GeneratorSpec::ShiftingZipf {
        universe: 1 << 24,
        s: 1.3,
        shift_every: 1_500,
    },
    GeneratorSpec::TwoPhaseDrift {
        band: 1 << 20,
        switch_at: 3_000,
    },
];

/// The assignment axis used by the default matrix.
pub const ASSIGNMENTS: [AssignmentSpec; 4] = [
    AssignmentSpec::RoundRobin,
    AssignmentSpec::UniformSites,
    AssignmentSpec::SkewedSites { s: 1.3 },
    AssignmentSpec::Bursts { burst_len: 97 },
];

/// The protocol axis used by the default matrix.
pub const PROTOCOLS: [ProtocolSpec; 10] = [
    ProtocolSpec::Counter,
    ProtocolSpec::HhExact,
    ProtocolSpec::HhSketched,
    ProtocolSpec::QuantileExact { phi: 0.5 },
    ProtocolSpec::QuantileExact { phi: 0.25 },
    ProtocolSpec::QuantileSketched { phi: 0.5 },
    ProtocolSpec::AllQExact,
    ProtocolSpec::Cgmr,
    ProtocolSpec::Polling,
    ProtocolSpec::ForwardAll,
];

/// The site-count axis used by the default matrix.
pub const KS: [u32; 3] = [3, 5, 8];

/// The ε axis used by the default matrix.
pub const EPSILONS: [f64; 3] = [0.05, 0.1, 0.2];

/// Explicit cartesian product over given axes — every combination, one
/// scenario each. Stream length and seed are derived deterministically.
pub fn matrix(
    generators: &[GeneratorSpec],
    assignments: &[AssignmentSpec],
    ks: &[u32],
    epsilons: &[f64],
    protocols: &[ProtocolSpec],
    n: u64,
) -> Vec<Scenario> {
    let mut out = Vec::new();
    for (gi, &generator) in generators.iter().enumerate() {
        for (ai, &assignment) in assignments.iter().enumerate() {
            for (ki, &k) in ks.iter().enumerate() {
                for (ei, &epsilon) in epsilons.iter().enumerate() {
                    for (pi, &protocol) in protocols.iter().enumerate() {
                        out.push(Scenario {
                            generator,
                            assignment,
                            k,
                            epsilon,
                            n,
                            seed: 1
                                + (((gi * 131 + ai) * 131 + ki) * 131 + ei) as u64 * 131
                                + pi as u64,
                            protocol,
                            tuning: Default::default(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The concurrency-shaped assignment appended as a fifth slice: one
/// straggler site receiving long runs while the rest stay fast. Kept out
/// of [`ASSIGNMENTS`] so the rotation (and therefore the first 40
/// scenarios' parameters and golden costs) stays bit-identical.
pub const STRAGGLER: AssignmentSpec = AssignmentSpec::Straggler { slow_run: 97 };

/// The default matrix: every protocol × 4 rotated slices of the
/// generator/assignment/k/ε axes (40 scenarios, each a distinct
/// combination), plus one straggler-assignment scenario per protocol —
/// the concurrency axis the parallel backends are equivalence-tested on
/// (10 more scenarios, 50 total).
pub fn default_matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (pi, &protocol) in PROTOCOLS.iter().enumerate() {
        for slice in 0..4usize {
            let generator = GENERATORS[(pi + slice) % GENERATORS.len()];
            // Stride 3 is coprime to the 4-wide axis, so the four slices
            // visit all four assignments for every protocol.
            let assignment = ASSIGNMENTS[(pi + 3 * slice + 1) % ASSIGNMENTS.len()];
            let k = KS[(pi + slice) % KS.len()];
            let epsilon = EPSILONS[(pi + 2 * slice) % EPSILONS.len()];
            out.push(Scenario {
                generator,
                assignment,
                k,
                epsilon,
                n: 6_000,
                seed: (pi as u64) * 41 + slice as u64 + 1,
                protocol,
                tuning: Default::default(),
            });
        }
    }
    for (pi, &protocol) in PROTOCOLS.iter().enumerate() {
        out.push(Scenario {
            generator: GENERATORS[pi % GENERATORS.len()],
            assignment: STRAGGLER,
            k: KS[pi % KS.len()],
            epsilon: EPSILONS[pi % EPSILONS.len()],
            n: 6_000,
            seed: 500 + pi as u64,
            protocol,
            tuning: Default::default(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn combo_key(s: &Scenario) -> (String, String, u32, u64, String) {
        (
            s.generator.label().to_owned(),
            s.assignment.label().to_owned(),
            s.k,
            s.epsilon.to_bits(),
            s.protocol.label().to_owned(),
        )
    }

    #[test]
    fn default_matrix_has_at_least_30_distinct_combinations() {
        let scenarios = default_matrix();
        let combos: BTreeSet<_> = scenarios.iter().map(combo_key).collect();
        assert!(
            combos.len() >= 30,
            "only {} distinct combinations",
            combos.len()
        );
        assert_eq!(combos.len(), scenarios.len(), "duplicate combination");
    }

    #[test]
    fn default_matrix_covers_every_axis_value() {
        let scenarios = default_matrix();
        for g in GENERATORS {
            assert!(scenarios.iter().any(|s| s.generator == g), "missing {g:?}");
        }
        for a in ASSIGNMENTS {
            assert!(scenarios.iter().any(|s| s.assignment == a), "missing {a:?}");
        }
        // The concurrency axis: every protocol meets the straggler shape.
        for p in PROTOCOLS {
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.assignment == STRAGGLER && s.protocol == p),
                "missing straggler scenario for {p:?}"
            );
        }
        for p in PROTOCOLS {
            assert!(scenarios.iter().any(|s| s.protocol == p), "missing {p:?}");
        }
        for k in KS {
            assert!(scenarios.iter().any(|s| s.k == k), "missing k={k}");
        }
        for e in EPSILONS {
            assert!(scenarios.iter().any(|s| s.epsilon == e), "missing eps={e}");
        }
    }

    #[test]
    fn cartesian_matrix_is_complete() {
        let m = matrix(
            &GENERATORS[..2],
            &ASSIGNMENTS[..2],
            &[4],
            &[0.1, 0.2],
            &[ProtocolSpec::Counter, ProtocolSpec::ForwardAll],
            1000,
        );
        assert_eq!(m.len(), 2 * 2 * 2 * 2);
        let combos: BTreeSet<_> = m.iter().map(combo_key).collect();
        assert_eq!(combos.len(), m.len());
    }
}
