//! Equivalence-failure forensics: per-kind cost delta tables and the
//! `trace_diff` replay debugger.
//!
//! The equivalence suites used to fail with a bare
//! `assert_eq!((words, messages), ...)` — two integers and no clue
//! which message kind drifted or *where* in the stream the runtimes
//! parted ways. This module replaces that with two tools:
//!
//! * [`cost_delta_table`] — a sorted per-kind `(words, messages)` table
//!   with signed deltas, built from the [`ScenarioReport::by_kind`]
//!   breakdown both sides already carry. Kind labels sort by
//!   [`dtrack_sim::canonical_kind_order`], so the table lines up with
//!   `MessageMeter::report()` and `TraceSummary` output.
//! * [`trace_diff`] — replay the scenario on both backends with tracing
//!   on ([`run_scenario_traced`]), strip logical clocks, and compare
//!   each site lane's hop stream (`up-hop`/`down-hop` events — exactly
//!   the metered transcript). The report quotes the first diverging
//!   event window instead of a bare "words differ", and both Chrome
//!   traces are exported under [`trace_artifact_dir`] so CI can upload
//!   them as failure artifacts.
//!
//! The suite-facing entry points [`assert_outcomes_match`] and
//! [`assert_matches_golden`] bundle the two: compare, and on mismatch
//! panic with the table (and, for runtime divergence, the trace diff)
//! in the panic message.

use crate::report::ScenarioReport;
use crate::scenario::Scenario;
use crate::threaded::{run_scenario_traced, ThreadedOutcome};
use dtrack_sim::{
    canonical_kind_order, write_chrome_file, BackendKind, TraceEvent, TraceEventKind, TraceLane,
};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Environment variable overriding where [`trace_diff`] writes its
/// exported Chrome traces. Default: `target/trace-artifacts` (relative
/// to the working directory), which CI uploads on matrix-suite failure.
pub const TRACE_DIR_ENV: &str = "DTRACK_TRACE_DIR";

/// Directory trace artifacts are exported to (see [`TRACE_DIR_ENV`]).
pub fn trace_artifact_dir() -> PathBuf {
    match std::env::var(TRACE_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("target/trace-artifacts"),
    }
}

/// Events shown/compared around the first divergence: ±[`WINDOW`] hops.
const WINDOW: usize = 8;

fn lookup(rows: &[(String, u64, u64)], kind: &str) -> (u64, u64) {
    rows.iter()
        .find(|(k, _, _)| k == kind)
        .map(|&(_, w, m)| (w, m))
        .unwrap_or((0, 0))
}

fn delta(actual: u64, expect: u64) -> i128 {
    actual as i128 - expect as i128
}

/// Render a sorted per-kind cost delta table between two metered
/// transcripts. `expect_kinds` may be empty (the golden fixture pins
/// totals only); the table then shows the actual breakdown with deltas
/// against zero suppressed into a totals-only footer.
pub fn cost_delta_table(
    actual_label: &str,
    actual_totals: (u64, u64),
    actual_kinds: &[(String, u64, u64)],
    expect_label: &str,
    expect_totals: (u64, u64),
    expect_kinds: &[(String, u64, u64)],
) -> String {
    let mut kinds: BTreeSet<&str> = BTreeSet::new();
    kinds.extend(actual_kinds.iter().map(|(k, _, _)| k.as_str()));
    kinds.extend(expect_kinds.iter().map(|(k, _, _)| k.as_str()));
    let mut kinds: Vec<&str> = kinds.into_iter().collect();
    kinds.sort_unstable_by(|a, b| canonical_kind_order(a, b));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-kind cost delta ({actual_label} vs {expect_label}), words/messages:"
    );
    let _ = writeln!(
        out,
        "  {:<24} {:>12} {:>12} {:>9}   {:>10} {:>10} {:>8}",
        "kind", "words", "words'", "Δwords", "msgs", "msgs'", "Δmsgs"
    );
    let totals_only = expect_kinds.is_empty() && !actual_kinds.is_empty();
    for kind in kinds {
        let (aw, am) = lookup(actual_kinds, kind);
        let (ew, em) = lookup(expect_kinds, kind);
        if totals_only {
            // No per-kind expectation: show the actual breakdown without
            // fabricating a zero baseline per kind.
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>12} {:>9}   {:>10} {:>10} {:>8}",
                kind, aw, "-", "-", am, "-", "-"
            );
        } else {
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>12} {:>+9}   {:>10} {:>10} {:>+8}",
                kind,
                aw,
                ew,
                delta(aw, ew),
                am,
                em,
                delta(am, em)
            );
        }
    }
    let _ = writeln!(
        out,
        "  {:<24} {:>12} {:>12} {:>+9}   {:>10} {:>10} {:>+8}",
        "TOTAL",
        actual_totals.0,
        expect_totals.0,
        delta(actual_totals.0, expect_totals.0),
        actual_totals.1,
        expect_totals.1,
        delta(actual_totals.1, expect_totals.1)
    );
    out
}

/// A transcript hop, clock-stripped: only `up-hop`/`down-hop` events
/// enter the comparison. Item-run granularity is an execution detail
/// (batch consumption chunks differ per backend), and driver-lane
/// events (settles, queue depths) are schedule bookkeeping — the
/// metered transcript the suites pin is exactly the hop stream.
fn hop_stream(events: &[TraceEvent], site: u32) -> Vec<TraceEventKind> {
    events
        .iter()
        .filter(|e| e.lane == TraceLane::Site(site))
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::UpHop { .. } | TraceEventKind::DownHop { .. }
            )
        })
        .map(|e| e.kind)
        .collect()
}

fn site_lanes(events: &[TraceEvent]) -> BTreeSet<u32> {
    events
        .iter()
        .filter_map(|e| match e.lane {
            TraceLane::Site(i) => Some(i),
            _ => None,
        })
        .collect()
}

fn render_window(out: &mut String, label: &str, stream: &[TraceEventKind], at: usize) {
    let start = at.saturating_sub(WINDOW);
    let end = (at + WINDOW).min(stream.len());
    let _ = writeln!(out, "  {label} hops [{start}..{end}) of {}:", stream.len());
    for (i, kind) in stream.iter().enumerate().take(end).skip(start) {
        let marker = if i == at { ">>" } else { "  " };
        let _ = writeln!(out, "    {marker} [{i:>6}] {kind:?}");
    }
    if at >= stream.len() {
        let _ = writeln!(out, "    >> [{at:>6}] <stream ends here>");
    }
}

/// Replay `scenario` on both backends with tracing on and report the
/// first diverging hop window per site lane — or confirm the traced hop
/// streams agree (pointing the investigation elsewhere). Both Chrome
/// traces are exported under [`trace_artifact_dir`] either way; export
/// errors are noted in the report, never fatal.
pub fn trace_diff(scenario: &Scenario, left: BackendKind, right: BackendKind) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace-diff: replaying [{scenario}] with tracing on ({left} vs {right})"
    );
    let runs = (
        run_scenario_traced(scenario, left),
        run_scenario_traced(scenario, right),
    );
    let (lrun, rrun) = match runs {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) => {
            let _ = writeln!(out, "  traced replay on {left} failed: {e}");
            return out;
        }
        (_, Err(e)) => {
            let _ = writeln!(out, "  traced replay on {right} failed: {e}");
            return out;
        }
    };
    for (backend, run) in [(left, &lrun), (right, &rrun)] {
        let path = trace_artifact_dir().join(format!(
            "{}-{}.trace.json",
            sanitize(&scenario.to_string()),
            sanitize(&backend.to_string())
        ));
        match write_chrome_file(&run.trace, &path) {
            Ok(()) => {
                let _ = writeln!(out, "  chrome trace ({backend}): {}", path.display());
            }
            Err(e) => {
                let _ = writeln!(out, "  chrome trace export failed ({backend}): {e}");
            }
        }
    }

    let mut lanes = site_lanes(&lrun.trace);
    lanes.extend(site_lanes(&rrun.trace));
    let mut diverged = false;
    for site in lanes {
        let lhops = hop_stream(&lrun.trace, site);
        let rhops = hop_stream(&rrun.trace, site);
        let at = match lhops.iter().zip(&rhops).position(|(a, b)| a != b) {
            Some(i) => i,
            None if lhops.len() == rhops.len() => continue,
            None => lhops.len().min(rhops.len()),
        };
        diverged = true;
        let _ = writeln!(
            out,
            "  site {site}: first hop divergence at index {at} \
             ({} vs {} hops total)",
            lhops.len(),
            rhops.len()
        );
        render_window(&mut out, &left.to_string(), &lhops, at);
        render_window(&mut out, &right.to_string(), &rhops, at);
        break; // The first diverging lane is the signal; the rest is noise.
    }
    if !diverged {
        let _ = writeln!(
            out,
            "  per-site hop streams are identical on the traced replay — \
             the divergence is outside the hop transcript (answers, \
             metering registration, or nondeterministic between runs)"
        );
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn totals(report: &ScenarioReport) -> (u64, u64) {
    (report.words, report.messages)
}

/// Assert a parallel-backend outcome matches the deterministic
/// reference: identical answers and identical metered cost. On mismatch,
/// panic with the per-kind delta table and the first diverging traced
/// hop window (`context` tags the variant, e.g. `wire=true`).
pub fn assert_outcomes_match(
    scenario: &Scenario,
    context: &str,
    actual_backend: BackendKind,
    actual: &ThreadedOutcome,
    reference: &ThreadedOutcome,
) {
    let answers_ok = actual.answers == reference.answers;
    let costs_ok = totals(&actual.report) == totals(&reference.report)
        && actual.report.by_kind == reference.report.by_kind;
    if answers_ok && costs_ok {
        return;
    }
    let name = scenario.to_string();
    let ctx = if context.is_empty() {
        String::new()
    } else {
        format!(" {context}:")
    };
    let mut msg = String::new();
    if !answers_ok {
        let _ = writeln!(
            msg,
            "[{name}]{ctx} answers diverge between {actual_backend} and deterministic runtimes"
        );
        let _ = writeln!(msg, "  {actual_backend}: {:?}", actual.answers);
        let _ = writeln!(msg, "  deterministic: {:?}", reference.answers);
    }
    if !costs_ok {
        let _ = writeln!(
            msg,
            "[{name}]{ctx} metered cost diverges between {actual_backend} and deterministic runtimes"
        );
    }
    msg.push_str(&cost_delta_table(
        &actual_backend.to_string(),
        totals(&actual.report),
        &actual.report.by_kind,
        "deterministic",
        totals(&reference.report),
        &reference.report.by_kind,
    ));
    msg.push_str(&trace_diff(
        scenario,
        BackendKind::Deterministic,
        actual_backend,
    ));
    panic!("{msg}");
}

/// Assert metered totals match the golden fixture. The fixture pins
/// totals only, so the table shows the actual per-kind breakdown with a
/// totals delta footer. `label` names the side under test
/// (e.g. `threaded`, `meter-mode`).
pub fn assert_matches_golden(
    scenario: &Scenario,
    context: &str,
    label: &str,
    actual_totals: (u64, u64),
    actual_kinds: &[(String, u64, u64)],
    golden_totals: (u64, u64),
) {
    if actual_totals == golden_totals {
        return;
    }
    let name = scenario.to_string();
    let ctx = if context.is_empty() {
        String::new()
    } else {
        format!(" {context}:")
    };
    let mut msg = format!("[{name}]{ctx} {label} cost drifted from the golden fixture\n");
    msg.push_str(&cost_delta_table(
        label,
        actual_totals,
        actual_kinds,
        "golden",
        golden_totals,
        &[],
    ));
    msg.push_str(
        "regenerate only for deliberate protocol changes:\n  \
         cargo run --release -p dtrack-testkit --example golden_dump \
         > crates/testkit/tests/golden_matrix_costs.txt\n",
    );
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec};

    fn rows(spec: &[(&str, u64, u64)]) -> Vec<(String, u64, u64)> {
        spec.iter().map(|&(k, w, m)| (k.to_owned(), w, m)).collect()
    }

    #[test]
    fn delta_table_sorts_kinds_and_signs_deltas() {
        let actual = rows(&[("sync", 120, 4), ("delta", 30, 10)]);
        let expect = rows(&[("delta", 25, 9), ("start", 8, 2)]);
        let table = cost_delta_table("left", (150, 14), &actual, "right", (33, 11), &expect);
        // Canonical order: delta < start < sync.
        let delta_at = table.find("delta").unwrap();
        let start_at = table.find("start").unwrap();
        let sync_at = table.find("sync").unwrap();
        assert!(delta_at < start_at && start_at < sync_at, "{table}");
        assert!(table.contains("+5"), "words delta for `delta`:\n{table}");
        assert!(table.contains("-8"), "words delta for `start`:\n{table}");
        assert!(table.contains("TOTAL"), "{table}");
        assert!(table.contains("+117"), "total words delta:\n{table}");
    }

    #[test]
    fn delta_table_with_totals_only_expectation_shows_actual_breakdown() {
        let actual = rows(&[("sync", 120, 4)]);
        let table = cost_delta_table("meter", (120, 4), &actual, "golden", (100, 4), &[]);
        assert!(table.contains("sync"), "{table}");
        assert!(table.contains("+20"), "{table}");
        // Per-kind expectation columns stay blank, not fabricated zeros.
        assert!(table.contains('-'), "{table}");
    }

    #[test]
    fn trace_diff_reports_agreement_for_identical_backends() {
        let s = Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 16,
                s: 1.2,
            },
            AssignmentSpec::RoundRobin,
            3,
            0.1,
            1_500,
            9,
            ProtocolSpec::Counter,
        );
        let report = trace_diff(&s, BackendKind::Deterministic, BackendKind::Threaded);
        assert!(
            report.contains("hop streams are identical"),
            "equivalent backends must produce agreeing hop streams:\n{report}"
        );
        assert!(report.contains("chrome trace"), "{report}");
    }

    #[test]
    fn outcome_match_passes_on_equal_runs() {
        let s = Scenario::new(
            GeneratorSpec::Uniform { universe: 1 << 12 },
            AssignmentSpec::RoundRobin,
            2,
            0.2,
            800,
            4,
            ProtocolSpec::Counter,
        );
        let thr = crate::threaded::run_scenario_threaded(&s).unwrap();
        let det = crate::threaded::run_scenario_reference(&s).unwrap();
        assert_outcomes_match(&s, "", BackendKind::Threaded, &thr, &det);
    }
}
