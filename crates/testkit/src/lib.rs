//! # dtrack-testkit — deterministic differential testing
//!
//! A reusable harness that runs every tracking protocol in the workspace —
//! the Yi–Zhang counter / heavy-hitter / quantile / all-quantiles
//! protocols and the CGMR / naive baselines — against the exact
//! [`dtrack_core::ExactOracle`] on a matrix of seeded scenarios, checking
//! two things per run:
//!
//! 1. **Accuracy** — the protocol's ε-guarantee holds at ~16 mid-stream
//!    checkpoints and at the end of the stream (heavy-hitter sets by the
//!    paper's definition, quantiles by the rank-interval convention,
//!    exactness for forward-all).
//! 2. **Communication** — the words metered by [`dtrack_sim`] stay under
//!    an explicit-constant version of the paper's bound for that protocol
//!    ([`bound::word_budget`]).
//!
//! A [`Scenario`] is a *value* — generator, assignment, k, ε, n, seed,
//! protocol — so every failure message names a bit-for-bit replayable
//! run. Integration tests and the experiment harness both drive this
//! crate instead of hand-rolling their own scenario loops.
//!
//! ```
//! use dtrack_testkit::{run_scenario, Scenario};
//! use dtrack_testkit::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec};
//!
//! let report = run_scenario(&Scenario::new(
//!     GeneratorSpec::Zipf { universe: 1 << 20, s: 1.2 },
//!     AssignmentSpec::RoundRobin,
//!     4,    // k
//!     0.1,  // epsilon
//!     2_000, // n
//!     7,    // seed
//!     ProtocolSpec::HhExact,
//! ))
//! .unwrap();
//! assert!(report.checks > 0);
//! assert!(report.words <= report.budget_words);
//! ```

pub mod bound;
pub mod diff;
pub mod faults;
pub mod golden;
pub mod matrix;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod threaded;

pub use diff::{
    assert_matches_golden, assert_outcomes_match, cost_delta_table, trace_artifact_dir, trace_diff,
    TRACE_DIR_ENV,
};
pub use faults::{FaultPlan, KillFault, StallFault};
pub use matrix::{default_matrix, hostile_matrix, matrix, pressure_matrix, BASE_MATRIX_LEN};
pub use registry::{ProtocolProfile, WarmupPolicy};
pub use report::{ScenarioFailure, ScenarioReport};
pub use runner::{
    measure_cost, measure_cost_per_item, run_matrix, run_scenario, run_scenario_on,
    run_scenario_per_item,
};
pub use scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario, Tuning};
pub use threaded::{
    measure_on_backend, measure_threaded, run_scenario_on_backend, run_scenario_reference,
    run_scenario_threaded, run_scenario_traced, ThreadedIngest, ThreadedOutcome,
};

// The facade types scenario drivers hand out, re-exported so harness
// consumers don't need a direct dtrack-sim dependency.
pub use dtrack_sim::{
    Answer, BackendKind, FaultEvent, Query, QueryError, TraceConfig, TraceEvent, TraceEventKind,
    TraceLane, TraceSummary, Tracker, PROBE_PHIS,
};

/// Environment variable read by [`apply_matrix_filter`]: a
/// comma-separated list of substrings matched against each scenario's
/// stable name (its `Display` string, e.g.
/// `counter/zipf/round-robin/k4/eps0.1/n6000/seed618/kill1@3000`). A
/// scenario is kept when any fragment matches; unset or empty keeps
/// everything. Lets CI shard the matrix suites and lets a developer
/// replay one quoted failure by name.
pub const MATRIX_FILTER_ENV: &str = "DTRACK_MATRIX_FILTER";

/// Filter `scenarios` by the `DTRACK_MATRIX_FILTER` environment variable
/// (see [`MATRIX_FILTER_ENV`]); the full list passes through when the
/// variable is unset or empty. Suites assert the *unfiltered* matrix
/// shape first, then apply this, so a typo'd filter fails loudly (zero
/// scenarios) instead of silently passing an empty suite — callers
/// should assert the returned list is non-empty.
pub fn apply_matrix_filter(scenarios: Vec<Scenario>) -> Vec<Scenario> {
    match std::env::var(MATRIX_FILTER_ENV) {
        Ok(raw) if !raw.trim().is_empty() => {
            let fragments: Vec<&str> = raw
                .split(',')
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .collect();
            scenarios
                .into_iter()
                .filter(|s| {
                    let name = s.to_string();
                    fragments.iter().any(|f| name.contains(f))
                })
                .collect()
        }
        _ => scenarios,
    }
}
