//! The metered-communication budget each protocol must stay under.
//!
//! The paper's theorems are asymptotic; the harness turns them into
//! checkable budgets by fixing explicit constants with headroom over the
//! implementation's measured behaviour (calibrated on the default matrix,
//! then asserted on every run — a regression doubling the hidden constant
//! fails the suite, while legitimate O(·)-preserving changes do not):
//!
//! * counter — Θ(k/ε · log n) words (§1),
//! * heavy hitters — Θ(k/ε · log n) (Theorem 2.1),
//! * single quantile — Θ(k/ε · log n) (Theorem 3.1),
//! * all quantiles — Θ(k/ε · log²(1/ε) · log n) (Theorem 4.1),
//! * CGMR / polling baselines — O(k/ε² · log n),
//! * forward-all — exactly one word per arrival (plus nothing down).
//!
//! Which shape and constant applies to which protocol is data in the
//! [`crate::registry`] — this module only evaluates a [`BudgetShape`],
//! so it contains no per-protocol dispatch.
//!
//! Every budget also includes the warm-up spend (the protocols forward
//! raw items until the stream is long enough for thresholds to be ≥ 1
//! item) and a small additive floor so tiny streams aren't judged by an
//! asymptotic formula.

use crate::registry;
use crate::scenario::{GeneratorSpec, Scenario};

/// Additive floor: protocol setup plus at least one full sync round.
const FLOOR: f64 = 256.0;

/// The Θ-shape (and explicit constant) of one protocol's word bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetShape {
    /// `coeff · (k/ε) · log₂ n` — the paper's optimal tracking bound.
    KOverEps(f64),
    /// `coeff · (k/ε) · log₂²(1/ε) · log₂ n` — the all-quantiles tree.
    KOverEpsLogSqInvEps(f64),
    /// `coeff · (k/ε²) · log₂ n` — the summary-reshipping baselines.
    KOverEpsSq(f64),
    /// `coeff · n` — per-arrival forwarding.
    Linear(f64),
}

impl BudgetShape {
    /// Evaluate the tracked-phase budget for the scenario's parameters.
    fn tracked_words(self, k: f64, eps: f64, n: f64) -> f64 {
        let log_n = (n + 2.0).log2();
        let log_inv_eps = (1.0 / eps).log2().max(1.0);
        match self {
            BudgetShape::KOverEps(c) => c * (k / eps) * log_n,
            BudgetShape::KOverEpsLogSqInvEps(c) => {
                c * (k / eps) * log_inv_eps * log_inv_eps * log_n
            }
            BudgetShape::KOverEpsSq(c) => c * (k / (eps * eps)) * log_n,
            BudgetShape::Linear(c) => c * n,
        }
    }
}

/// Structured order-adversarial workloads (the sorted ramp that drags
/// every quantile monotonically, the mid-stream band jump) force the
/// quantile-family protocols to rebuild continuously; the paper's bound
/// still holds but with a larger constant than benign streams exhibit.
/// Budgets for order-statistic protocols on those generators get this
/// factor so that benign-case regressions stay tightly bounded while the
/// worst case is still held to the same O(·) shape.
fn adversarial_factor(scenario: &Scenario) -> f64 {
    // Diurnal band-cycling and sliding key churn drag order statistics
    // exactly like the ramp and the band jump do (flash crowds churn
    // *frequencies*, not value order, so they stay on the benign budget).
    let order_adversarial = matches!(
        scenario.generator,
        GeneratorSpec::SortedRamp { .. }
            | GeneratorSpec::TwoPhaseDrift { .. }
            | GeneratorSpec::Diurnal { .. }
            | GeneratorSpec::KeyChurn { .. }
    );
    if order_adversarial && registry::profile(scenario.protocol).order_sensitive {
        2.0
    } else {
        1.0
    }
}

/// Killing a site mid-stream reroutes its share of the stream onto a
/// neighbour (concentrating one site's load) and strands the victim's
/// un-synced residual, both of which cost extra rounds; the O(·) shape
/// is unchanged, so the budget doubles rather than loosens. Stalls and
/// queue caps are timing/backpressure faults — the transcript is
/// identical, so they get no headroom at all.
fn fault_headroom(scenario: &Scenario) -> f64 {
    if scenario.faults.has_kill() {
        2.0
    } else {
        1.0
    }
}

/// Word budget for `scenario`, given the warm-up length the runner
/// actually configured (`warmup` items are forwarded verbatim at ~1 word
/// each, plus the first sync shipping per-site state).
pub fn word_budget(scenario: &Scenario, warmup: u64) -> u64 {
    let k = scenario.k as f64;
    let eps = scenario.epsilon;
    let n = scenario.n as f64;
    // Warm-up: raw forwards (~2 words each: item + framing under the word
    // model) and the initial summary collection, which is O(k/ε) words for
    // every protocol family here.
    let warmup_cost = 3.0 * warmup as f64 + 4.0 * k / eps;
    let tracked = registry::profile(scenario.protocol)
        .budget
        .tracked_words(k, eps, n);
    let base = warmup_cost + adversarial_factor(scenario) * tracked + FLOOR;
    (fault_headroom(scenario) * base).ceil() as u64
}

/// Words-drift headroom for free-running ingest over the settled budget.
///
/// Free-running arrivals interleave with in-flight communication, so
/// sites act on slightly stale thresholds and spend more words than the
/// transcript-pinned schedule; the AIMD flow controller exists precisely
/// to bound that drift. 1.5× is the contract the controller is held to —
/// the bench gate (`free_run_words_factor`) enforces the same factor
/// against the golden deterministic words.
pub const FREE_RUN_HEADROOM: f64 = 1.5;

/// Word budget for a *free-running* run of `scenario`:
/// [`word_budget`] with [`FREE_RUN_HEADROOM`] on top. Settled
/// (site-at-a-time) rows must not use this — their transcript is pinned
/// and gets no drift allowance at all.
pub fn free_run_word_budget(scenario: &Scenario, warmup: u64) -> u64 {
    (FREE_RUN_HEADROOM * word_budget(scenario, warmup) as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec};

    fn scenario(protocol: ProtocolSpec, k: u32, epsilon: f64, n: u64) -> Scenario {
        Scenario {
            generator: GeneratorSpec::Uniform { universe: 1 << 30 },
            assignment: AssignmentSpec::RoundRobin,
            k,
            epsilon,
            n,
            seed: 1,
            protocol,
            tuning: Default::default(),
            faults: Default::default(),
        }
    }

    #[test]
    fn budget_is_logarithmic_in_n_for_tracking_protocols() {
        let small = word_budget(&scenario(ProtocolSpec::HhExact, 4, 0.1, 10_000), 0);
        let large = word_budget(&scenario(ProtocolSpec::HhExact, 4, 0.1, 10_000_000), 0);
        // 1000x the stream buys ~1.5x the budget, not 1000x.
        assert!(large < small * 3, "{large} vs {small}");
    }

    #[test]
    fn budget_is_linear_in_k() {
        let k4 = word_budget(
            &scenario(ProtocolSpec::QuantileExact { phi: 0.5 }, 4, 0.1, 50_000),
            0,
        );
        let k8 = word_budget(
            &scenario(ProtocolSpec::QuantileExact { phi: 0.5 }, 8, 0.1, 50_000),
            0,
        );
        assert!(k8 < k4 * 2 + 1000);
        assert!(k8 > k4);
    }

    #[test]
    fn cgmr_budget_dominates_quantile_budget() {
        // The Θ(1/ε) gap the paper closes: at small ε the baseline budget
        // must be far above the optimal protocol's.
        let q = word_budget(
            &scenario(ProtocolSpec::QuantileExact { phi: 0.5 }, 8, 0.02, 100_000),
            0,
        );
        let c = word_budget(&scenario(ProtocolSpec::Cgmr, 8, 0.02, 100_000), 0);
        assert!(c > 5 * q, "cgmr {c} vs quantile {q}");
    }

    #[test]
    fn forward_all_budget_is_linear_in_n() {
        let b = word_budget(&scenario(ProtocolSpec::ForwardAll, 4, 0.1, 1_000), 0);
        assert!(b >= 2_000);
        assert!(b < 3_000);
    }

    #[test]
    fn adversarial_generators_widen_order_protocol_budgets_only() {
        let benign = scenario(ProtocolSpec::QuantileExact { phi: 0.5 }, 4, 0.1, 50_000);
        let ramp = Scenario {
            generator: GeneratorSpec::SortedRamp { start: 0, step: 1 },
            ..benign
        };
        assert!(word_budget(&ramp, 0) > word_budget(&benign, 0));
        let hh_benign = scenario(ProtocolSpec::HhExact, 4, 0.1, 50_000);
        let hh_ramp = Scenario {
            generator: GeneratorSpec::SortedRamp { start: 0, step: 1 },
            ..hh_benign
        };
        assert_eq!(word_budget(&hh_ramp, 0), word_budget(&hh_benign, 0));
        // The new order-adversarial generators widen the same way; flash
        // crowds (frequency churn, not order churn) do not.
        let diurnal = Scenario {
            generator: GeneratorSpec::Diurnal {
                band: 1 << 18,
                phases: 4,
                phase_len: 750,
            },
            ..benign
        };
        assert!(word_budget(&diurnal, 0) > word_budget(&benign, 0));
        let flash = Scenario {
            generator: GeneratorSpec::FlashCrowd {
                universe: 1 << 20,
                s: 1.2,
                period: 750,
                flash_len: 150,
            },
            ..benign
        };
        assert_eq!(word_budget(&flash, 0), word_budget(&benign, 0));
    }

    #[test]
    fn free_run_budget_is_exactly_the_headroom_factor() {
        let s = scenario(ProtocolSpec::HhExact, 4, 0.1, 10_000);
        let settled = word_budget(&s, 100);
        let free = free_run_word_budget(&s, 100);
        assert!(free > settled);
        assert!((free as f64 - FREE_RUN_HEADROOM * settled as f64).abs() <= 1.0);
    }

    #[test]
    fn kill_faults_double_the_budget_and_other_faults_do_not() {
        use crate::faults::{FaultPlan, KillFault, StallFault};
        let benign = scenario(ProtocolSpec::Counter, 4, 0.1, 6_000);
        let killed = benign.with_faults(FaultPlan {
            kill: Some(KillFault { site: 1, at: 3_000 }),
            ..FaultPlan::default()
        });
        let b = word_budget(&benign, 0);
        let k = word_budget(&killed, 0);
        // ×2 headroom, modulo the final ceil().
        assert!(k >= 2 * b - 2 && k <= 2 * b, "benign {b}, killed {k}");
        let stalled = benign.with_faults(FaultPlan {
            stall: Some(StallFault {
                site: 0,
                at: 3_000,
                micros: 2_000,
            }),
            queue_cap: Some(4),
            ..FaultPlan::default()
        });
        assert_eq!(word_budget(&stalled, 0), word_budget(&benign, 0));
    }
}
