//! Drive a [`Scenario`] through the threaded runtime — via the same
//! [`Tracker`] facade as [`crate::runner`], so there is no per-protocol
//! code here at all.
//!
//! Three entry points share one generic driver:
//!
//! * [`run_scenario_threaded`] — site-at-a-time schedule through the
//!   threaded backend's `feed_batch`: the transcript (final answers *and*
//!   metered words) must be bit-identical to the deterministic runner on
//!   the same stream, and `testkit`'s equivalence tests assert exactly
//!   that against the golden fixture.
//! * [`run_scenario_reference`] — the deterministic twin: the same
//!   construction and the same chunked schedule on the deterministic
//!   backend, reporting the same answers, so the two runtimes can be
//!   compared outcome-for-outcome.
//! * [`measure_threaded`] — free-running parallel ingest for throughput
//!   benchmarks: items flow to all site threads concurrently (per item or
//!   as per-site runs through [`Tracker::ingest`]) with a single settle
//!   at the end. Wall-clock is the interesting output; the metered words
//!   are *not* transcript-pinned here because arrivals interleave with
//!   in-flight communication.
//!
//! Answers are typed [`Answer`]s whose `Display` reproduces the legacy
//! canonical strings (sorted where the underlying query has no inherent
//! order), so "identical answers" is plain `Vec<Answer>` equality —
//! meaningful across runtimes and cheap to diff in a failure message.

use crate::bound::word_budget;
use crate::registry::{self, WarmupPolicy};
use crate::report::{ScenarioFailure, ScenarioReport};
use crate::runner::FEED_CHUNK;
use crate::scenario::Scenario;
use dtrack_sim::{Answer, BackendKind, SiteId, Tracker};
use std::time::Instant;

/// How [`measure_threaded`] delivers items to the threaded backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedIngest {
    /// One [`Tracker::feed`] call per item — the per-hop baseline.
    PerItem,
    /// Per-site runs through [`Tracker::ingest`], keeping all site
    /// threads busy with `Site::on_items` fast-path consumption (the
    /// backend enforces the one-run completion window per site).
    Batched,
}

/// Outcome of one threaded (or reference) run: the usual cost report plus
/// the protocol's canonical final answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedOutcome {
    /// Cost summary (checks is always 0: accuracy is asserted by
    /// comparing answers against the deterministic reference, not by an
    /// in-run oracle).
    pub report: ScenarioReport,
    /// Typed canonical final answers (protocol-specific); `Display`
    /// renders the legacy canonical strings.
    pub answers: Vec<Answer>,
    /// Wall-clock milliseconds spent feeding the stream and settling —
    /// stream generation, tracker construction, and teardown excluded, so
    /// throughput comparisons measure ingest, not setup.
    pub ingest_ms: f64,
}

/// Target per-site run length for free-running batched ingest: long
/// enough to amortize the channel hop, short enough that (with the
/// backend's one-run window) a site never runs far ahead of coordinator
/// feedback. Public so the bench harness's facade-vs-direct cells use
/// the same run length as the headline threaded cells.
pub const FREE_RUN: usize = 128;

enum Exec {
    /// Deterministic backend, chunked `feed_batch` schedule.
    Deterministic,
    /// Threaded backend, same chunked site-at-a-time schedule.
    ThreadedSiteAtATime,
    /// Threaded backend, free-running ingest.
    ThreadedFree(ThreadedIngest),
}

/// Run the scenario through the threaded backend on a site-at-a-time
/// schedule; answers and metered words are transcript-identical to
/// [`run_scenario_reference`] (and therefore to `measure_cost` and the
/// golden fixture).
pub fn run_scenario_threaded(scenario: &Scenario) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::ThreadedSiteAtATime)
}

/// The deterministic twin of [`run_scenario_threaded`]: same
/// construction, same chunked schedule, same answer extraction, driven
/// through the deterministic backend.
pub fn run_scenario_reference(scenario: &Scenario) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::Deterministic)
}

/// Feed the scenario's stream through the threaded runtime free-running
/// (no per-cascade synchronization) and report the final cost and
/// answers. This is the throughput path the bench harness times.
pub fn measure_threaded(
    scenario: &Scenario,
    ingest: ThreadedIngest,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::ThreadedFree(ingest))
}

fn dispatch(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, ScenarioFailure> {
    let fail = |detail: String| ScenarioFailure {
        scenario: scenario.to_string(),
        detail,
    };
    if scenario.k < 2 {
        return Err(fail("scenarios need k >= 2".to_owned()));
    }
    let backend = match exec {
        Exec::Deterministic => BackendKind::Deterministic,
        Exec::ThreadedSiteAtATime | Exec::ThreadedFree(_) => BackendKind::Threaded,
    };
    // Throughput/equivalence runs keep the protocol-default warm-up so
    // cost numbers reflect the paper's configuration.
    let (mut tracker, warmup): (Tracker, u64) =
        registry::build_tracker(scenario, WarmupPolicy::ProtocolDefault, backend).map_err(&fail)?;
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    let chunk = FEED_CHUNK as usize;

    let start = Instant::now();
    match exec {
        Exec::Deterministic | Exec::ThreadedSiteAtATime => {
            for part in stream.chunks(chunk) {
                tracker.feed_batch(part).map_err(|e| fail(e.to_string()))?;
            }
        }
        Exec::ThreadedFree(ThreadedIngest::PerItem) => {
            for &(site, item) in &stream {
                tracker.feed(site, item).map_err(|e| fail(e.to_string()))?;
            }
        }
        Exec::ThreadedFree(ThreadedIngest::Batched) => {
            // Per chunk, hand every site its run at once so all k threads
            // chew in parallel; the backend's one-run window per site
            // bounds feedback staleness to ~FREE_RUN items while the
            // pipeline keeps every thread busy.
            let k = scenario.k as usize;
            let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k];
            for part in stream.chunks(FREE_RUN * k) {
                for &(site, item) in part {
                    per_site[site.index()].push(item);
                }
                for (i, items) in per_site.iter_mut().enumerate() {
                    if !items.is_empty() {
                        tracker
                            .ingest(SiteId(i as u32), std::mem::take(items))
                            .map_err(|e| fail(e.to_string()))?;
                    }
                }
            }
        }
    }
    tracker.settle();
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;

    let answers = tracker.answers().map_err(|e| fail(e.to_string()))?;
    // finish() both merges the final meter and surfaces worker death —
    // a site thread that died after its queue drained must fail the run,
    // not return partial answers as a success.
    let meter = tracker.finish().map_err(|e| fail(e.to_string()))?;
    Ok(ThreadedOutcome {
        report: ScenarioReport {
            scenario: scenario.to_string(),
            protocol: scenario.protocol.label(),
            k: scenario.k,
            epsilon: scenario.epsilon,
            n: scenario.n,
            words: meter.total_words(),
            messages: meter.total_messages(),
            budget_words: word_budget(scenario, warmup),
            checks: 0,
        },
        answers,
        ingest_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec};

    fn base(protocol: ProtocolSpec) -> Scenario {
        Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 18,
                s: 1.2,
            },
            AssignmentSpec::Bursts { burst_len: 61 },
            4,
            0.1,
            3_000,
            11,
            protocol,
        )
    }

    #[test]
    fn threaded_matches_reference_for_hh() {
        let s = base(ProtocolSpec::HhExact);
        let thr = run_scenario_threaded(&s).unwrap();
        let det = run_scenario_reference(&s).unwrap();
        assert_eq!(thr.answers, det.answers);
        assert_eq!(thr.report.words, det.report.words);
        assert_eq!(thr.report.messages, det.report.messages);
    }

    #[test]
    fn reference_words_match_measure_cost() {
        // The reference path must be the same transcript `measure_cost`
        // produces, or comparing threaded runs against the golden meter
        // fixture would be meaningless.
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let reference = run_scenario_reference(&s).unwrap();
        let metered = crate::runner::measure_cost(&s).unwrap();
        assert_eq!(reference.report.words, metered.words);
        assert_eq!(reference.report.messages, metered.messages);
    }

    #[test]
    fn free_running_ingest_completes_and_answers() {
        let s = base(ProtocolSpec::Counter);
        for ingest in [ThreadedIngest::PerItem, ThreadedIngest::Batched] {
            let out = measure_threaded(&s, ingest).unwrap();
            assert_eq!(out.answers.len(), 1);
            assert!(out.report.words > 0, "{ingest:?} metered nothing");
        }
    }

    #[test]
    fn answers_render_the_canonical_strings() {
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let out = run_scenario_reference(&s).unwrap();
        let rendered: Vec<String> = out.answers.iter().map(ToString::to_string).collect();
        assert_eq!(rendered.len(), 2);
        assert!(rendered[0].starts_with("quantile="), "{rendered:?}");
        assert!(rendered[1].starts_with("n="), "{rendered:?}");
    }
}
