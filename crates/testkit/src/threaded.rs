//! Drive a [`Scenario`] through the threaded runtime.
//!
//! Three entry points share one generic driver:
//!
//! * [`run_scenario_threaded`] — site-at-a-time schedule through
//!   [`ThreadedCluster::feed_batch`]: the transcript (final answers *and*
//!   metered words) must be bit-identical to the deterministic runner on
//!   the same stream, and `testkit`'s equivalence tests assert exactly
//!   that against the golden fixture.
//! * [`run_scenario_reference`] — the deterministic twin: the same
//!   construction and the same chunked schedule through
//!   [`Cluster::feed_batch`], reporting the same answer strings, so the
//!   two runtimes can be compared outcome-for-outcome.
//! * [`measure_threaded`] — free-running parallel ingest for throughput
//!   benchmarks: items flow to all site threads concurrently (per item or
//!   as per-site runs) with a single settle at the end. Wall-clock is the
//!   interesting output; the metered words are *not* transcript-pinned
//!   here because arrivals interleave with in-flight communication.
//!
//! Answers are canonical strings (sorted where the underlying query has
//! no inherent order) so "identical answers" is a plain `Vec<String>`
//! equality — meaningful across runtimes and cheap to diff in a failure
//! message.

use crate::bound::word_budget;
use crate::report::{ScenarioFailure, ScenarioReport};
use crate::runner::{FEED_CHUNK, PROBE_PHIS};
use crate::scenario::{ProtocolSpec, Scenario};
use dtrack_baseline::{CgmrConfig, PollingConfig};
use dtrack_core::allq::{AllQConfig, AllQCoordinator, AllQSite};
use dtrack_core::counter::{CounterCoordinator, CounterSite};
use dtrack_core::hh::{HhConfig, HhCoordinator, HhSite};
use dtrack_core::quantile::{QuantileConfig, QuantileCoordinator, QuantileSite};
use dtrack_sim::threaded::ThreadedCluster;
use dtrack_sim::{Cluster, Coordinator, Site, SiteId};
use std::time::Instant;

/// How [`measure_threaded`] delivers items to the threaded cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedIngest {
    /// One [`ThreadedCluster::feed`] call per item — the per-hop baseline.
    PerItem,
    /// Per-site runs through [`ThreadedCluster::ingest_run`], keeping all
    /// site threads busy with `Site::on_items` fast-path consumption.
    Batched,
}

/// Outcome of one threaded (or reference) run: the usual cost report plus
/// the protocol's final answers in canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedOutcome {
    /// Cost summary (checks is always 0: accuracy is asserted by
    /// comparing answers against the deterministic reference, not by an
    /// in-run oracle).
    pub report: ScenarioReport,
    /// Canonical final answers (protocol-specific).
    pub answers: Vec<String>,
    /// Wall-clock milliseconds spent feeding the stream and settling —
    /// stream generation, cluster spawn, and teardown excluded, so
    /// throughput comparisons measure ingest, not setup.
    pub ingest_ms: f64,
}

/// Target per-site run length for free-running batched ingest (see the
/// `ThreadedIngest::Batched` comment in `drive`).
const FREE_RUN: usize = 128;

enum Exec {
    /// Deterministic [`Cluster`], chunked `feed_batch` schedule.
    Deterministic,
    /// [`ThreadedCluster::feed_batch`] on the same chunked schedule.
    ThreadedSiteAtATime,
    /// Free-running threaded ingest.
    ThreadedFree(ThreadedIngest),
}

/// Run the scenario through [`ThreadedCluster`] on a site-at-a-time
/// schedule; answers and metered words are transcript-identical to
/// [`run_scenario_reference`] (and therefore to `measure_cost` and the
/// golden fixture).
pub fn run_scenario_threaded(scenario: &Scenario) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::ThreadedSiteAtATime)
}

/// The deterministic twin of [`run_scenario_threaded`]: same
/// construction, same chunked schedule, same answer extraction, driven
/// through the single-threaded [`Cluster`].
pub fn run_scenario_reference(scenario: &Scenario) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::Deterministic)
}

/// Feed the scenario's stream through the threaded runtime free-running
/// (no per-cascade synchronization) and report the final cost and
/// answers. This is the throughput path the bench harness times.
pub fn measure_threaded(
    scenario: &Scenario,
    ingest: ThreadedIngest,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::ThreadedFree(ingest))
}

fn dispatch(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, ScenarioFailure> {
    let fail = |detail: String| ScenarioFailure {
        scenario: scenario.to_string(),
        detail,
    };
    if scenario.k < 2 {
        return Err(fail("scenarios need k >= 2".to_owned()));
    }
    match scenario.protocol {
        ProtocolSpec::Counter => counter(scenario, exec),
        ProtocolSpec::HhExact | ProtocolSpec::HhSketched => hh(scenario, exec),
        ProtocolSpec::QuantileExact { phi } | ProtocolSpec::QuantileSketched { phi } => {
            quantile(scenario, phi, exec)
        }
        ProtocolSpec::AllQExact => allq(scenario, exec),
        ProtocolSpec::Cgmr => cgmr(scenario, exec),
        ProtocolSpec::Polling => polling(scenario, exec),
        ProtocolSpec::ForwardAll => forward_all(scenario, exec),
    }
    .map_err(fail)
}

/// Shared plumbing: build the stream, run it through the chosen runtime,
/// and extract the final answers from the surviving coordinator.
fn drive<S, C>(
    scenario: &Scenario,
    exec: Exec,
    warmup: u64,
    sites: Vec<S>,
    coordinator: C,
    answers: impl Fn(&C) -> Result<Vec<String>, String>,
) -> Result<ThreadedOutcome, String>
where
    S: Site<Item = u64> + Send + 'static,
    S::Up: Send,
    S::Down: Send + Sync,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
{
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    let chunk = FEED_CHUNK as usize;
    let (coordinator, words, messages, ingest_ms) = match exec {
        Exec::Deterministic => {
            let mut cluster = Cluster::new(sites, coordinator).map_err(|e| e.to_string())?;
            let start = Instant::now();
            for part in stream.chunks(chunk) {
                cluster.feed_batch(part).map_err(|e| e.to_string())?;
            }
            let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
            let (c, _sites, meter) = cluster.into_parts();
            (c, meter.total_words(), meter.total_messages(), ingest_ms)
        }
        Exec::ThreadedSiteAtATime => {
            let cluster = ThreadedCluster::spawn(sites, coordinator).map_err(|e| e.to_string())?;
            let start = Instant::now();
            for part in stream.chunks(chunk) {
                cluster.feed_batch(part).map_err(|e| e.to_string())?;
            }
            cluster.settle();
            let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
            let (c, _sites, meter) = cluster.shutdown().map_err(|e| e.to_string())?;
            (c, meter.total_words(), meter.total_messages(), ingest_ms)
        }
        Exec::ThreadedFree(ingest) => {
            let k = scenario.k as usize;
            let cluster = ThreadedCluster::spawn(sites, coordinator).map_err(|e| e.to_string())?;
            let start = Instant::now();
            match ingest {
                ThreadedIngest::PerItem => {
                    for &(site, item) in &stream {
                        cluster.feed(site, item).map_err(|e| e.to_string())?;
                    }
                }
                ThreadedIngest::Batched => {
                    // Per chunk, hand every site its run at once so all k
                    // threads chew in parallel — but with a one-run window
                    // per site: before enqueueing a site's next run, wait
                    // for its previous ticket. Unbounded queueing would
                    // let a site race arbitrarily far ahead of the
                    // coordinator feedback parked behind its queued runs,
                    // and a feedback-starved site over-communicates (a
                    // heavy-hitter site on stale thresholds floods the
                    // channel with deltas), costing more than batching
                    // saves. The window bounds staleness to ~FREE_RUN
                    // items while the pipeline keeps every thread busy.
                    let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k];
                    let mut tickets: Vec<Option<dtrack_sim::threaded::RunTicket>> =
                        (0..k).map(|_| None).collect();
                    for part in stream.chunks(FREE_RUN * k) {
                        for &(site, item) in part {
                            per_site[site.index()].push(item);
                        }
                        for (i, items) in per_site.iter_mut().enumerate() {
                            if !items.is_empty() {
                                if let Some(t) = tickets[i].take() {
                                    t.wait();
                                }
                                tickets[i] = Some(
                                    cluster
                                        .ingest_run(SiteId(i as u32), std::mem::take(items))
                                        .map_err(|e| e.to_string())?,
                                );
                            }
                        }
                    }
                    for t in tickets.into_iter().flatten() {
                        t.wait();
                    }
                }
            }
            cluster.settle();
            let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
            let (c, _sites, meter) = cluster.shutdown().map_err(|e| e.to_string())?;
            (c, meter.total_words(), meter.total_messages(), ingest_ms)
        }
    };
    let answers = answers(&coordinator)?;
    Ok(ThreadedOutcome {
        report: ScenarioReport {
            scenario: scenario.to_string(),
            protocol: scenario.protocol.label(),
            k: scenario.k,
            epsilon: scenario.epsilon,
            n: scenario.n,
            words,
            messages,
            budget_words: word_budget(scenario, warmup),
            checks: 0,
        },
        answers,
        ingest_ms,
    })
}

fn fmt_opt(q: Option<u64>) -> String {
    match q {
        Some(v) => v.to_string(),
        None => "-".to_owned(),
    }
}

fn counter(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, String> {
    let sites = (0..scenario.k)
        .map(|_| CounterSite::new(scenario.epsilon))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    drive(scenario, exec, 0, sites, CounterCoordinator::new(), |c| {
        Ok(vec![format!("estimate={}", c.estimate())])
    })
}

fn hh(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, String> {
    let eps = scenario.epsilon;
    let mut config = HhConfig::new(scenario.k, eps).map_err(|e| e.to_string())?;
    if let Some(w) = scenario.tuning.warmup {
        config = config.with_warmup_target(w);
    }
    if let Some(r) = scenario.tuning.resync_after {
        config = config.with_resync_after(r);
    }
    let warmup = config.warmup_target;
    let phis: Vec<f64> = [0.02, 0.05, 0.1, 0.25, 0.5]
        .into_iter()
        .filter(|&phi| phi > eps)
        .collect();
    let answers = move |c: &HhCoordinator| -> Result<Vec<String>, String> {
        let mut out = vec![format!("m={}", c.global_count())];
        for &phi in &phis {
            // Sort: the heavy-hitter *set* is the answer; report order may
            // legitimately differ between runtimes.
            let mut hh = c.heavy_hitters(phi).map_err(|e| e.to_string())?;
            hh.sort_unstable();
            out.push(format!("hh(phi={phi})={hh:?}"));
        }
        Ok(out)
    };
    let coordinator = HhCoordinator::new(config);
    match scenario.protocol {
        ProtocolSpec::HhSketched => {
            let sites = (0..config.k).map(|_| HhSite::sketched(config)).collect();
            drive(scenario, exec, warmup, sites, coordinator, answers)
        }
        _ => {
            let sites = (0..config.k).map(|_| HhSite::exact(config)).collect();
            drive(scenario, exec, warmup, sites, coordinator, answers)
        }
    }
}

fn quantile(scenario: &Scenario, phi: f64, exec: Exec) -> Result<ThreadedOutcome, String> {
    let mut config =
        QuantileConfig::new(scenario.k, scenario.epsilon, phi).map_err(|e| e.to_string())?;
    if let Some(w) = scenario.tuning.warmup {
        config = config.with_warmup_target(w);
    }
    if let Some(g) = scenario.tuning.granularity {
        config = config.with_granularity(g);
    }
    let warmup = config.warmup_target;
    let answers = |c: &QuantileCoordinator| -> Result<Vec<String>, String> {
        Ok(vec![
            format!("quantile={}", fmt_opt(c.quantile())),
            format!("n={}", c.n_estimate()),
        ])
    };
    let coordinator = QuantileCoordinator::new(config);
    match scenario.protocol {
        ProtocolSpec::QuantileSketched { .. } => {
            let sites = (0..config.k)
                .map(|_| QuantileSite::sketched(config))
                .collect();
            drive(scenario, exec, warmup, sites, coordinator, answers)
        }
        _ => {
            let sites = (0..config.k).map(|_| QuantileSite::exact(config)).collect();
            drive(scenario, exec, warmup, sites, coordinator, answers)
        }
    }
}

fn allq(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, String> {
    let mut config = AllQConfig::new(scenario.k, scenario.epsilon).map_err(|e| e.to_string())?;
    if let Some(w) = scenario.tuning.warmup {
        config = config.with_warmup_target(w);
    }
    let warmup = config.warmup_target;
    let sites = (0..config.k).map(|_| AllQSite::exact(config)).collect();
    drive(
        scenario,
        exec,
        warmup,
        sites,
        AllQCoordinator::new(config),
        |c: &AllQCoordinator| {
            let mut out = vec![format!("n={}", c.n_estimate())];
            for phi in PROBE_PHIS {
                let q = c.quantile(phi).map_err(|e| e.to_string())?;
                out.push(format!("q({phi})={}", fmt_opt(q)));
            }
            Ok(out)
        },
    )
}

fn cgmr(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, String> {
    let config = CgmrConfig::new(scenario.k, scenario.epsilon)?;
    let sites = (0..config.k)
        .map(|_| dtrack_baseline::cgmr::CgmrSite::exact(config))
        .collect();
    drive(
        scenario,
        exec,
        0,
        sites,
        dtrack_baseline::cgmr::CgmrCoordinator::new(config),
        |c| {
            let mut out = vec![format!("n={}", c.n_estimate())];
            for phi in PROBE_PHIS {
                out.push(format!("q({phi})={}", fmt_opt(c.quantile(phi))));
            }
            Ok(out)
        },
    )
}

fn polling(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, String> {
    let config = PollingConfig::new(scenario.k, scenario.epsilon)?;
    let sites = (0..config.k)
        .map(|_| dtrack_baseline::naive::PollingSite::exact(config))
        .collect();
    drive(
        scenario,
        exec,
        0,
        sites,
        dtrack_baseline::naive::PollingCoordinator::new(config),
        |c| {
            let mut out = Vec::new();
            for phi in PROBE_PHIS {
                out.push(format!("q({phi})={}", fmt_opt(c.quantile(phi))));
            }
            Ok(out)
        },
    )
}

fn forward_all(scenario: &Scenario, exec: Exec) -> Result<ThreadedOutcome, String> {
    let sites = (0..scenario.k)
        .map(|_| dtrack_baseline::naive::ForwardAllSite)
        .collect();
    drive(
        scenario,
        exec,
        0,
        sites,
        dtrack_baseline::naive::ForwardAllCoordinator::new(),
        |c| {
            let mut out = vec![format!("total={}", c.total())];
            for phi in PROBE_PHIS {
                out.push(format!("q({phi})={}", fmt_opt(c.quantile(phi))));
            }
            Ok(out)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec};

    fn base(protocol: ProtocolSpec) -> Scenario {
        Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 18,
                s: 1.2,
            },
            AssignmentSpec::Bursts { burst_len: 61 },
            4,
            0.1,
            3_000,
            11,
            protocol,
        )
    }

    #[test]
    fn threaded_matches_reference_for_hh() {
        let s = base(ProtocolSpec::HhExact);
        let thr = run_scenario_threaded(&s).unwrap();
        let det = run_scenario_reference(&s).unwrap();
        assert_eq!(thr.answers, det.answers);
        assert_eq!(thr.report.words, det.report.words);
        assert_eq!(thr.report.messages, det.report.messages);
    }

    #[test]
    fn reference_words_match_measure_cost() {
        // The reference path must be the same transcript `measure_cost`
        // produces, or comparing threaded runs against the golden meter
        // fixture would be meaningless.
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let reference = run_scenario_reference(&s).unwrap();
        let metered = crate::runner::measure_cost(&s).unwrap();
        assert_eq!(reference.report.words, metered.words);
        assert_eq!(reference.report.messages, metered.messages);
    }

    #[test]
    fn free_running_ingest_completes_and_answers() {
        let s = base(ProtocolSpec::Counter);
        for ingest in [ThreadedIngest::PerItem, ThreadedIngest::Batched] {
            let out = measure_threaded(&s, ingest).unwrap();
            assert_eq!(out.answers.len(), 1);
            assert!(out.report.words > 0, "{ingest:?} metered nothing");
        }
    }
}
