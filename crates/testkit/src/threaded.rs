//! Drive a [`Scenario`] through the threaded runtime — via the same
//! [`Tracker`] facade as [`crate::runner`], so there is no per-protocol
//! code here at all.
//!
//! Two generic entry points serve every parallel backend (threaded and
//! sharded — anything behind a [`BackendKind`]):
//!
//! * [`run_scenario_on_backend`] — site-at-a-time schedule through the
//!   backend's `feed_batch`: the transcript (final answers *and* metered
//!   words) must be bit-identical to the deterministic runner on the
//!   same stream, and `testkit`'s equivalence tests assert exactly that
//!   against the golden fixture for each parallel backend.
//! * [`measure_on_backend`] — free-running parallel ingest for
//!   throughput benchmarks: items flow to all sites concurrently (per
//!   item or as per-site runs through [`Tracker::ingest`]) with a single
//!   settle at the end. Wall-clock is the interesting output; the
//!   metered words are *not* transcript-pinned here because arrivals
//!   interleave with in-flight communication.
//!
//! The named wrappers [`run_scenario_threaded`] (threaded backend),
//! [`run_scenario_reference`] (the deterministic twin: same
//! construction, same chunked schedule, same answer extraction), and
//! [`measure_threaded`] pin the common cases.
//!
//! Answers are typed [`Answer`]s whose `Display` reproduces the legacy
//! canonical strings (sorted where the underlying query has no inherent
//! order), so "identical answers" is plain `Vec<Answer>` equality —
//! meaningful across runtimes and cheap to diff in a failure message.

use crate::bound::{free_run_word_budget, word_budget};
use crate::registry::{self, WarmupPolicy};
use crate::report::{ScenarioFailure, ScenarioReport};
use crate::runner::{kind_rows, FEED_CHUNK};
use crate::scenario::Scenario;
use dtrack_sim::{Answer, BackendKind, SiteId, TraceConfig, TraceEvent, Tracker};
use std::time::Instant;

/// How [`measure_threaded`] delivers items to the threaded backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedIngest {
    /// One [`Tracker::feed`] call per item — the per-hop baseline.
    PerItem,
    /// Per-site runs through [`Tracker::ingest`], keeping all site
    /// threads busy with `Site::on_items` fast-path consumption (the
    /// backend's AIMD flow controller paces run lengths per site).
    Batched,
}

/// Outcome of one threaded (or reference) run: the usual cost report plus
/// the protocol's canonical final answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedOutcome {
    /// Cost summary (checks is always 0: accuracy is asserted by
    /// comparing answers against the deterministic reference, not by an
    /// in-run oracle).
    pub report: ScenarioReport,
    /// Typed canonical final answers (protocol-specific); `Display`
    /// renders the legacy canonical strings.
    pub answers: Vec<Answer>,
    /// Wall-clock milliseconds spent feeding the stream and settling —
    /// stream generation, tracker construction, and teardown excluded, so
    /// throughput comparisons measure ingest, not setup.
    pub ingest_ms: f64,
    /// Merged structured-event stream when the run was traced (see
    /// [`run_scenario_traced`]); empty on untraced runs.
    pub trace: Vec<TraceEvent>,
}

/// Target per-site run length for free-running batched ingest: long
/// enough to amortize the channel hop, short enough that (with the
/// backend's one-run window) a site never runs far ahead of coordinator
/// feedback. Public so the bench harness's facade-vs-direct cells use
/// the same run length as the headline threaded cells.
pub const FREE_RUN: usize = 128;

/// Target for the *total* items in flight across all sites during
/// free-running batched ingest. With a one-run window per site, k sites
/// at [`FREE_RUN`] items each would put `k·128` items in flight — at
/// k = 256 that is 16% of a 200k stream racing ahead of coordinator
/// feedback, the stale-threshold flood the threaded runtime's run
/// window exists to prevent. [`free_run_len`] shortens per-site runs as
/// k grows so the aggregate stays near this target.
pub const FREE_RUN_INFLIGHT: usize = 4096;

/// Per-site run length for free-running batched ingest at k sites:
/// [`FREE_RUN`] while the aggregate window fits [`FREE_RUN_INFLIGHT`],
/// shrinking (never below 16) as sites multiply. At the k = 4 of the
/// headline threaded cells this is exactly [`FREE_RUN`].
pub fn free_run_len(k: u32) -> usize {
    (FREE_RUN_INFLIGHT / (k.max(1) as usize)).clamp(16, FREE_RUN)
}

enum Exec {
    /// Chunked site-at-a-time `feed_batch` schedule (transcript-pinned
    /// on every backend).
    SiteAtATime,
    /// Free-running ingest (parallel backends; transcript not pinned).
    Free(ThreadedIngest),
}

/// Run the scenario through any backend on a site-at-a-time schedule;
/// answers and metered words are transcript-identical to
/// [`run_scenario_reference`] (and therefore to `measure_cost` and the
/// golden fixture) for every backend.
pub fn run_scenario_on_backend(
    scenario: &Scenario,
    backend: BackendKind,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::SiteAtATime, backend, None)
}

/// [`run_scenario_on_backend`] with tracing enabled for the whole run:
/// the outcome's `trace` field carries the merged event stream. The ring
/// is sized generously (2²⁰ events per lane) so matrix-scale replays keep
/// their full prefix — `trace_diff` needs the *first* divergence, which
/// the default overwrite-oldest ring would discard on long streams.
pub fn run_scenario_traced(
    scenario: &Scenario,
    backend: BackendKind,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    let config = TraceConfig::on().with_ring_capacity(1 << 20);
    dispatch(scenario, Exec::SiteAtATime, backend, Some(config))
}

/// Feed the scenario's stream through a parallel backend free-running
/// (no per-cascade synchronization) and report the final cost and
/// answers. This is the throughput path the bench harness times.
pub fn measure_on_backend(
    scenario: &Scenario,
    ingest: ThreadedIngest,
    backend: BackendKind,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    dispatch(scenario, Exec::Free(ingest), backend, None)
}

/// [`run_scenario_on_backend`] on the threaded backend.
pub fn run_scenario_threaded(scenario: &Scenario) -> Result<ThreadedOutcome, ScenarioFailure> {
    run_scenario_on_backend(scenario, BackendKind::Threaded)
}

/// The deterministic twin of [`run_scenario_threaded`]: same
/// construction, same chunked schedule, same answer extraction, driven
/// through the deterministic backend.
pub fn run_scenario_reference(scenario: &Scenario) -> Result<ThreadedOutcome, ScenarioFailure> {
    run_scenario_on_backend(scenario, BackendKind::Deterministic)
}

/// [`measure_on_backend`] on the threaded backend.
pub fn measure_threaded(
    scenario: &Scenario,
    ingest: ThreadedIngest,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    measure_on_backend(scenario, ingest, BackendKind::Threaded)
}

fn dispatch(
    scenario: &Scenario,
    exec: Exec,
    backend: BackendKind,
    trace: Option<TraceConfig>,
) -> Result<ThreadedOutcome, ScenarioFailure> {
    let fail = |detail: String| ScenarioFailure {
        scenario: scenario.to_string(),
        detail,
    };
    if scenario.k < 2 {
        return Err(fail("scenarios need k >= 2".to_owned()));
    }
    // Throughput/equivalence runs keep the protocol-default warm-up so
    // cost numbers reflect the paper's configuration.
    let (mut tracker, warmup): (Tracker, u64) =
        registry::build_tracker(scenario, WarmupPolicy::ProtocolDefault, backend).map_err(&fail)?;
    if let Some(config) = trace {
        tracker.set_trace(config);
    }
    let free_running = matches!(exec, Exec::Free(_));
    if free_running {
        // Arm the AIMD controller's rate-drift signal: the reference
        // words-per-item is the settled budget spread over the stream, so
        // a free-running site that starts flooding stale-threshold deltas
        // pushes the observed rate past reference × drift_factor and gets
        // its window halved.
        tracker.cost_hint(word_budget(scenario, warmup) as f64 / scenario.n.max(1) as f64);
    }
    scenario
        .faults
        .validate(scenario.k, scenario.n)
        .map_err(|e| fail(format!("invalid fault plan: {e}")))?;
    // Rerouting is static (a pure function of the fault plan), so the
    // whole delivered stream — including post-kill redirections — is
    // identical on every backend and in every exec mode.
    let stream: Vec<(SiteId, u64)> = scenario
        .stream()
        .enumerate()
        .map(|(i, (site, item))| (scenario.faults.route(i as u64, site, scenario.k), item))
        .collect();
    let chunk = FEED_CHUNK as usize;
    // Segment the stream at fault boundaries: each event fires after
    // exactly `at` items on a settled (quiescent) system, matching the
    // differential runner's injection points, so faulted transcripts
    // stay comparable across drivers.
    let schedule = scenario.faults.schedule();
    let mut boundaries: Vec<usize> = vec![0, stream.len()];
    boundaries.extend(schedule.iter().map(|&(at, _)| at as usize));
    boundaries.sort_unstable();
    boundaries.dedup();

    let start = Instant::now();
    for window in boundaries.windows(2) {
        let (seg_start, seg_end) = (window[0], window[1]);
        for &(at, event) in schedule.iter().filter(|&&(at, _)| at as usize == seg_start) {
            tracker.settle();
            tracker
                .inject_fault(event)
                .map_err(|e| fail(format!("fault injection at item {at}: {e}")))?;
        }
        let segment = &stream[seg_start..seg_end];
        match exec {
            Exec::SiteAtATime => {
                for part in segment.chunks(chunk) {
                    tracker.feed_batch(part).map_err(|e| fail(e.to_string()))?;
                }
            }
            Exec::Free(ThreadedIngest::PerItem) => {
                for &(site, item) in segment {
                    tracker.feed(site, item).map_err(|e| fail(e.to_string()))?;
                }
            }
            Exec::Free(ThreadedIngest::Batched) => {
                // Per chunk, hand every site its run at once so all k
                // workers chew in parallel; the backend's AIMD window
                // (seeded at this same k-aware run length) bounds total
                // in-flight items, keeping feedback staleness (and the
                // word flood it causes) independent of the site count.
                let k = scenario.k as usize;
                let run = free_run_len(scenario.k);
                let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k];
                for part in segment.chunks(run * k) {
                    for &(site, item) in part {
                        per_site[site.index()].push(item);
                    }
                    for (i, items) in per_site.iter_mut().enumerate() {
                        if !items.is_empty() {
                            tracker
                                .ingest(SiteId(i as u32), std::mem::take(items))
                                .map_err(|e| fail(e.to_string()))?;
                        }
                    }
                }
            }
        }
    }
    tracker.settle();
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;

    let answers = tracker.answers().map_err(|e| fail(e.to_string()))?;
    // Snapshot the event rings before teardown; the settle above already
    // quiesced, so the stream is complete.
    let trace_events = if trace.is_some() {
        tracker.trace_events()
    } else {
        Vec::new()
    };
    // finish() both merges the final meter and surfaces worker death —
    // a site thread that died after its queue drained must fail the run,
    // not return partial answers as a success.
    let meter = tracker.finish().map_err(|e| fail(e.to_string()))?;
    Ok(ThreadedOutcome {
        report: ScenarioReport {
            scenario: scenario.to_string(),
            protocol: scenario.protocol.label(),
            k: scenario.k,
            epsilon: scenario.epsilon,
            n: scenario.n,
            words: meter.total_words(),
            messages: meter.total_messages(),
            by_kind: kind_rows(&meter),
            // Free-running rows get the drift-headroom budget; settled
            // rows stay on the transcript-pinned budget.
            budget_words: if free_running {
                free_run_word_budget(scenario, warmup)
            } else {
                word_budget(scenario, warmup)
            },
            checks: 0,
        },
        answers,
        ingest_ms,
        trace: trace_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec};

    fn base(protocol: ProtocolSpec) -> Scenario {
        Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 18,
                s: 1.2,
            },
            AssignmentSpec::Bursts { burst_len: 61 },
            4,
            0.1,
            3_000,
            11,
            protocol,
        )
    }

    #[test]
    fn threaded_matches_reference_for_hh() {
        let s = base(ProtocolSpec::HhExact);
        let thr = run_scenario_threaded(&s).unwrap();
        let det = run_scenario_reference(&s).unwrap();
        assert_eq!(thr.answers, det.answers);
        assert_eq!(thr.report.words, det.report.words);
        assert_eq!(thr.report.messages, det.report.messages);
    }

    #[test]
    fn sharded_matches_reference_through_the_generic_driver() {
        let s = base(ProtocolSpec::HhExact);
        let det = run_scenario_reference(&s).unwrap();
        // Multiplexed (workers < k) and over-provisioned (workers > k)
        // pools must both be transcript-identical.
        for workers in [2usize, 16] {
            let backend = BackendKind::Sharded {
                workers: Some(workers),
            };
            let sh = run_scenario_on_backend(&s, backend).unwrap();
            assert_eq!(sh.answers, det.answers, "workers={workers}");
            assert_eq!(sh.report.words, det.report.words, "workers={workers}");
            assert_eq!(sh.report.messages, det.report.messages, "workers={workers}");
        }
    }

    #[test]
    fn sharded_free_running_ingest_completes_and_answers() {
        let s = base(ProtocolSpec::Counter);
        let backend = BackendKind::Sharded { workers: Some(2) };
        for ingest in [ThreadedIngest::PerItem, ThreadedIngest::Batched] {
            let out = measure_on_backend(&s, ingest, backend).unwrap();
            assert_eq!(out.answers.len(), 1);
            assert!(out.report.words > 0, "{ingest:?} metered nothing");
        }
    }

    #[test]
    fn reference_words_match_measure_cost() {
        // The reference path must be the same transcript `measure_cost`
        // produces, or comparing threaded runs against the golden meter
        // fixture would be meaningless.
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let reference = run_scenario_reference(&s).unwrap();
        let metered = crate::runner::measure_cost(&s).unwrap();
        assert_eq!(reference.report.words, metered.words);
        assert_eq!(reference.report.messages, metered.messages);
    }

    #[test]
    fn free_running_ingest_completes_and_answers() {
        let s = base(ProtocolSpec::Counter);
        for ingest in [ThreadedIngest::PerItem, ThreadedIngest::Batched] {
            let out = measure_threaded(&s, ingest).unwrap();
            assert_eq!(out.answers.len(), 1);
            assert!(out.report.words > 0, "{ingest:?} metered nothing");
        }
    }

    #[test]
    fn free_running_words_stay_within_the_drift_headroom_budget() {
        // The contract the AIMD controller is held to: free-running rows
        // report the 1.5x drift-headroom budget and stay inside it.
        for protocol in [ProtocolSpec::Counter, ProtocolSpec::HhExact] {
            let s = base(protocol);
            let out = measure_threaded(&s, ThreadedIngest::Batched).unwrap();
            let settled = run_scenario_reference(&s).unwrap();
            assert!(
                out.report.budget_words > settled.report.budget_words,
                "free-running rows must carry the headroom budget, got {} vs settled {}",
                out.report.budget_words,
                settled.report.budget_words,
            );
            assert!(
                out.report.words <= out.report.budget_words,
                "{protocol:?}: free-running words {} blew the headroom budget {} (settled words {})",
                out.report.words,
                out.report.budget_words,
                settled.report.words,
            );
        }
    }

    #[test]
    fn answers_render_the_canonical_strings() {
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let out = run_scenario_reference(&s).unwrap();
        let rendered: Vec<String> = out.answers.iter().map(ToString::to_string).collect();
        assert_eq!(rendered.len(), 2);
        assert!(rendered[0].starts_with("quantile="), "{rendered:?}");
        assert!(rendered[1].starts_with("n="), "{rendered:?}");
    }
}
