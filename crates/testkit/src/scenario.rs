//! Scenario specification: a point in the differential-testing matrix.
//!
//! A [`Scenario`] is a fully deterministic description of one run —
//! workload generator, site assignment, k, ε, stream length, seed, and
//! protocol. The same scenario always produces the same stream, the same
//! protocol transcript, and the same metered cost, so failures quoted by
//! name are replayable bit-for-bit.

use crate::faults::FaultPlan;
use dtrack_sim::SiteId;
use dtrack_workload::{
    Assignment, Bursts, Diurnal, FlashCrowd, Generator, KeyChurn, RoundRobin, ShiftingZipf,
    SiteChurn, SkewedSites, SortedRamp, Straggler, Stream, TwoPhaseDrift, Uniform, UniformSites,
    Zipf,
};
use std::fmt;

/// Which workload generator feeds the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorSpec {
    /// Uniform values over `[0, universe)`.
    Uniform {
        /// Value universe size.
        universe: u64,
    },
    /// Zipf-distributed values (the standard skewed monitoring stream).
    Zipf {
        /// Value universe size.
        universe: u64,
        /// Skew parameter (s > 1 is heavy-tailed).
        s: f64,
    },
    /// Strictly increasing ramp — drags every quantile upward forever.
    SortedRamp {
        /// First value.
        start: u64,
        /// Increment per item.
        step: u64,
    },
    /// Zipf whose hot set is re-permuted periodically — churns the
    /// heavy-hitter set.
    ShiftingZipf {
        /// Value universe size.
        universe: u64,
        /// Skew parameter.
        s: f64,
        /// Re-permute the hot set every this many items.
        shift_every: u64,
    },
    /// Uniform band that jumps to a disjoint band mid-stream — forces a
    /// full quantile rebuild.
    TwoPhaseDrift {
        /// Width of each band.
        band: u64,
        /// Item index at which the band jumps.
        switch_at: u64,
    },
    /// Zipf background with a rotating flash-crowd key that dominates a
    /// window at the start of every period — the heavy-hitter set churns
    /// violently and repeatedly.
    FlashCrowd {
        /// Value universe size (background Zipf).
        universe: u64,
        /// Background skew parameter.
        s: f64,
        /// Flash period in items.
        period: u64,
        /// Flash window length (≤ period).
        flash_len: u64,
    },
    /// Uniform bands cycled through phases — diurnal rate/value drift
    /// that sweeps every quantile back and forth forever.
    Diurnal {
        /// Width of each band.
        band: u64,
        /// Number of distinct bands in one cycle.
        phases: u64,
        /// Items per phase.
        phase_len: u64,
    },
    /// Zipf over a window whose base slides every `churn_every` items —
    /// continuous key churn with no stable hot set.
    KeyChurn {
        /// Active key-window size.
        window: u64,
        /// Skew parameter within the window.
        s: f64,
        /// Slide the window every this many items.
        churn_every: u64,
        /// How far the base slides per churn step.
        step: u64,
    },
}

impl GeneratorSpec {
    /// Instantiate the generator with `seed`.
    pub fn build(&self, seed: u64) -> BuiltGenerator {
        match *self {
            GeneratorSpec::Uniform { universe } => {
                BuiltGenerator::Uniform(Uniform::new(universe, seed))
            }
            GeneratorSpec::Zipf { universe, s } => {
                BuiltGenerator::Zipf(Zipf::new(universe, s, seed))
            }
            GeneratorSpec::SortedRamp { start, step } => {
                BuiltGenerator::SortedRamp(SortedRamp::new(start, step))
            }
            GeneratorSpec::ShiftingZipf {
                universe,
                s,
                shift_every,
            } => BuiltGenerator::ShiftingZipf(ShiftingZipf::new(universe, s, shift_every, seed)),
            GeneratorSpec::TwoPhaseDrift { band, switch_at } => {
                BuiltGenerator::TwoPhaseDrift(TwoPhaseDrift::new(band, switch_at, seed))
            }
            GeneratorSpec::FlashCrowd {
                universe,
                s,
                period,
                flash_len,
            } => BuiltGenerator::FlashCrowd(FlashCrowd::new(universe, s, period, flash_len, seed)),
            GeneratorSpec::Diurnal {
                band,
                phases,
                phase_len,
            } => BuiltGenerator::Diurnal(Diurnal::new(band, phases, phase_len, seed)),
            GeneratorSpec::KeyChurn {
                window,
                s,
                churn_every,
                step,
            } => BuiltGenerator::KeyChurn(KeyChurn::new(window, s, churn_every, step, seed)),
        }
    }

    /// Short label used in scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            GeneratorSpec::Uniform { .. } => "uniform",
            GeneratorSpec::Zipf { .. } => "zipf",
            GeneratorSpec::SortedRamp { .. } => "ramp",
            GeneratorSpec::ShiftingZipf { .. } => "shifting-zipf",
            GeneratorSpec::TwoPhaseDrift { .. } => "drift",
            GeneratorSpec::FlashCrowd { .. } => "flash-crowd",
            GeneratorSpec::Diurnal { .. } => "diurnal",
            GeneratorSpec::KeyChurn { .. } => "key-churn",
        }
    }
}

/// Enum-dispatched generator so scenarios stay `Copy`-able specs while the
/// built stream remains a concrete `Iterator`.
#[derive(Debug, Clone)]
pub enum BuiltGenerator {
    /// See [`GeneratorSpec::Uniform`].
    Uniform(Uniform),
    /// See [`GeneratorSpec::Zipf`].
    Zipf(Zipf),
    /// See [`GeneratorSpec::SortedRamp`].
    SortedRamp(SortedRamp),
    /// See [`GeneratorSpec::ShiftingZipf`].
    ShiftingZipf(ShiftingZipf),
    /// See [`GeneratorSpec::TwoPhaseDrift`].
    TwoPhaseDrift(TwoPhaseDrift),
    /// See [`GeneratorSpec::FlashCrowd`].
    FlashCrowd(FlashCrowd),
    /// See [`GeneratorSpec::Diurnal`].
    Diurnal(Diurnal),
    /// See [`GeneratorSpec::KeyChurn`].
    KeyChurn(KeyChurn),
}

impl Generator for BuiltGenerator {
    fn next_item(&mut self) -> u64 {
        match self {
            BuiltGenerator::Uniform(g) => g.next_item(),
            BuiltGenerator::Zipf(g) => g.next_item(),
            BuiltGenerator::SortedRamp(g) => g.next_item(),
            BuiltGenerator::ShiftingZipf(g) => g.next_item(),
            BuiltGenerator::TwoPhaseDrift(g) => g.next_item(),
            BuiltGenerator::FlashCrowd(g) => g.next_item(),
            BuiltGenerator::Diurnal(g) => g.next_item(),
            BuiltGenerator::KeyChurn(g) => g.next_item(),
        }
    }
}

/// How items are routed to sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssignmentSpec {
    /// Sites 0, 1, …, k−1 in rotation.
    RoundRobin,
    /// Uniformly random site per item.
    UniformSites,
    /// Zipf-skewed site popularity (one hot site).
    SkewedSites {
        /// Site-popularity skew.
        s: f64,
    },
    /// Long single-site bursts, hopping between sites.
    Bursts {
        /// Items per burst.
        burst_len: u64,
    },
    /// One straggler site, rest fast: site 0 gets `slow_run` consecutive
    /// items, then sites 1..k one each, repeating — the concurrency-shaped
    /// axis (skewed site speeds) for the parallel backends.
    Straggler {
        /// Consecutive items per site-0 run.
        slow_run: u64,
    },
    /// A rotating active window of sites: only `active` consecutive
    /// sites receive items during each epoch, and the window advances
    /// one site per epoch — deterministic join/leave membership churn.
    SiteChurn {
        /// Sites simultaneously active.
        active: u32,
        /// Items per epoch (window position advances between epochs).
        epoch: u64,
    },
}

impl AssignmentSpec {
    /// Instantiate the assignment for `k` sites with `seed`.
    pub fn build(&self, k: u32, seed: u64) -> BuiltAssignment {
        match *self {
            AssignmentSpec::RoundRobin => BuiltAssignment::RoundRobin(RoundRobin::new(k)),
            AssignmentSpec::UniformSites => {
                BuiltAssignment::UniformSites(UniformSites::new(k, seed))
            }
            AssignmentSpec::SkewedSites { s } => {
                BuiltAssignment::SkewedSites(SkewedSites::new(k, s, seed))
            }
            AssignmentSpec::Bursts { burst_len } => {
                BuiltAssignment::Bursts(Bursts::new(k, burst_len, seed))
            }
            AssignmentSpec::Straggler { slow_run } => {
                BuiltAssignment::Straggler(Straggler::new(k, slow_run))
            }
            AssignmentSpec::SiteChurn { active, epoch } => {
                BuiltAssignment::SiteChurn(SiteChurn::new(k, active, epoch))
            }
        }
    }

    /// Short label used in scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            AssignmentSpec::RoundRobin => "round-robin",
            AssignmentSpec::UniformSites => "uniform-sites",
            AssignmentSpec::SkewedSites { .. } => "skewed-sites",
            AssignmentSpec::Bursts { .. } => "bursts",
            AssignmentSpec::Straggler { .. } => "straggler",
            AssignmentSpec::SiteChurn { .. } => "site-churn",
        }
    }
}

/// Enum-dispatched assignment (see [`BuiltGenerator`]).
#[derive(Debug, Clone)]
pub enum BuiltAssignment {
    /// See [`AssignmentSpec::RoundRobin`].
    RoundRobin(RoundRobin),
    /// See [`AssignmentSpec::UniformSites`].
    UniformSites(UniformSites),
    /// See [`AssignmentSpec::SkewedSites`].
    SkewedSites(SkewedSites),
    /// See [`AssignmentSpec::Bursts`].
    Bursts(Bursts),
    /// See [`AssignmentSpec::Straggler`].
    Straggler(Straggler),
    /// See [`AssignmentSpec::SiteChurn`].
    SiteChurn(SiteChurn),
}

impl Assignment for BuiltAssignment {
    fn next_site(&mut self) -> SiteId {
        match self {
            BuiltAssignment::RoundRobin(a) => a.next_site(),
            BuiltAssignment::UniformSites(a) => a.next_site(),
            BuiltAssignment::SkewedSites(a) => a.next_site(),
            BuiltAssignment::Bursts(a) => a.next_site(),
            BuiltAssignment::Straggler(a) => a.next_site(),
            BuiltAssignment::SiteChurn(a) => a.next_site(),
        }
    }
}

/// Which protocol (and which local store) tracks the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolSpec {
    /// §1 counter: (1+ε)-approximate |A|.
    Counter,
    /// §2.1 heavy hitters with exact per-site frequency stores.
    HhExact,
    /// §2.1 heavy hitters with SpaceSaving sites (small space).
    HhSketched,
    /// §3.1 single φ-quantile with exact (treap) sites.
    QuantileExact {
        /// Tracked quantile.
        phi: f64,
    },
    /// §3.1 single φ-quantile with Greenwald–Khanna sites.
    QuantileSketched {
        /// Tracked quantile.
        phi: f64,
    },
    /// §4 all-quantiles tree with exact sites.
    AllQExact,
    /// CGMR'05 baseline (summary re-shipping) for all quantiles.
    Cgmr,
    /// Periodic-polling strawman baseline.
    Polling,
    /// Forward-every-arrival baseline: exact answers at n words.
    ForwardAll,
}

impl ProtocolSpec {
    /// Short label used in scenario names (a field of the protocol's
    /// [`crate::registry`] profile — the registry is the one place that
    /// dispatches over `ProtocolSpec`).
    pub fn label(&self) -> &'static str {
        crate::registry::profile(*self).label
    }
}

/// Optional protocol-internal knobs, used by the ablation experiments.
/// `None` everywhere (the default) means "the paper's constants".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Tuning {
    /// Override the warm-up length (items forwarded verbatim before
    /// tracking starts).
    pub warmup: Option<u64>,
    /// Heavy hitters: re-sync after this many `all`-signals instead of k.
    pub resync_after: Option<u32>,
    /// Single quantile: interval granularity constant instead of 3.
    pub granularity: Option<u32>,
}

/// One fully determined differential-test run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Workload generator.
    pub generator: GeneratorSpec,
    /// Site assignment.
    pub assignment: AssignmentSpec,
    /// Number of sites (>= 2).
    pub k: u32,
    /// Approximation error ε.
    pub epsilon: f64,
    /// Stream length.
    pub n: u64,
    /// Master seed; generator and assignment derive distinct sub-seeds.
    pub seed: u64,
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Protocol-internal overrides (ablations); default is the paper's.
    pub tuning: Tuning,
    /// Seeded fault schedule; default is the benign (fault-free) plan.
    pub faults: FaultPlan,
}

impl Scenario {
    /// A scenario with default (paper-constant) tuning.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        generator: GeneratorSpec,
        assignment: AssignmentSpec,
        k: u32,
        epsilon: f64,
        n: u64,
        seed: u64,
        protocol: ProtocolSpec,
    ) -> Self {
        Scenario {
            generator,
            assignment,
            k,
            epsilon,
            n,
            seed,
            protocol,
            tuning: Tuning::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Attach a fault schedule (hostile-traffic scenarios).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        debug_assert!(
            faults.validate(self.k, self.n).is_ok(),
            "invalid fault plan for this scenario: {:?}",
            faults.validate(self.k, self.n)
        );
        self.faults = faults;
        self
    }

    /// Override the warm-up length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.tuning.warmup = Some(warmup);
        self
    }

    /// Override the heavy-hitter re-sync trigger (ablation E15).
    pub fn with_resync_after(mut self, resync_after: u32) -> Self {
        self.tuning.resync_after = Some(resync_after);
        self
    }

    /// Override the quantile interval granularity (ablation E16).
    pub fn with_granularity(mut self, granularity: u32) -> Self {
        self.tuning.granularity = Some(granularity);
        self
    }
    /// The assigned stream this scenario feeds, as a fresh iterator.
    pub fn stream(&self) -> Stream<BuiltGenerator, BuiltAssignment> {
        Stream::new(
            self.generator.build(self.seed.wrapping_mul(2) + 1),
            self.assignment
                .build(self.k, self.seed.wrapping_mul(2654435761) + 7),
            self.n,
        )
    }

    /// Interval between mid-stream oracle checkpoints (~16 per run, and
    /// co-prime-ish with common stream periods so checks don't alias
    /// bursts or drift phases).
    pub fn check_every(&self) -> u64 {
        (self.n / 16).max(1) | 1
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/k{}/eps{}/n{}/seed{}{}",
            self.protocol.label(),
            self.generator.label(),
            self.assignment.label(),
            self.k,
            self.epsilon,
            self.n,
            self.seed,
            self.faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_streams_are_reproducible() {
        let s = Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 16,
                s: 1.2,
            },
            AssignmentSpec::UniformSites,
            4,
            0.1,
            500,
            9,
            ProtocolSpec::HhExact,
        );
        let a: Vec<_> = s.stream().collect();
        let b: Vec<_> = s.stream().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|(site, _)| site.0 < 4));
    }

    #[test]
    fn different_seeds_differ() {
        let base = Scenario::new(
            GeneratorSpec::Uniform { universe: 1 << 30 },
            AssignmentSpec::UniformSites,
            3,
            0.1,
            200,
            1,
            ProtocolSpec::Counter,
        );
        let other = Scenario { seed: 2, ..base };
        let a: Vec<_> = base.stream().collect();
        let b: Vec<_> = other.stream().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn names_are_stable_identifiers() {
        let s = Scenario::new(
            GeneratorSpec::SortedRamp { start: 0, step: 3 },
            AssignmentSpec::Bursts { burst_len: 50 },
            6,
            0.05,
            1000,
            42,
            ProtocolSpec::AllQExact,
        );
        assert_eq!(
            s.to_string(),
            "allq-exact/ramp/bursts/k6/eps0.05/n1000/seed42"
        );
    }

    #[test]
    fn fault_plans_extend_the_name_without_touching_benign_ids() {
        use crate::faults::{FaultPlan, KillFault};
        let base = Scenario::new(
            GeneratorSpec::FlashCrowd {
                universe: 1 << 16,
                s: 1.2,
                period: 500,
                flash_len: 100,
            },
            AssignmentSpec::SiteChurn {
                active: 2,
                epoch: 64,
            },
            4,
            0.1,
            6000,
            601,
            ProtocolSpec::Counter,
        );
        assert_eq!(
            base.to_string(),
            "counter/flash-crowd/site-churn/k4/eps0.1/n6000/seed601"
        );
        let faulted = base.with_faults(FaultPlan {
            kill: Some(KillFault { site: 1, at: 3000 }),
            ..FaultPlan::default()
        });
        assert_eq!(
            faulted.to_string(),
            "counter/flash-crowd/site-churn/k4/eps0.1/n6000/seed601/kill1@3000"
        );
        // Faulted scenarios replay the same stream as their benign twin:
        // the plan perturbs delivery, never generation.
        let a: Vec<_> = base.stream().collect();
        let b: Vec<_> = faulted.stream().collect();
        assert_eq!(a, b);
    }
}
