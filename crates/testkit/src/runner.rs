//! Drive one [`Scenario`] end-to-end.
//!
//! Two entry points share all cluster construction and stream plumbing:
//!
//! * [`run_scenario`] — differential mode: feed the assigned stream
//!   through the protocol cluster and the exact oracle in lockstep, check
//!   the ε-guarantee at periodic checkpoints and at the end, then check
//!   the metered communication against the paper's bound.
//! * [`measure_cost`] — meter-only mode: feed the same stream and report
//!   the metered cost without maintaining an oracle or enforcing the
//!   budget. This is what the experiment harness uses for its scaling
//!   tables, where n reaches 10⁷ and an exact oracle per run would
//!   dominate the runtime, and where parameter sweeps (ε → 0.005,
//!   k → 64) deliberately leave the calibrated-budget envelope.

use crate::bound::word_budget;
use crate::report::{ScenarioFailure, ScenarioReport};
use crate::scenario::{ProtocolSpec, Scenario};
use dtrack_baseline::{CgmrConfig, PollingConfig};
use dtrack_core::allq::AllQConfig;
use dtrack_core::counter::{CounterCoordinator, CounterSite};
use dtrack_core::hh::HhConfig;
use dtrack_core::quantile::QuantileConfig;
use dtrack_core::ExactOracle;
use dtrack_sim::{Cluster, Coordinator, Site};

/// Quantile fractions probed when a protocol answers rank/quantile
/// queries for every φ simultaneously.
pub const PROBE_PHIS: [f64; 5] = [0.05, 0.25, 0.5, 0.75, 0.95];

/// How a scenario is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Oracle checks at checkpoints + communication budget enforced.
    Check,
    /// Meter only: no oracle, no budget enforcement.
    Meter,
}

/// How items are delivered to the cluster. Both paths are
/// transcript-identical by construction; the per-item path exists so
/// differential tests can prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeedMode {
    /// Checkpoint-aligned chunks through `Cluster::feed_batch`.
    Batched,
    /// One `Cluster::feed` call per item (the pre-batching behavior).
    PerItem,
}

/// Items per `feed_batch` call. Large enough to amortize per-call
/// overhead, small enough to stay cache-resident; checkpoints shorten the
/// final chunk before each boundary so check timing is unaffected. The
/// threaded runner ships the same chunks so both runtimes see identical
/// same-site runs.
pub(crate) const FEED_CHUNK: u64 = 4096;

/// Run a scenario to completion in differential mode.
///
/// Returns the cost/accuracy report, or the first guarantee violation
/// with the scenario name attached (every failure is replayable: the
/// scenario is fully seeded).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(scenario, Mode::Check, FeedMode::Batched)
}

/// Feed the scenario's stream and report metered cost only — no oracle,
/// no budget enforcement (`checks` is 0 in the report).
pub fn measure_cost(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(scenario, Mode::Meter, FeedMode::Batched)
}

/// Differential-testing aid: [`run_scenario`], but delivering every item
/// through a separate `Cluster::feed` call instead of `feed_batch`. The
/// report must be identical to [`run_scenario`]'s — the batch path is an
/// optimization, not a semantic change — and `testkit`'s differential
/// tests assert exactly that.
pub fn run_scenario_per_item(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(scenario, Mode::Check, FeedMode::PerItem)
}

/// Differential-testing aid: per-item variant of [`measure_cost`] (see
/// [`run_scenario_per_item`]).
pub fn measure_cost_per_item(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(scenario, Mode::Meter, FeedMode::PerItem)
}

/// Run every scenario in differential mode, stopping at the first failure.
pub fn run_matrix(scenarios: &[Scenario]) -> Result<Vec<ScenarioReport>, ScenarioFailure> {
    scenarios.iter().map(run_scenario).collect()
}

fn dispatch(
    scenario: &Scenario,
    mode: Mode,
    feed: FeedMode,
) -> Result<ScenarioReport, ScenarioFailure> {
    let fail = |detail: String| ScenarioFailure {
        scenario: scenario.to_string(),
        detail,
    };
    if scenario.k < 2 {
        return Err(fail("scenarios need k >= 2".to_owned()));
    }
    match scenario.protocol {
        ProtocolSpec::Counter => run_counter(scenario, mode, feed),
        ProtocolSpec::HhExact | ProtocolSpec::HhSketched => run_hh(scenario, mode, feed),
        ProtocolSpec::QuantileExact { phi } | ProtocolSpec::QuantileSketched { phi } => {
            run_quantile(scenario, phi, mode, feed)
        }
        ProtocolSpec::AllQExact => run_allq(scenario, mode, feed),
        ProtocolSpec::Cgmr => run_cgmr(scenario, mode, feed),
        ProtocolSpec::Polling => run_polling(scenario, mode, feed),
        ProtocolSpec::ForwardAll => run_forward_all(scenario, mode, feed),
    }
    .map_err(fail)
}

/// The warm-up length a scenario runs with. In differential mode warm-up
/// is pinned to n/8 so a scenario spends most of its stream in tracking
/// mode (the interesting regime) and the budget calibration sees one
/// consistent warm-up policy; in meter-only mode the protocol default is
/// kept so cost tables reflect the paper's configuration. `tuning.warmup`
/// overrides both.
fn effective_warmup(scenario: &Scenario, mode: Mode, protocol_default: u64) -> u64 {
    if let Some(w) = scenario.tuning.warmup {
        return w;
    }
    match mode {
        Mode::Check => (scenario.n / 8).max(32),
        Mode::Meter => protocol_default,
    }
}

/// Feed the scenario's stream through `cluster`; in differential mode
/// also maintain the oracle, call `check` at every checkpoint and at the
/// end, and verify the communication budget.
///
/// The default delivery is [`FeedMode::Batched`]: items go to the cluster
/// in chunks of up to [`FEED_CHUNK`] through `Cluster::feed_batch`, with
/// every chunk cut at the next checkpoint boundary so checks observe
/// exactly the same prefixes as per-item delivery. The oracle ingests
/// lazily, so observing a whole chunk before feeding it changes nothing it
/// can answer at the checkpoint.
fn drive<S, C>(
    scenario: &Scenario,
    mode: Mode,
    feed: FeedMode,
    warmup: u64,
    mut cluster: Cluster<S, C>,
    mut check: impl FnMut(&C, &ExactOracle, u64) -> Result<u64, String>,
) -> Result<ScenarioReport, String>
where
    S: Site<Item = u64>,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let mut oracle = ExactOracle::new();
    let check_every = scenario.check_every();
    let mut checks = 0u64;
    let mut stream = scenario.stream();
    match feed {
        FeedMode::Batched => {
            let mut batch: Vec<(dtrack_sim::SiteId, u64)> =
                Vec::with_capacity(FEED_CHUNK.min(scenario.n) as usize);
            let mut fed = 0u64;
            while fed < scenario.n {
                let mut stop = scenario.n.min(fed + FEED_CHUNK);
                if mode == Mode::Check {
                    // Cut the chunk at the next checkpoint boundary.
                    let next_check = (fed / check_every + 1) * check_every;
                    stop = stop.min(next_check);
                }
                batch.clear();
                for _ in fed..stop {
                    let (site, item) = stream
                        .next()
                        .ok_or_else(|| format!("stream ended early at item {fed}"))?;
                    if mode == Mode::Check {
                        oracle.observe(item);
                    }
                    batch.push((site, item));
                }
                cluster
                    .feed_batch(&batch)
                    .map_err(|e| format!("feed_batch failed in items {fed}..{stop}: {e}"))?;
                fed = stop;
                if mode == Mode::Check && fed.is_multiple_of(check_every) {
                    checks += check(cluster.coordinator(), &oracle, fed)
                        .map_err(|e| format!("checkpoint at item {fed}: {e}"))?;
                }
            }
        }
        FeedMode::PerItem => {
            for (i, (site, item)) in stream.enumerate() {
                if mode == Mode::Check {
                    oracle.observe(item);
                }
                cluster
                    .feed(site, item)
                    .map_err(|e| format!("feed failed at item {i}: {e}"))?;
                let fed = (i + 1) as u64;
                if mode == Mode::Check && fed.is_multiple_of(check_every) {
                    checks += check(cluster.coordinator(), &oracle, fed)
                        .map_err(|e| format!("checkpoint at item {fed}: {e}"))?;
                }
            }
        }
    }
    if mode == Mode::Check && !scenario.n.is_multiple_of(check_every) {
        // The loop already checkpointed at fed == n when check_every
        // divides n; only the ragged tail needs a final pass.
        checks += check(cluster.coordinator(), &oracle, scenario.n)
            .map_err(|e| format!("final check: {e}"))?;
    }

    let words = cluster.meter().total_words();
    let messages = cluster.meter().total_messages();
    let budget = word_budget(scenario, warmup);
    if mode == Mode::Check && words > budget {
        return Err(format!(
            "communication bound violated: {words} words > budget {budget} \
             (k={}, eps={}, n={})",
            scenario.k, scenario.epsilon, scenario.n
        ));
    }
    Ok(ScenarioReport {
        scenario: scenario.to_string(),
        protocol: scenario.protocol.label(),
        k: scenario.k,
        epsilon: scenario.epsilon,
        n: scenario.n,
        words,
        messages,
        budget_words: budget,
        checks,
    })
}

fn run_counter(scenario: &Scenario, mode: Mode, feed: FeedMode) -> Result<ScenarioReport, String> {
    let eps = scenario.epsilon;
    let k = scenario.k;
    let sites = (0..k)
        .map(|_| CounterSite::new(eps))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    let cluster = Cluster::new(sites, CounterCoordinator::new()).map_err(|e| e.to_string())?;
    drive(
        scenario,
        mode,
        feed,
        0,
        cluster,
        move |coord, oracle, _fed| {
            let n = oracle.total();
            let est = coord.estimate();
            if est > n {
                return Err(format!("counter overestimates: {est} > {n}"));
            }
            // Each of the k sites can hold back one (1+ε)-factor step.
            if (est as f64) < (1.0 - eps) * n as f64 - k as f64 {
                return Err(format!("counter estimate {est} below (1-eps)n for n={n}"));
            }
            Ok(2)
        },
    )
}

fn run_hh(scenario: &Scenario, mode: Mode, feed: FeedMode) -> Result<ScenarioReport, String> {
    let eps = scenario.epsilon;
    let mut config = HhConfig::new(scenario.k, eps).map_err(|e| e.to_string())?;
    let warmup = effective_warmup(scenario, mode, config.warmup_target);
    config = config.with_warmup_target(warmup);
    if let Some(r) = scenario.tuning.resync_after {
        config = config.with_resync_after(r);
    }
    // φ thresholds checked against the oracle; every φ > ε is meaningful.
    let phis: Vec<f64> = [0.02, 0.05, 0.1, 0.25, 0.5]
        .into_iter()
        .filter(|&phi| phi > eps)
        .collect();
    let check = move |global_count: u64,
                      hh_of: &dyn Fn(f64) -> Result<Vec<u64>, String>,
                      oracle: &ExactOracle|
          -> Result<u64, String> {
        let m = oracle.total();
        // Invariant (3) of Figure 1: the tracked count is an
        // (1−ε/3)-underestimate of m.
        if global_count > m {
            return Err(format!("tracked count {global_count} > true {m}"));
        }
        if (global_count as f64) < m as f64 * (1.0 - eps / 3.0) - 1.0 {
            return Err(format!("tracked count {global_count} too stale for m={m}"));
        }
        let mut checks = 1;
        for &phi in &phis {
            let reported = hh_of(phi)?;
            if let Some(violation) = oracle.check_heavy_hitters(&reported, phi, eps) {
                return Err(format!("phi={phi}: {violation}"));
            }
            checks += 1;
        }
        Ok(checks)
    };
    match scenario.protocol {
        ProtocolSpec::HhSketched => {
            let cluster = dtrack_core::hh::sketched_cluster(config).map_err(|e| e.to_string())?;
            drive(
                scenario,
                mode,
                feed,
                warmup,
                cluster,
                move |coord, oracle, _| {
                    check(
                        coord.global_count(),
                        &|phi| coord.heavy_hitters(phi).map_err(|e| e.to_string()),
                        oracle,
                    )
                },
            )
        }
        _ => {
            let cluster = dtrack_core::hh::exact_cluster(config).map_err(|e| e.to_string())?;
            drive(
                scenario,
                mode,
                feed,
                warmup,
                cluster,
                move |coord, oracle, _| {
                    check(
                        coord.global_count(),
                        &|phi| coord.heavy_hitters(phi).map_err(|e| e.to_string()),
                        oracle,
                    )
                },
            )
        }
    }
}

fn run_quantile(
    scenario: &Scenario,
    phi: f64,
    mode: Mode,
    feed: FeedMode,
) -> Result<ScenarioReport, String> {
    let eps = scenario.epsilon;
    let mut config = QuantileConfig::new(scenario.k, eps, phi).map_err(|e| e.to_string())?;
    let warmup = effective_warmup(scenario, mode, config.warmup_target);
    config = config.with_warmup_target(warmup);
    if let Some(g) = scenario.tuning.granularity {
        config = config.with_granularity(g);
    }
    let check = move |quantile: Option<u64>, oracle: &ExactOracle| -> Result<u64, String> {
        let Some(q) = quantile else {
            return if oracle.total() == 0 {
                Ok(0)
            } else {
                Err("no quantile answer on a nonempty stream".to_owned())
            };
        };
        if !oracle.quantile_ok(q, phi, eps) {
            return Err(format!(
                "phi={phi}: {q} outside the ε-band (rank {} of {})",
                oracle.rank_lt(q),
                oracle.total()
            ));
        }
        Ok(1)
    };
    match scenario.protocol {
        ProtocolSpec::QuantileSketched { .. } => {
            let cluster =
                dtrack_core::quantile::sketched_cluster(config).map_err(|e| e.to_string())?;
            drive(
                scenario,
                mode,
                feed,
                warmup,
                cluster,
                move |coord, oracle, _| check(coord.quantile(), oracle),
            )
        }
        _ => {
            let cluster =
                dtrack_core::quantile::exact_cluster(config).map_err(|e| e.to_string())?;
            drive(
                scenario,
                mode,
                feed,
                warmup,
                cluster,
                move |coord, oracle, _| check(coord.quantile(), oracle),
            )
        }
    }
}

fn run_allq(scenario: &Scenario, mode: Mode, feed: FeedMode) -> Result<ScenarioReport, String> {
    let eps = scenario.epsilon;
    let mut config = AllQConfig::new(scenario.k, eps).map_err(|e| e.to_string())?;
    let warmup = effective_warmup(scenario, mode, config.warmup_target);
    config = config.with_warmup_target(warmup);
    let cluster = dtrack_core::allq::exact_cluster(config).map_err(|e| e.to_string())?;
    drive(
        scenario,
        mode,
        feed,
        warmup,
        cluster,
        move |coord, oracle, _| {
            let n = oracle.total();
            if n == 0 {
                return Ok(0);
            }
            let mut checks = 0;
            for phi in PROBE_PHIS {
                let q = coord
                    .quantile(phi)
                    .map_err(|e| e.to_string())?
                    .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
                if !oracle.quantile_ok(q, phi, eps) {
                    return Err(format!(
                        "phi={phi}: {q} outside the ε-band (rank {} of {n})",
                        oracle.rank_lt(q)
                    ));
                }
                checks += 1;
            }
            // Rank queries: probe at the oracle's own quantile positions so the
            // probes track the value distribution (and its drift) exactly.
            for phi in PROBE_PHIS {
                let probe = oracle.quantile(phi).expect("nonempty");
                let est = coord.rank_lt(probe);
                let truth = oracle.rank_lt(probe);
                if est.abs_diff(truth) as f64 > eps * n as f64 + 2.0 {
                    return Err(format!(
                        "rank_lt({probe}): {est} vs true {truth}, beyond εn = {}",
                        eps * n as f64
                    ));
                }
                checks += 1;
            }
            Ok(checks)
        },
    )
}

fn run_cgmr(scenario: &Scenario, mode: Mode, feed: FeedMode) -> Result<ScenarioReport, String> {
    let eps = scenario.epsilon;
    let config = CgmrConfig::new(scenario.k, eps)?;
    let cluster = dtrack_baseline::cgmr::exact_cluster(config).map_err(|e| e.to_string())?;
    drive(scenario, mode, feed, 0, cluster, move |coord, oracle, _| {
        let n = oracle.total();
        if n == 0 {
            return Ok(0);
        }
        let mut checks = 0;
        for phi in PROBE_PHIS {
            let q = coord
                .quantile(phi)
                .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
            if !oracle.quantile_ok(q, phi, eps) {
                return Err(format!(
                    "phi={phi}: {q} outside the ε-band (rank {} of {n})",
                    oracle.rank_lt(q)
                ));
            }
            let probe = oracle.quantile(phi).expect("nonempty");
            let est = coord.rank_lt(probe);
            let truth = oracle.rank_lt(probe);
            if est.abs_diff(truth) as f64 > eps * n as f64 + 2.0 {
                return Err(format!("rank_lt({probe}): {est} vs true {truth}"));
            }
            checks += 2;
        }
        Ok(checks)
    })
}

fn run_polling(scenario: &Scenario, mode: Mode, feed: FeedMode) -> Result<ScenarioReport, String> {
    let eps = scenario.epsilon;
    let config = PollingConfig::new(scenario.k, eps)?;
    let cluster = dtrack_baseline::naive::polling_cluster(config).map_err(|e| e.to_string())?;
    drive(scenario, mode, feed, 0, cluster, move |coord, oracle, _| {
        let n = oracle.total();
        if n == 0 {
            return Ok(0);
        }
        let mut checks = 0;
        for phi in PROBE_PHIS {
            let q = coord
                .quantile(phi)
                .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
            // Between polls up to εn arrivals are unaccounted on top of
            // the summaries' own εn error — the strawman's band is 2ε.
            if !oracle.quantile_ok(q, phi, 2.0 * eps) {
                return Err(format!(
                    "phi={phi}: {q} outside the 2ε-band (rank {} of {n})",
                    oracle.rank_lt(q)
                ));
            }
            checks += 1;
        }
        Ok(checks)
    })
}

fn run_forward_all(
    scenario: &Scenario,
    mode: Mode,
    feed: FeedMode,
) -> Result<ScenarioReport, String> {
    let cluster =
        dtrack_baseline::naive::forward_all_cluster(scenario.k).map_err(|e| e.to_string())?;
    drive(scenario, mode, feed, 0, cluster, move |coord, oracle, _| {
        let n = oracle.total();
        if coord.total() != n {
            return Err(format!("total {} != true {n}", coord.total()));
        }
        if n == 0 {
            return Ok(1);
        }
        let mut checks = 1;
        for phi in PROBE_PHIS {
            let probe = oracle.quantile(phi).expect("nonempty");
            if coord.rank_lt(probe) != oracle.rank_lt(probe) {
                return Err(format!(
                    "rank_lt({probe}): {} != exact {}",
                    coord.rank_lt(probe),
                    oracle.rank_lt(probe)
                ));
            }
            let q = coord
                .quantile(phi)
                .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
            // Same multiset ⇒ the answer must be an exact φ-quantile
            // under the rank-interval convention.
            if !oracle.quantile_ok(q, phi, 0.0) {
                return Err(format!("phi={phi}: {q} is not an exact quantile"));
            }
            checks += 2;
        }
        Ok(checks)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec};

    fn base(protocol: ProtocolSpec) -> Scenario {
        Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 18,
                s: 1.2,
            },
            AssignmentSpec::RoundRobin,
            4,
            0.1,
            3_000,
            5,
            protocol,
        )
    }

    #[test]
    fn measure_cost_skips_checks_but_meters() {
        let r = measure_cost(&base(ProtocolSpec::HhExact)).unwrap();
        assert_eq!(r.checks, 0);
        assert!(r.words > 0);
        assert!(r.messages > 0);
    }

    #[test]
    fn measure_and_check_modes_meter_comparably() {
        // Same scenario, same stream; differential mode shortens warm-up
        // (n/8 = 375 < the k/ε = 40 default? no: uses min), so force one
        // warm-up for an exact cost match across modes.
        let s = base(ProtocolSpec::HhExact).with_warmup(100);
        let checked = run_scenario(&s).unwrap();
        let metered = measure_cost(&s).unwrap();
        assert_eq!(checked.words, metered.words);
        assert_eq!(checked.messages, metered.messages);
        assert!(checked.checks > 0);
        assert_eq!(metered.checks, 0);
    }

    #[test]
    fn resync_tuning_changes_cost() {
        let s = base(ProtocolSpec::HhExact);
        let default = measure_cost(&s).unwrap();
        let eager = measure_cost(&s.with_resync_after(1)).unwrap();
        assert_ne!(default.words, eager.words);
    }

    #[test]
    fn granularity_tuning_changes_cost() {
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let default = measure_cost(&s).unwrap();
        let coarse = measure_cost(&s.with_granularity(6)).unwrap();
        assert_ne!(default.words, coarse.words);
    }
}
