//! Drive one [`Scenario`] end-to-end through the [`Tracker`] facade.
//!
//! One generic driver serves every protocol (construction, checkpoint
//! checks, and budgets come from the [`crate::registry`]) and every
//! backend (the facade hides the runtime). Entry points:
//!
//! * [`run_scenario`] — differential mode on the deterministic backend:
//!   feed the assigned stream through the protocol tracker and the exact
//!   oracle in lockstep, check the ε-guarantee at periodic checkpoints
//!   and at the end, then check the metered communication against the
//!   paper's bound.
//! * [`run_scenario_on`] — the same differential run on a chosen
//!   [`BackendKind`]; the site-at-a-time schedule makes the threaded
//!   backend transcript-identical, so the same budgets apply.
//! * [`measure_cost`] — meter-only mode: feed the same stream and report
//!   the metered cost without maintaining an oracle or enforcing the
//!   budget. This is what the experiment harness uses for its scaling
//!   tables, where n reaches 10⁷ and an exact oracle per run would
//!   dominate the runtime, and where parameter sweeps (ε → 0.005,
//!   k → 64) deliberately leave the calibrated-budget envelope.

use crate::bound::word_budget;
use crate::registry::{self, WarmupPolicy};
use crate::report::{ScenarioFailure, ScenarioReport};
use crate::scenario::Scenario;
use dtrack_core::ExactOracle;
use dtrack_sim::{BackendKind, SiteId, Tracker};

pub use dtrack_sim::PROBE_PHIS;

/// How a scenario is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Oracle checks at checkpoints + communication budget enforced.
    Check,
    /// Meter only: no oracle, no budget enforcement.
    Meter,
}

/// How items are delivered to the tracker. Both paths are
/// transcript-identical by construction; the per-item path exists so
/// differential tests can prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeedMode {
    /// Checkpoint-aligned chunks through [`Tracker::feed_batch`].
    Batched,
    /// One [`Tracker::feed`] call per item (the pre-batching behavior).
    PerItem,
}

/// Items per `feed_batch` call. Large enough to amortize per-call
/// overhead, small enough to stay cache-resident; checkpoints shorten the
/// final chunk before each boundary so check timing is unaffected. The
/// threaded driver (and the bench harness's facade-vs-direct cells) ship
/// the same chunks so every driver sees identical same-site runs.
pub const FEED_CHUNK: u64 = 4096;

/// Run a scenario to completion in differential mode on the
/// deterministic backend.
///
/// Returns the cost/accuracy report, or the first guarantee violation
/// with the scenario name attached (every failure is replayable: the
/// scenario is fully seeded).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(
        scenario,
        Mode::Check,
        FeedMode::Batched,
        BackendKind::Deterministic,
    )
}

/// [`run_scenario`] on an explicit backend. The batched site-at-a-time
/// schedule keeps the threaded backend's transcript — and therefore its
/// budget compliance — bit-identical to the deterministic one.
pub fn run_scenario_on(
    scenario: &Scenario,
    backend: BackendKind,
) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(scenario, Mode::Check, FeedMode::Batched, backend)
}

/// Feed the scenario's stream and report metered cost only — no oracle,
/// no budget enforcement (`checks` is 0 in the report).
pub fn measure_cost(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(
        scenario,
        Mode::Meter,
        FeedMode::Batched,
        BackendKind::Deterministic,
    )
}

/// Differential-testing aid: [`run_scenario`], but delivering every item
/// through a separate [`Tracker::feed`] call instead of `feed_batch`. The
/// report must be identical to [`run_scenario`]'s — the batch path is an
/// optimization, not a semantic change — and `testkit`'s differential
/// tests assert exactly that.
pub fn run_scenario_per_item(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(
        scenario,
        Mode::Check,
        FeedMode::PerItem,
        BackendKind::Deterministic,
    )
}

/// Differential-testing aid: per-item variant of [`measure_cost`] (see
/// [`run_scenario_per_item`]).
pub fn measure_cost_per_item(scenario: &Scenario) -> Result<ScenarioReport, ScenarioFailure> {
    dispatch(
        scenario,
        Mode::Meter,
        FeedMode::PerItem,
        BackendKind::Deterministic,
    )
}

/// Run every scenario in differential mode, stopping at the first failure.
pub fn run_matrix(scenarios: &[Scenario]) -> Result<Vec<ScenarioReport>, ScenarioFailure> {
    scenarios.iter().map(run_scenario).collect()
}

fn dispatch(
    scenario: &Scenario,
    mode: Mode,
    feed: FeedMode,
    backend: BackendKind,
) -> Result<ScenarioReport, ScenarioFailure> {
    let fail = |detail: String| ScenarioFailure {
        scenario: scenario.to_string(),
        detail,
    };
    if scenario.k < 2 {
        return Err(fail("scenarios need k >= 2".to_owned()));
    }
    let profile = registry::profile(scenario.protocol);
    let policy = match mode {
        Mode::Check => WarmupPolicy::Differential,
        Mode::Meter => WarmupPolicy::ProtocolDefault,
    };
    let warmup = registry::resolve_warmup(profile, scenario, policy).map_err(&fail)?;
    let tracker = (profile.build)(scenario, warmup, backend).map_err(&fail)?;
    drive(scenario, mode, feed, warmup, tracker, profile.check).map_err(fail)
}

/// Feed the scenario's stream through `tracker`; in differential mode
/// also maintain the oracle, call `check` at every checkpoint and at the
/// end, and verify the communication budget.
///
/// The default delivery is [`FeedMode::Batched`]: items go to the tracker
/// in chunks of up to [`FEED_CHUNK`] through [`Tracker::feed_batch`], with
/// every chunk cut at the next checkpoint boundary so checks observe
/// exactly the same prefixes as per-item delivery. The oracle ingests
/// lazily, so observing a whole chunk before feeding it changes nothing it
/// can answer at the checkpoint.
fn drive(
    scenario: &Scenario,
    mode: Mode,
    feed: FeedMode,
    warmup: u64,
    mut tracker: Tracker,
    check: registry::CheckFn,
) -> Result<ScenarioReport, String> {
    let mut oracle = ExactOracle::new();
    let check_every = scenario.check_every();
    let mut checks = 0u64;
    let mut stream = scenario.stream();
    // The seeded fault schedule: each event fires after exactly `at`
    // items, at a quiescent boundary, on every backend and feed mode
    // alike — so faulted transcripts stay replayable and comparable.
    // After a kill, accuracy checks run against a 2ε twin (one site's
    // un-synced residual is gone for good; the relaxation is exactly one
    // extra site-threshold of slack), and the dead site's later items
    // are statically rerouted by `FaultPlan::route`.
    scenario
        .faults
        .validate(scenario.k, scenario.n)
        .map_err(|e| format!("invalid fault plan: {e}"))?;
    let schedule = scenario.faults.schedule();
    let mut next_event = 0usize;
    let relaxed = Scenario {
        epsilon: scenario.epsilon * 2.0,
        ..*scenario
    };
    let mut kill_seen = false;
    // Inject every event scheduled at exactly `fed` items (the runner
    // settles first, so the fault lands on a quiescent transcript).
    let inject_due = |fed: u64,
                      next_event: &mut usize,
                      kill_seen: &mut bool,
                      tracker: &mut Tracker|
     -> Result<(), String> {
        while let Some(&(at, event)) = schedule.get(*next_event) {
            if at != fed {
                break;
            }
            tracker.settle();
            tracker
                .inject_fault(event)
                .map_err(|e| format!("fault injection at item {fed}: {e}"))?;
            if matches!(event, dtrack_sim::FaultEvent::KillSite { .. }) {
                *kill_seen = true;
            }
            *next_event += 1;
        }
        Ok(())
    };
    match feed {
        FeedMode::Batched => {
            let mut batch: Vec<(SiteId, u64)> =
                Vec::with_capacity(FEED_CHUNK.min(scenario.n) as usize);
            let mut fed = 0u64;
            inject_due(0, &mut next_event, &mut kill_seen, &mut tracker)?;
            while fed < scenario.n {
                let mut stop = scenario.n.min(fed + FEED_CHUNK);
                if mode == Mode::Check {
                    // Cut the chunk at the next checkpoint boundary.
                    let next_check = (fed / check_every + 1) * check_every;
                    stop = stop.min(next_check);
                }
                if let Some(&(at, _)) = schedule.get(next_event) {
                    // Cut at the next fault boundary (both modes: faults
                    // perturb the metered transcript, not just checks).
                    stop = stop.min(at);
                }
                batch.clear();
                for idx in fed..stop {
                    let (site, item) = stream
                        .next()
                        .ok_or_else(|| format!("stream ended early at item {fed}"))?;
                    if mode == Mode::Check {
                        oracle.observe(item);
                    }
                    batch.push((scenario.faults.route(idx, site, scenario.k), item));
                }
                tracker
                    .feed_batch(&batch)
                    .map_err(|e| format!("feed_batch failed in items {fed}..{stop}: {e}"))?;
                fed = stop;
                if mode == Mode::Check && fed.is_multiple_of(check_every) {
                    // Checkpoint *before* any same-index fault: the check
                    // observes the last healthy prefix at full strictness.
                    let s = if kill_seen { &relaxed } else { scenario };
                    checks += check(&mut tracker, &oracle, s)
                        .map_err(|e| format!("checkpoint at item {fed}: {e}"))?;
                }
                inject_due(fed, &mut next_event, &mut kill_seen, &mut tracker)?;
            }
        }
        FeedMode::PerItem => {
            inject_due(0, &mut next_event, &mut kill_seen, &mut tracker)?;
            for (i, (site, item)) in stream.enumerate() {
                if mode == Mode::Check {
                    oracle.observe(item);
                }
                let site = scenario.faults.route(i as u64, site, scenario.k);
                tracker
                    .feed(site, item)
                    .map_err(|e| format!("feed failed at item {i}: {e}"))?;
                let fed = (i + 1) as u64;
                if mode == Mode::Check && fed.is_multiple_of(check_every) {
                    let s = if kill_seen { &relaxed } else { scenario };
                    checks += check(&mut tracker, &oracle, s)
                        .map_err(|e| format!("checkpoint at item {fed}: {e}"))?;
                }
                inject_due(fed, &mut next_event, &mut kill_seen, &mut tracker)?;
            }
        }
    }
    if mode == Mode::Check && !scenario.n.is_multiple_of(check_every) {
        // The loop already checkpointed at fed == n when check_every
        // divides n; only the ragged tail needs a final pass.
        let s = if kill_seen { &relaxed } else { scenario };
        checks += check(&mut tracker, &oracle, s).map_err(|e| format!("final check: {e}"))?;
    }

    // Tear down through finish() so threaded worker death surfaces as an
    // error instead of silently yielding a partial transcript; the
    // returned meter is the post-settle merge cost() would have given.
    let meter = tracker
        .finish()
        .map_err(|e| format!("teardown failed: {e}"))?;
    let words = meter.total_words();
    let messages = meter.total_messages();
    let by_kind = kind_rows(&meter);
    let budget = word_budget(scenario, warmup);
    if mode == Mode::Check && words > budget {
        return Err(format!(
            "communication bound violated: {words} words > budget {budget} \
             (k={}, eps={}, n={})",
            scenario.k, scenario.epsilon, scenario.n
        ));
    }
    Ok(ScenarioReport {
        scenario: scenario.to_string(),
        protocol: scenario.protocol.label(),
        k: scenario.k,
        epsilon: scenario.epsilon,
        n: scenario.n,
        words,
        messages,
        budget_words: budget,
        checks,
        by_kind,
    })
}

/// Flatten a meter's sorted per-kind breakdown into the
/// `(label, words, messages)` rows [`ScenarioReport`] carries.
pub(crate) fn kind_rows(meter: &dtrack_sim::MessageMeter) -> Vec<(String, u64, u64)> {
    meter
        .report()
        .by_kind
        .into_iter()
        .map(|(kind, cost)| (kind, cost.words, cost.messages))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AssignmentSpec, GeneratorSpec, ProtocolSpec};

    fn base(protocol: ProtocolSpec) -> Scenario {
        Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 18,
                s: 1.2,
            },
            AssignmentSpec::RoundRobin,
            4,
            0.1,
            3_000,
            5,
            protocol,
        )
    }

    #[test]
    fn measure_cost_skips_checks_but_meters() {
        let r = measure_cost(&base(ProtocolSpec::HhExact)).unwrap();
        assert_eq!(r.checks, 0);
        assert!(r.words > 0);
        assert!(r.messages > 0);
    }

    #[test]
    fn measure_and_check_modes_meter_comparably() {
        // Same scenario, same stream; differential mode shortens warm-up
        // (n/8 = 375 < the k/ε = 40 default? no: uses min), so force one
        // warm-up for an exact cost match across modes.
        let s = base(ProtocolSpec::HhExact).with_warmup(100);
        let checked = run_scenario(&s).unwrap();
        let metered = measure_cost(&s).unwrap();
        assert_eq!(checked.words, metered.words);
        assert_eq!(checked.messages, metered.messages);
        assert!(checked.checks > 0);
        assert_eq!(metered.checks, 0);
    }

    #[test]
    fn resync_tuning_changes_cost() {
        let s = base(ProtocolSpec::HhExact);
        let default = measure_cost(&s).unwrap();
        let eager = measure_cost(&s.with_resync_after(1)).unwrap();
        assert_ne!(default.words, eager.words);
    }

    #[test]
    fn granularity_tuning_changes_cost() {
        let s = base(ProtocolSpec::QuantileExact { phi: 0.5 });
        let default = measure_cost(&s).unwrap();
        let coarse = measure_cost(&s.with_granularity(6)).unwrap();
        assert_ne!(default.words, coarse.words);
    }

    #[test]
    fn differential_mode_passes_on_the_threaded_backend_too() {
        // The site-at-a-time schedule is transcript-identical, so the
        // same differential run (checks, budget, words) must succeed and
        // meter identically on real threads.
        let s = base(ProtocolSpec::HhExact);
        let det = run_scenario(&s).unwrap();
        let thr = run_scenario_on(&s, BackendKind::Threaded).unwrap();
        assert_eq!(det, thr);
    }
}
