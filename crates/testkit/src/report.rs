//! Outcome types: per-scenario reports and failures.

use std::fmt;

/// Cost and accuracy summary of one completed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Full scenario name (stable, replayable identifier).
    pub scenario: String,
    /// Protocol label.
    pub protocol: &'static str,
    /// Number of sites.
    pub k: u32,
    /// Approximation error ε.
    pub epsilon: f64,
    /// Stream length.
    pub n: u64,
    /// Total words communicated (the paper's cost measure).
    pub words: u64,
    /// Total messages communicated.
    pub messages: u64,
    /// The budget the scenario was held to.
    pub budget_words: u64,
    /// Number of oracle comparisons that passed.
    pub checks: u64,
    /// Per-kind `(label, words, messages)` breakdown of the metered
    /// transcript, sorted by `canonical_kind_order` — the rows the
    /// equivalence suites print as a delta table when totals drift.
    pub by_kind: Vec<(String, u64, u64)>,
}

impl ScenarioReport {
    /// Fraction of the communication budget actually used.
    pub fn budget_used(&self) -> f64 {
        self.words as f64 / self.budget_words.max(1) as f64
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<60} {:>9} words ({:>5.1}% of budget) {:>6} checks",
            self.scenario,
            self.words,
            100.0 * self.budget_used(),
            self.checks,
        )
    }
}

/// A guarantee violation, tagged with the (replayable) scenario name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioFailure {
    /// The scenario that failed.
    pub scenario: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.scenario, self.detail)
    }
}

impl std::error::Error for ScenarioFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_budget_fraction() {
        let r = ScenarioReport {
            scenario: "hh/zipf/round-robin/k4/eps0.1/n1000/seed1".to_owned(),
            protocol: "hh-exact",
            k: 4,
            epsilon: 0.1,
            n: 1000,
            words: 250,
            messages: 100,
            budget_words: 1000,
            checks: 17,
            by_kind: vec![("sync".to_owned(), 250, 100)],
        };
        assert!((r.budget_used() - 0.25).abs() < 1e-12);
        let s = r.to_string();
        assert!(s.contains("25.0% of budget"), "{s}");
    }

    #[test]
    fn failure_displays_scenario_and_detail() {
        let e = ScenarioFailure {
            scenario: "counter/uniform/bursts/k2/eps0.2/n100/seed3".to_owned(),
            detail: "counter overestimates: 101 > 100".to_owned(),
        };
        let s = e.to_string();
        assert!(s.starts_with("[counter/"));
        assert!(s.contains("overestimates"));
    }
}
