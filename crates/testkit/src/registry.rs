//! **The** protocol registry: the single `ProtocolSpec` dispatch table in
//! the workspace.
//!
//! Every protocol-specific fact the harness needs lives in one
//! [`ProtocolProfile`] row: how to build a [`Tracker`] for a scenario,
//! the protocol's default warm-up, the Θ-shape of the paper's
//! communication bound, whether order-adversarial generators get budget
//! headroom, and how to check the ε-guarantee against the exact oracle at
//! a checkpoint. The scenario drivers ([`crate::runner`],
//! [`crate::threaded`]), the budget calculator ([`crate::bound`]), and
//! [`crate::scenario::ProtocolSpec::label`] all consume rows from here —
//! adding a protocol (or a backend) touches exactly this table, nothing
//! else.
//!
//! Checks are written against the typed [`Query`] → [`Answer`] facade
//! surface, so the same check code runs unchanged on every backend.

use crate::bound::BudgetShape;
use crate::scenario::{ProtocolSpec, Scenario};
use dtrack_baseline::cgmr::CgmrProtocol;
use dtrack_baseline::naive::{ForwardAllProtocol, PollingProtocol};
use dtrack_baseline::{CgmrConfig, PollingConfig};
use dtrack_core::allq::{AllQConfig, AllQExactProtocol};
use dtrack_core::counter::CounterProtocol;
use dtrack_core::hh::{HhConfig, HhExactProtocol, HhSketchedProtocol};
use dtrack_core::quantile::{QuantileConfig, QuantileExactProtocol, QuantileSketchedProtocol};
use dtrack_core::ExactOracle;
use dtrack_sim::{Answer, BackendKind, FlowControlConfig, Query, Tracker, PROBE_PHIS};
use std::time::Duration;

/// Default quiescence deadline every harness-built tracker carries: far
/// above any healthy settle (the release suites finish whole scenarios in
/// seconds) yet finite, so a stalled or dead site degrades a run to a
/// typed [`dtrack_sim::SimError::Timeout`] failure instead of hanging the
/// suite forever.
pub const DEFAULT_SETTLE_DEADLINE: Duration = Duration::from_secs(30);

/// Build a ready-to-feed [`Tracker`] for a scenario, with the given
/// warm-up target baked into the protocol config.
pub type BuildFn = fn(&Scenario, u64, BackendKind) -> Result<Tracker, String>;

/// Check the ε-guarantee against the oracle at one checkpoint; returns
/// the number of individual comparisons performed.
pub type CheckFn = fn(&mut Tracker, &ExactOracle, &Scenario) -> Result<u64, String>;

/// The protocol's default warm-up target for a scenario.
pub type WarmupFn = fn(&Scenario) -> Result<u64, String>;

/// Everything protocol-specific the harness knows, in one row.
pub struct ProtocolProfile {
    /// Short label used in scenario names and reports.
    pub label: &'static str,
    /// The protocol's own warm-up default; `None` for protocols without
    /// a warm-up phase (their budget warm-up term is 0 and warm-up
    /// tuning is ignored).
    pub default_warmup: Option<WarmupFn>,
    /// Tracker construction.
    pub build: BuildFn,
    /// Θ-shape and constant of the paper's communication bound.
    pub budget: BudgetShape,
    /// Order-statistic protocol: order-adversarial generators (sorted
    /// ramp, band jump) get 2× budget headroom.
    pub order_sensitive: bool,
    /// Checkpoint oracle check.
    pub check: CheckFn,
}

/// Look up the profile for a protocol — the one place in the workspace
/// that dispatches over `ProtocolSpec`.
pub fn profile(spec: ProtocolSpec) -> &'static ProtocolProfile {
    match spec {
        ProtocolSpec::Counter => &COUNTER,
        ProtocolSpec::HhExact => &HH_EXACT,
        ProtocolSpec::HhSketched => &HH_SKETCHED,
        ProtocolSpec::QuantileExact { .. } => &QUANTILE_EXACT,
        ProtocolSpec::QuantileSketched { .. } => &QUANTILE_SKETCHED,
        ProtocolSpec::AllQExact => &ALLQ_EXACT,
        ProtocolSpec::Cgmr => &CGMR,
        ProtocolSpec::Polling => &POLLING,
        ProtocolSpec::ForwardAll => &FORWARD_ALL,
    }
}

/// Which warm-up a driver wants when the scenario doesn't override it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmupPolicy {
    /// Differential mode pins warm-up to n/8 (≥ 32) so most of the
    /// stream runs in tracking mode and budget calibration sees one
    /// consistent policy.
    Differential,
    /// Meter/throughput mode keeps the protocol's default so cost tables
    /// reflect the paper's configuration.
    ProtocolDefault,
}

/// Resolve the warm-up target for a scenario: `tuning.warmup` overrides,
/// otherwise the policy decides; protocols without a warm-up phase
/// always resolve to 0.
pub fn resolve_warmup(
    profile: &ProtocolProfile,
    scenario: &Scenario,
    policy: WarmupPolicy,
) -> Result<u64, String> {
    let Some(default) = profile.default_warmup else {
        return Ok(0);
    };
    if let Some(w) = scenario.tuning.warmup {
        return Ok(w);
    }
    match policy {
        WarmupPolicy::Differential => Ok((scenario.n / 8).max(32)),
        WarmupPolicy::ProtocolDefault => default(scenario),
    }
}

/// Build a tracker for a scenario under a warm-up policy (resolving the
/// warm-up first); returns the tracker and the warm-up it was built with
/// (the budget needs it).
pub fn build_tracker(
    scenario: &Scenario,
    policy: WarmupPolicy,
    backend: BackendKind,
) -> Result<(Tracker, u64), String> {
    let profile = profile(scenario.protocol);
    let warmup = resolve_warmup(profile, scenario, policy)?;
    let tracker = (profile.build)(scenario, warmup, backend)?;
    Ok((tracker, warmup))
}

// ---------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------

static COUNTER: ProtocolProfile = ProtocolProfile {
    label: "counter",
    default_warmup: None,
    build: build_counter,
    budget: BudgetShape::KOverEps(8.0),
    order_sensitive: false,
    check: check_counter,
};

static HH_EXACT: ProtocolProfile = ProtocolProfile {
    label: "hh-exact",
    default_warmup: Some(hh_default_warmup),
    build: build_hh_exact,
    budget: BudgetShape::KOverEps(24.0),
    order_sensitive: false,
    check: check_hh,
};

static HH_SKETCHED: ProtocolProfile = ProtocolProfile {
    label: "hh-sketched",
    default_warmup: Some(hh_default_warmup),
    build: build_hh_sketched,
    budget: BudgetShape::KOverEps(24.0),
    order_sensitive: false,
    check: check_hh,
};

static QUANTILE_EXACT: ProtocolProfile = ProtocolProfile {
    label: "quantile-exact",
    default_warmup: Some(quantile_default_warmup),
    build: build_quantile_exact,
    budget: BudgetShape::KOverEps(48.0),
    order_sensitive: true,
    check: check_quantile,
};

static QUANTILE_SKETCHED: ProtocolProfile = ProtocolProfile {
    label: "quantile-sketched",
    default_warmup: Some(quantile_default_warmup),
    build: build_quantile_sketched,
    budget: BudgetShape::KOverEps(48.0),
    order_sensitive: true,
    check: check_quantile,
};

static ALLQ_EXACT: ProtocolProfile = ProtocolProfile {
    label: "allq-exact",
    default_warmup: Some(allq_default_warmup),
    build: build_allq,
    budget: BudgetShape::KOverEpsLogSqInvEps(48.0),
    order_sensitive: true,
    check: check_allq,
};

static CGMR: ProtocolProfile = ProtocolProfile {
    label: "cgmr",
    default_warmup: None,
    build: build_cgmr,
    budget: BudgetShape::KOverEpsSq(24.0),
    order_sensitive: true,
    check: check_cgmr,
};

static POLLING: ProtocolProfile = ProtocolProfile {
    label: "polling",
    default_warmup: None,
    build: build_polling,
    budget: BudgetShape::KOverEpsSq(24.0),
    order_sensitive: true,
    check: check_polling,
};

static FORWARD_ALL: ProtocolProfile = ProtocolProfile {
    label: "forward-all",
    default_warmup: None,
    build: build_forward_all,
    budget: BudgetShape::Linear(2.0),
    order_sensitive: false,
    check: check_forward_all,
};

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

fn err_str<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// The tracked φ of a single-quantile scenario (only those scenarios
/// carry one; any other protocol never reaches this).
fn scenario_phi(scenario: &Scenario) -> f64 {
    match scenario.protocol {
        ProtocolSpec::QuantileExact { phi } | ProtocolSpec::QuantileSketched { phi } => phi,
        _ => 0.5,
    }
}

fn finish_build<P: dtrack_sim::Protocol>(
    scenario: &Scenario,
    backend: BackendKind,
    protocol: P,
) -> Result<Tracker, String> {
    let mut builder = Tracker::builder()
        .sites(scenario.k)
        .backend(backend)
        .settle_deadline(DEFAULT_SETTLE_DEADLINE)
        // Adaptive free-running flow control, starting at the k-aware run
        // length the driver feeds with so the first runs are neither
        // split nor buffered.
        .flow_control(FlowControlConfig {
            initial: crate::threaded::free_run_len(scenario.k) as u32,
            ..FlowControlConfig::default()
        });
    if let Some(cap) = scenario.faults.queue_cap {
        // Queue-cap fault axis: shallow site queues force backpressure on
        // the parallel backends (the deterministic one has no queues).
        builder = builder.site_queue_cap(cap as usize);
    }
    builder.protocol(protocol).build().map_err(err_str)
}

fn hh_config(scenario: &Scenario, warmup: u64) -> Result<HhConfig, String> {
    let mut config = HhConfig::new(scenario.k, scenario.epsilon)
        .map_err(err_str)?
        .with_warmup_target(warmup);
    if let Some(r) = scenario.tuning.resync_after {
        config = config.with_resync_after(r);
    }
    Ok(config)
}

fn hh_default_warmup(scenario: &Scenario) -> Result<u64, String> {
    Ok(HhConfig::new(scenario.k, scenario.epsilon)
        .map_err(err_str)?
        .warmup_target)
}

fn quantile_config(scenario: &Scenario, warmup: u64) -> Result<QuantileConfig, String> {
    let mut config = QuantileConfig::new(scenario.k, scenario.epsilon, scenario_phi(scenario))
        .map_err(err_str)?
        .with_warmup_target(warmup);
    if let Some(g) = scenario.tuning.granularity {
        config = config.with_granularity(g);
    }
    Ok(config)
}

fn quantile_default_warmup(scenario: &Scenario) -> Result<u64, String> {
    Ok(
        QuantileConfig::new(scenario.k, scenario.epsilon, scenario_phi(scenario))
            .map_err(err_str)?
            .warmup_target,
    )
}

fn allq_config(scenario: &Scenario, warmup: u64) -> Result<AllQConfig, String> {
    Ok(AllQConfig::new(scenario.k, scenario.epsilon)
        .map_err(err_str)?
        .with_warmup_target(warmup))
}

fn allq_default_warmup(scenario: &Scenario) -> Result<u64, String> {
    Ok(AllQConfig::new(scenario.k, scenario.epsilon)
        .map_err(err_str)?
        .warmup_target)
}

fn build_counter(s: &Scenario, _warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    finish_build(
        s,
        backend,
        CounterProtocol::new(s.epsilon).map_err(err_str)?,
    )
}

fn build_hh_exact(s: &Scenario, warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    finish_build(s, backend, HhExactProtocol::new(hh_config(s, warmup)?))
}

fn build_hh_sketched(s: &Scenario, warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    finish_build(s, backend, HhSketchedProtocol::new(hh_config(s, warmup)?))
}

fn build_quantile_exact(
    s: &Scenario,
    warmup: u64,
    backend: BackendKind,
) -> Result<Tracker, String> {
    finish_build(
        s,
        backend,
        QuantileExactProtocol::new(quantile_config(s, warmup)?),
    )
}

fn build_quantile_sketched(
    s: &Scenario,
    warmup: u64,
    backend: BackendKind,
) -> Result<Tracker, String> {
    finish_build(
        s,
        backend,
        QuantileSketchedProtocol::new(quantile_config(s, warmup)?),
    )
}

fn build_allq(s: &Scenario, warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    finish_build(s, backend, AllQExactProtocol::new(allq_config(s, warmup)?))
}

fn build_cgmr(s: &Scenario, _warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    let config = CgmrConfig::new(s.k, s.epsilon)?;
    finish_build(s, backend, CgmrProtocol::new(config))
}

fn build_polling(s: &Scenario, _warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    let config = PollingConfig::new(s.k, s.epsilon)?;
    finish_build(s, backend, PollingProtocol::new(config))
}

fn build_forward_all(s: &Scenario, _warmup: u64, backend: BackendKind) -> Result<Tracker, String> {
    finish_build(s, backend, ForwardAllProtocol::new())
}

// ---------------------------------------------------------------------
// Checkpoint checks (typed queries vs the exact oracle)
// ---------------------------------------------------------------------

/// Heavy-hitter thresholds probed at checkpoints — the same canonical
/// grid the protocols' answer sets use, so checks and pinned answers
/// can never drift apart.
const HH_CHECK_PHIS: [f64; 5] = dtrack_sim::HH_PROBE_PHIS;

fn query_count(t: &mut Tracker) -> Result<u64, String> {
    t.query(Query::Count)
        .map_err(err_str)?
        .as_count()
        .ok_or_else(|| "count query returned a non-count answer".to_owned())
}

fn query_quantile(t: &mut Tracker, q: Query) -> Result<Option<u64>, String> {
    t.query(q)
        .map_err(err_str)?
        .as_quantile()
        .ok_or_else(|| "quantile query returned a non-quantile answer".to_owned())
}

fn query_rank(t: &mut Tracker, x: u64) -> Result<u64, String> {
    t.query(Query::RankLt { x })
        .map_err(err_str)?
        .as_count()
        .ok_or_else(|| "rank query returned a non-rank answer".to_owned())
}

fn query_heavy(t: &mut Tracker, phi: f64) -> Result<Vec<u64>, String> {
    match t.query(Query::HeavyHitters { phi }).map_err(err_str)? {
        Answer::HeavyHitters { items, .. } => Ok(items),
        other => Err(format!("heavy-hitter query answered {other}")),
    }
}

fn check_counter(t: &mut Tracker, oracle: &ExactOracle, s: &Scenario) -> Result<u64, String> {
    let n = oracle.total();
    let est = query_count(t)?;
    if est > n {
        return Err(format!("counter overestimates: {est} > {n}"));
    }
    // Each of the k sites can hold back one (1+ε)-factor step.
    if (est as f64) < (1.0 - s.epsilon) * n as f64 - s.k as f64 {
        return Err(format!("counter estimate {est} below (1-eps)n for n={n}"));
    }
    Ok(2)
}

fn check_hh(t: &mut Tracker, oracle: &ExactOracle, s: &Scenario) -> Result<u64, String> {
    let eps = s.epsilon;
    let m = oracle.total();
    let global_count = query_count(t)?;
    // Invariant (3) of Figure 1: the tracked count is an
    // (1−ε/3)-underestimate of m.
    if global_count > m {
        return Err(format!("tracked count {global_count} > true {m}"));
    }
    if (global_count as f64) < m as f64 * (1.0 - eps / 3.0) - 1.0 {
        return Err(format!("tracked count {global_count} too stale for m={m}"));
    }
    let mut checks = 1;
    for phi in HH_CHECK_PHIS {
        if phi <= eps {
            continue;
        }
        let reported = query_heavy(t, phi)?;
        if let Some(violation) = oracle.check_heavy_hitters(&reported, phi, eps) {
            return Err(format!("phi={phi}: {violation}"));
        }
        checks += 1;
    }
    Ok(checks)
}

fn check_quantile(t: &mut Tracker, oracle: &ExactOracle, s: &Scenario) -> Result<u64, String> {
    let phi = scenario_phi(s);
    let Some(q) = query_quantile(t, Query::TrackedQuantile)? else {
        return if oracle.total() == 0 {
            Ok(0)
        } else {
            Err("no quantile answer on a nonempty stream".to_owned())
        };
    };
    if !oracle.quantile_ok(q, phi, s.epsilon) {
        return Err(format!(
            "phi={phi}: {q} outside the ε-band (rank {} of {})",
            oracle.rank_lt(q),
            oracle.total()
        ));
    }
    Ok(1)
}

fn check_allq(t: &mut Tracker, oracle: &ExactOracle, s: &Scenario) -> Result<u64, String> {
    let eps = s.epsilon;
    let n = oracle.total();
    if n == 0 {
        return Ok(0);
    }
    let mut checks = 0;
    for phi in PROBE_PHIS {
        let q = query_quantile(t, Query::Quantile { phi })?
            .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
        if !oracle.quantile_ok(q, phi, eps) {
            return Err(format!(
                "phi={phi}: {q} outside the ε-band (rank {} of {n})",
                oracle.rank_lt(q)
            ));
        }
        checks += 1;
    }
    // Rank queries: probe at the oracle's own quantile positions so the
    // probes track the value distribution (and its drift) exactly.
    for phi in PROBE_PHIS {
        let probe = oracle.quantile(phi).expect("nonempty");
        let est = query_rank(t, probe)?;
        let truth = oracle.rank_lt(probe);
        if est.abs_diff(truth) as f64 > eps * n as f64 + 2.0 {
            return Err(format!(
                "rank_lt({probe}): {est} vs true {truth}, beyond εn = {}",
                eps * n as f64
            ));
        }
        checks += 1;
    }
    Ok(checks)
}

fn check_cgmr(t: &mut Tracker, oracle: &ExactOracle, s: &Scenario) -> Result<u64, String> {
    let eps = s.epsilon;
    let n = oracle.total();
    if n == 0 {
        return Ok(0);
    }
    let mut checks = 0;
    for phi in PROBE_PHIS {
        let q = query_quantile(t, Query::Quantile { phi })?
            .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
        if !oracle.quantile_ok(q, phi, eps) {
            return Err(format!(
                "phi={phi}: {q} outside the ε-band (rank {} of {n})",
                oracle.rank_lt(q)
            ));
        }
        let probe = oracle.quantile(phi).expect("nonempty");
        let est = query_rank(t, probe)?;
        let truth = oracle.rank_lt(probe);
        if est.abs_diff(truth) as f64 > eps * n as f64 + 2.0 {
            return Err(format!("rank_lt({probe}): {est} vs true {truth}"));
        }
        checks += 2;
    }
    Ok(checks)
}

fn check_polling(t: &mut Tracker, oracle: &ExactOracle, s: &Scenario) -> Result<u64, String> {
    let eps = s.epsilon;
    let n = oracle.total();
    if n == 0 {
        return Ok(0);
    }
    let mut checks = 0;
    for phi in PROBE_PHIS {
        let q = query_quantile(t, Query::Quantile { phi })?
            .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
        // Between polls up to εn arrivals are unaccounted on top of
        // the summaries' own εn error — the strawman's band is 2ε.
        if !oracle.quantile_ok(q, phi, 2.0 * eps) {
            return Err(format!(
                "phi={phi}: {q} outside the 2ε-band (rank {} of {n})",
                oracle.rank_lt(q)
            ));
        }
        checks += 1;
    }
    Ok(checks)
}

fn check_forward_all(t: &mut Tracker, oracle: &ExactOracle, _s: &Scenario) -> Result<u64, String> {
    let n = oracle.total();
    let total = query_count(t)?;
    if total != n {
        return Err(format!("total {total} != true {n}"));
    }
    if n == 0 {
        return Ok(1);
    }
    let mut checks = 1;
    for phi in PROBE_PHIS {
        let probe = oracle.quantile(phi).expect("nonempty");
        let est = query_rank(t, probe)?;
        if est != oracle.rank_lt(probe) {
            return Err(format!(
                "rank_lt({probe}): {est} != exact {}",
                oracle.rank_lt(probe)
            ));
        }
        let q = query_quantile(t, Query::Quantile { phi })?
            .ok_or_else(|| format!("phi={phi}: no answer on a nonempty stream"))?;
        // Same multiset ⇒ the answer must be an exact φ-quantile
        // under the rank-interval convention.
        if !oracle.quantile_ok(q, phi, 0.0) {
            return Err(format!("phi={phi}: {q} is not an exact quantile"));
        }
        checks += 2;
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::PROTOCOLS;
    use crate::scenario::{AssignmentSpec, GeneratorSpec};

    #[test]
    fn every_matrix_protocol_has_a_profile_with_matching_label() {
        for spec in PROTOCOLS {
            assert_eq!(profile(spec).label, spec.label());
        }
    }

    #[test]
    fn warmup_resolution_honors_tuning_and_policy() {
        let s = Scenario::new(
            GeneratorSpec::Uniform { universe: 1 << 20 },
            AssignmentSpec::RoundRobin,
            4,
            0.1,
            8_000,
            1,
            ProtocolSpec::HhExact,
        );
        let p = profile(s.protocol);
        // Differential: n/8.
        assert_eq!(
            resolve_warmup(p, &s, WarmupPolicy::Differential).unwrap(),
            1_000
        );
        // Meter: the protocol default (k/ε for hh).
        let default = resolve_warmup(p, &s, WarmupPolicy::ProtocolDefault).unwrap();
        assert_eq!(default, hh_default_warmup(&s).unwrap());
        // Tuning overrides both.
        let tuned = s.with_warmup(123);
        for policy in [WarmupPolicy::Differential, WarmupPolicy::ProtocolDefault] {
            assert_eq!(resolve_warmup(p, &tuned, policy).unwrap(), 123);
        }
        // No-warm-up protocols pin to 0 even when tuned.
        let counter = Scenario {
            protocol: ProtocolSpec::Counter,
            ..tuned
        };
        let cp = profile(counter.protocol);
        assert_eq!(
            resolve_warmup(cp, &counter, WarmupPolicy::Differential).unwrap(),
            0
        );
    }

    #[test]
    fn build_tracker_builds_on_both_backends() {
        let s = Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 16,
                s: 1.2,
            },
            AssignmentSpec::RoundRobin,
            3,
            0.1,
            1_000,
            1,
            ProtocolSpec::Counter,
        );
        for backend in [BackendKind::Deterministic, BackendKind::Threaded] {
            let (tracker, warmup) = build_tracker(&s, WarmupPolicy::Differential, backend).unwrap();
            assert_eq!(warmup, 0);
            assert_eq!(tracker.protocol_label(), "counter");
            tracker.finish().unwrap();
        }
    }
}
