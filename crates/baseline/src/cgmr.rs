//! The Cormode–Garofalakis–Muthukrishnan–Rastogi (SIGMOD 2005) baseline —
//! the paper's reference [7] and the prior best bound it improves.
//!
//! Each site keeps its local stream (exactly, or in a GK sketch) and
//! re-ships an equi-depth summary of everything it has seen, with rank
//! error `(ε/4)·n_j`, every time its local count grows by a `(1 + ε/4)`
//! factor. The coordinator keeps the latest summary per site and merges
//! them for queries.
//!
//! Correctness: between re-ships a site withholds less than `(ε/4)·n_j`
//! items and its last summary errs by at most `(ε/4)·n_j(1+ε/4)`, so the
//! merged rank error is below `Σ_j (ε/2 + ε²/16)·n_j < ε·n` — an
//! ε-approximate all-quantile (and hence 2ε heavy hitter) oracle at all
//! times.
//!
//! Cost: each site sends O(log_{1+ε/4} n) = O(log n / ε) summaries of
//! O(1/ε) words, giving the O(k/ε² · log n) total that Theorems 3.1/4.1
//! beat by Θ(1/ε) (up to polylog(1/ε)).

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId, PROBE_PHIS,
};
use dtrack_sketch::{EquiDepthSummary, ExactOrdered, MergedSummary, OrderStore};
use dtrack_wire::{DecodeError, WireMessage, WireReader};

/// Parameters of the CGMR baseline.
#[derive(Debug, Clone, Copy)]
pub struct CgmrConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
}

impl CgmrConfig {
    /// Validated configuration.
    pub fn new(k: u32, epsilon: f64) -> Result<Self, String> {
        if k < 2 {
            return Err(format!("need at least 2 sites, got {k}"));
        }
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(format!("epsilon must be in (0, 0.5], got {epsilon}"));
        }
        Ok(CgmrConfig { k, epsilon })
    }
}

/// Upstream message: a fresh summary of the site's entire local stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CgmrUp(pub EquiDepthSummary);

impl MessageSize for CgmrUp {
    fn size_words(&self) -> u64 {
        self.0.wire_words()
    }
    fn kind(&self) -> &'static str {
        "cgmr/summary"
    }
}

/// The baseline never sends downstream messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgmrDown {}

impl MessageSize for CgmrDown {
    fn size_words(&self) -> u64 {
        match *self {}
    }
    fn kind(&self) -> &'static str {
        match *self {}
    }
}

impl WireMessage for CgmrUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(CgmrUp(EquiDepthSummary::wire_decode(r)?))
    }
}

impl WireMessage for CgmrDown {
    fn wire_encode(&self, _out: &mut Vec<u8>) {
        match *self {}
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Err(DecodeError::Uninhabited {
            kind: "cgmr/no-down",
            offset: r.offset(),
        })
    }
}

/// A CGMR site, generic over its local ordered store.
#[derive(Debug, Clone)]
pub struct CgmrSite<S = ExactOrdered> {
    config: CgmrConfig,
    store: S,
    last_shipped: u64,
}

impl CgmrSite<ExactOrdered> {
    /// Site with exact local state.
    pub fn exact(config: CgmrConfig) -> Self {
        CgmrSite::with_store(config, ExactOrdered::new())
    }
}

impl<S: OrderStore> CgmrSite<S> {
    /// Site with a caller-provided store.
    pub fn with_store(config: CgmrConfig, store: S) -> Self {
        CgmrSite {
            config,
            store,
            last_shipped: 0,
        }
    }
}

impl<S: OrderStore> Site for CgmrSite<S> {
    type Item = u64;
    type Up = CgmrUp;
    type Down = CgmrDown;

    fn on_item(&mut self, item: u64, out: &mut Vec<CgmrUp>) {
        self.store.insert(item);
        let n = self.store.total();
        let threshold =
            ((self.last_shipped as f64) * (1.0 + self.config.epsilon / 4.0)).floor() as u64;
        if self.last_shipped == 0 || n > threshold.max(self.last_shipped) {
            let step = ((self.config.epsilon * n as f64 / 4.0).floor() as u64).max(1);
            out.push(CgmrUp(self.store.summary(step)));
            self.last_shipped = n;
        }
    }

    fn on_message(&mut self, msg: &CgmrDown, _out: &mut Vec<CgmrUp>) {
        match *msg {}
    }
}

/// The CGMR coordinator: latest summary per site, merged on demand.
#[derive(Debug, Clone)]
pub struct CgmrCoordinator {
    latest: Vec<Option<EquiDepthSummary>>,
}

impl CgmrCoordinator {
    /// Fresh coordinator for `k` sites.
    pub fn new(config: CgmrConfig) -> Self {
        CgmrCoordinator {
            latest: (0..config.k).map(|_| None).collect(),
        }
    }

    fn merged(&self) -> MergedSummary {
        MergedSummary::new(
            self.latest
                .iter()
                .filter_map(|s| s.as_ref().cloned())
                .collect(),
        )
    }

    /// Estimated total stream size (sum of last-shipped counts).
    pub fn n_estimate(&self) -> u64 {
        self.latest
            .iter()
            .filter_map(|s| s.as_ref().map(|s| s.total()))
            .sum()
    }

    /// Estimate of `rank_lt(x)`.
    pub fn rank_lt(&self, x: u64) -> u64 {
        self.merged().rank_estimate(x)
    }

    /// An ε-approximate φ-quantile.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        let m = self.merged();
        let n = m.total();
        if n == 0 {
            return None;
        }
        let target = (phi * n as f64).round() as u64;
        m.select(target)
    }

    /// Approximate φ-heavy hitters by rank differences over the merged
    /// separator candidates (the standard [7] extraction).
    pub fn heavy_hitters(&self, phi: f64, epsilon: f64) -> Vec<u64> {
        let m = self.merged();
        let n = m.total();
        if n == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<u64> = self
            .latest
            .iter()
            .flatten()
            .flat_map(|s| s.separators().iter().copied())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let thresh = (phi - epsilon) * n as f64;
        candidates
            .into_iter()
            .filter(|&x| {
                let hi = if x == u64::MAX {
                    n
                } else {
                    m.rank_estimate(x + 1)
                };
                hi.saturating_sub(m.rank_estimate(x)) as f64 >= thresh
            })
            .collect()
    }
}

impl Coordinator for CgmrCoordinator {
    type Up = CgmrUp;
    type Down = CgmrDown;

    fn on_message(&mut self, from: SiteId, msg: CgmrUp, _out: &mut Outbox<CgmrDown>) {
        if let Some(slot) = self.latest.get_mut(from.index()) {
            *slot = Some(msg.0);
        }
    }
}

/// Convenience: build a full exact-store CGMR cluster.
pub fn exact_cluster(
    config: CgmrConfig,
) -> Result<dtrack_sim::Cluster<CgmrSite, CgmrCoordinator>, dtrack_sim::SimError> {
    let sites = (0..config.k).map(|_| CgmrSite::exact(config)).collect();
    dtrack_sim::Cluster::new(sites, CgmrCoordinator::new(config))
}

/// [`Protocol`] adapter: the CGMR'05 summary-shipping baseline for the
/// [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct CgmrProtocol {
    config: CgmrConfig,
}

impl CgmrProtocol {
    /// Wrap a validated [`CgmrConfig`].
    pub fn new(config: CgmrConfig) -> Self {
        CgmrProtocol { config }
    }
}

impl Protocol for CgmrProtocol {
    type Site = CgmrSite;
    type Up = CgmrUp;
    type Down = CgmrDown;
    type Coordinator = CgmrCoordinator;

    fn label(&self) -> &'static str {
        "cgmr"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<CgmrSite>, CgmrCoordinator), String> {
        let sites = (0..k).map(|_| CgmrSite::exact(self.config)).collect();
        Ok((sites, CgmrCoordinator::new(self.config)))
    }

    fn query(&self, c: &CgmrCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Count => Ok(Answer::LengthEstimate(c.n_estimate())),
            Query::Quantile { phi } => Ok(Answer::QuantileAt {
                phi,
                value: c.quantile(phi),
            }),
            Query::RankLt { x } => Ok(Answer::RankLt {
                x,
                rank: c.rank_lt(x),
            }),
            Query::HeavyHitters { phi } => {
                let mut items = c.heavy_hitters(phi, self.config.epsilon);
                items.sort_unstable();
                Ok(Answer::HeavyHitters { phi, items })
            }
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &CgmrCoordinator) -> Result<Vec<Answer>, QueryError> {
        let mut out = vec![Answer::LengthEstimate(c.n_estimate())];
        for phi in PROBE_PHIS {
            out.push(Answer::QuantileAt {
                phi,
                value: c.quantile(phi),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtrack_workload::{Generator, Uniform};

    fn run(
        k: u32,
        epsilon: f64,
        n: u64,
        seed: u64,
    ) -> (dtrack_sim::Cluster<CgmrSite, CgmrCoordinator>, Vec<u64>) {
        let config = CgmrConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut gen = Uniform::new(1 << 40, seed);
        let mut items = Vec::with_capacity(n as usize);
        for i in 0..n {
            let x = gen.next_item();
            items.push(x);
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
        }
        (cluster, items)
    }

    #[test]
    fn quantiles_within_epsilon() {
        let epsilon = 0.1;
        let (cluster, mut items) = run(4, epsilon, 30_000, 7);
        items.sort_unstable();
        let n = items.len() as u64;
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let q = cluster.coordinator().quantile(phi).unwrap();
            let r_lo = items.partition_point(|&y| y < q) as u64;
            let r_hi = items.partition_point(|&y| y <= q) as u64;
            let target = phi * n as f64;
            let dist = if (target as u64) < r_lo {
                r_lo as f64 - target
            } else if target > r_hi as f64 {
                target - r_hi as f64
            } else {
                0.0
            };
            assert!(
                dist <= epsilon * n as f64,
                "phi {phi}: quantile {q} off by {dist}"
            );
        }
    }

    #[test]
    fn rank_estimates_within_epsilon() {
        let epsilon = 0.1;
        let (cluster, mut items) = run(3, epsilon, 20_000, 13);
        items.sort_unstable();
        let n = items.len() as u64;
        for probe in (0..(1u64 << 40)).step_by(1 << 36) {
            let truth = items.partition_point(|&y| y < probe) as u64;
            let est = cluster.coordinator().rank_lt(probe);
            assert!(
                est.abs_diff(truth) as f64 <= epsilon * n as f64,
                "probe {probe}: est {est}, truth {truth}"
            );
        }
    }

    #[test]
    fn cost_scales_quadratically_in_inverse_epsilon() {
        // Halving ε should roughly quadruple the cost (1/ε for shipping
        // frequency x 1/ε for summary size).
        let w_coarse = run(4, 0.2, 60_000, 3).0.meter().total_words();
        let w_fine = run(4, 0.05, 60_000, 3).0.meter().total_words();
        let ratio = w_fine as f64 / w_coarse as f64;
        assert!(
            ratio > 6.0,
            "expected ~16x cost for 4x smaller epsilon, got {ratio:.1}x"
        );
    }

    #[test]
    fn cost_scales_logarithmically_in_n() {
        let w1 = run(4, 0.1, 20_000, 3).0.meter().total_words();
        let w2 = run(4, 0.1, 200_000, 3).0.meter().total_words();
        assert!(w2 < w1 * 4, "not logarithmic: {w1} -> {w2}");
    }

    #[test]
    fn heavy_hitters_found() {
        let config = CgmrConfig::new(3, 0.05).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut gen = Uniform::new(1 << 30, 5);
        for i in 0..30_000u64 {
            let x = if i % 3 == 0 { 7777 } else { gen.next_item() };
            cluster.feed(SiteId((i % 3) as u32), x).unwrap();
        }
        let hh = cluster.coordinator().heavy_hitters(0.25, 0.05);
        assert!(hh.contains(&7777), "missed the 33% item: {hh:?}");
    }

    #[test]
    fn config_validation() {
        assert!(CgmrConfig::new(1, 0.1).is_err());
        assert!(CgmrConfig::new(4, 0.0).is_err());
    }
}
