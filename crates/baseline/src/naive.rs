//! Naive baselines: forward-everything and coordinator-driven polling.

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId, PROBE_PHIS,
};
use dtrack_sketch::{EquiDepthSummary, ExactOrdered, MergedSummary, OrderStore};
use dtrack_wire::{put_u64, put_u8, DecodeError, WireMessage, WireReader};

// ---------------------------------------------------------------------
// Forward-all
// ---------------------------------------------------------------------

/// Upstream message: the raw item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FwdItem(pub u64);

impl MessageSize for FwdItem {
    fn size_words(&self) -> u64 {
        2
    }
    fn kind(&self) -> &'static str {
        "fwd/item"
    }
}

/// Forward-all sends nothing downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwdDown {}

impl MessageSize for FwdDown {
    fn size_words(&self) -> u64 {
        match *self {}
    }
    fn kind(&self) -> &'static str {
        match *self {}
    }
}

impl WireMessage for FwdItem {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(FwdItem(r.u64()?))
    }
}

impl WireMessage for FwdDown {
    fn wire_encode(&self, _out: &mut Vec<u8>) {
        match *self {}
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Err(DecodeError::Uninhabited {
            kind: "fwd/no-down",
            offset: r.offset(),
        })
    }
}

/// A site that forwards every arrival — exact tracking at cost n words.
///
/// The paper: "we assume that n is sufficiently large (compared with k and
/// 1/ε); if n is too small, a naive solution that transmits every arrival
/// to the coordinator would be the best." Experiment E14 locates that
/// crossover empirically.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardAllSite;

impl Site for ForwardAllSite {
    type Item = u64;
    type Up = FwdItem;
    type Down = FwdDown;

    fn on_item(&mut self, item: u64, out: &mut Vec<FwdItem>) {
        out.push(FwdItem(item));
    }

    fn on_message(&mut self, msg: &FwdDown, _out: &mut Vec<FwdItem>) {
        match *msg {}
    }
}

/// Coordinator with the exact global multiset.
#[derive(Debug, Clone, Default)]
pub struct ForwardAllCoordinator {
    store: ExactOrdered,
}

impl ForwardAllCoordinator {
    /// Fresh coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact stream size.
    pub fn total(&self) -> u64 {
        self.store.len()
    }

    /// Exact `rank_lt(x)`.
    pub fn rank_lt(&self, x: u64) -> u64 {
        self.store.rank_lt(x)
    }

    /// Exact φ-quantile.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        let n = self.store.len();
        if n == 0 {
            return None;
        }
        let target = ((phi * n as f64).ceil() as u64).clamp(1, n);
        self.store.select(target - 1)
    }
}

impl Coordinator for ForwardAllCoordinator {
    type Up = FwdItem;
    type Down = FwdDown;

    fn on_message(&mut self, _from: SiteId, msg: FwdItem, _out: &mut Outbox<FwdDown>) {
        self.store.insert(msg.0);
    }
}

/// Convenience: build a forward-all cluster of `k` sites.
pub fn forward_all_cluster(
    k: u32,
) -> Result<dtrack_sim::Cluster<ForwardAllSite, ForwardAllCoordinator>, dtrack_sim::SimError> {
    let sites = (0..k).map(|_| ForwardAllSite).collect();
    dtrack_sim::Cluster::new(sites, ForwardAllCoordinator::new())
}

/// [`Protocol`] adapter: the forward-every-arrival baseline for the
/// [`dtrack_sim::Tracker`] facade. Exact answers at n words.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardAllProtocol;

impl ForwardAllProtocol {
    /// The baseline has no parameters.
    pub fn new() -> Self {
        ForwardAllProtocol
    }
}

impl Protocol for ForwardAllProtocol {
    type Site = ForwardAllSite;
    type Up = FwdItem;
    type Down = FwdDown;
    type Coordinator = ForwardAllCoordinator;

    fn label(&self) -> &'static str {
        "forward-all"
    }

    fn build(&self, k: u32) -> Result<(Vec<ForwardAllSite>, ForwardAllCoordinator), String> {
        let sites = (0..k).map(|_| ForwardAllSite).collect();
        Ok((sites, ForwardAllCoordinator::new()))
    }

    fn query(&self, c: &ForwardAllCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Count => Ok(Answer::Total(c.total())),
            Query::Quantile { phi } => Ok(Answer::QuantileAt {
                phi,
                value: c.quantile(phi),
            }),
            Query::RankLt { x } => Ok(Answer::RankLt {
                x,
                rank: c.rank_lt(x),
            }),
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &ForwardAllCoordinator) -> Result<Vec<Answer>, QueryError> {
        let mut out = vec![Answer::Total(c.total())];
        for phi in PROBE_PHIS {
            out.push(Answer::QuantileAt {
                phi,
                value: c.quantile(phi),
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Periodic polling
// ---------------------------------------------------------------------

/// Parameters of the polling baseline.
#[derive(Debug, Clone, Copy)]
pub struct PollingConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
}

impl PollingConfig {
    /// Validated configuration.
    pub fn new(k: u32, epsilon: f64) -> Result<Self, String> {
        if k < 2 {
            return Err(format!("need at least 2 sites, got {k}"));
        }
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(format!("epsilon must be in (0, 0.5], got {epsilon}"));
        }
        Ok(PollingConfig { k, epsilon })
    }
}

/// Upstream messages of the polling baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum PollUp {
    /// Counter report: local count grew by `delta`.
    CountDelta(u64),
    /// Reply to a poll: a summary of the whole local stream.
    Summary(EquiDepthSummary),
}

impl MessageSize for PollUp {
    fn size_words(&self) -> u64 {
        match self {
            PollUp::CountDelta(_) => 1,
            PollUp::Summary(s) => s.wire_words(),
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            PollUp::CountDelta(_) => "poll/count-delta",
            PollUp::Summary(_) => "poll/summary",
        }
    }
}

/// Downstream message: a poll request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollRequest;

impl MessageSize for PollRequest {
    fn size_words(&self) -> u64 {
        1
    }
    fn kind(&self) -> &'static str {
        "poll/request"
    }
}

impl WireMessage for PollUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            PollUp::CountDelta(delta) => {
                put_u8(out, 0);
                put_u64(out, *delta);
            }
            PollUp::Summary(s) => {
                put_u8(out, 1);
                s.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("PollUp")?;
        match tag {
            0 => Ok(PollUp::CountDelta(r.u64()?)),
            1 => Ok(PollUp::Summary(EquiDepthSummary::wire_decode(r)?)),
            tag => Err(DecodeError::BadTag {
                context: "PollUp",
                tag,
                offset,
            }),
        }
    }
}

impl WireMessage for PollRequest {
    fn wire_encode(&self, _out: &mut Vec<u8>) {}
    fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(PollRequest)
    }
}

/// A polling-baseline site: counter reports plus poll replies.
#[derive(Debug, Clone)]
pub struct PollingSite<S = ExactOrdered> {
    config: PollingConfig,
    store: S,
    reported: u64,
}

impl PollingSite<ExactOrdered> {
    /// Site with exact local state.
    pub fn exact(config: PollingConfig) -> Self {
        PollingSite {
            config,
            store: ExactOrdered::new(),
            reported: 0,
        }
    }
}

impl<S: OrderStore> Site for PollingSite<S> {
    type Item = u64;
    type Up = PollUp;
    type Down = PollRequest;

    fn on_item(&mut self, item: u64, out: &mut Vec<PollUp>) {
        self.store.insert(item);
        let n = self.store.total();
        let threshold = ((self.reported as f64) * (1.0 + self.config.epsilon / 2.0)).floor() as u64;
        if self.reported == 0 || n > threshold.max(self.reported) {
            out.push(PollUp::CountDelta(n - self.reported));
            self.reported = n;
        }
    }

    fn on_message(&mut self, _msg: &PollRequest, out: &mut Vec<PollUp>) {
        let n = self.store.total();
        let step = ((self.config.epsilon * n as f64 / 4.0).floor() as u64).max(1);
        out.push(PollUp::Summary(self.store.summary(step)));
    }
}

/// The polling coordinator: re-collects all summaries every (1+ε) growth.
#[derive(Debug, Clone)]
pub struct PollingCoordinator {
    config: PollingConfig,
    n_estimate: u64,
    last_polled_at: u64,
    latest: Vec<Option<EquiDepthSummary>>,
    polls: u64,
}

impl PollingCoordinator {
    /// Fresh coordinator.
    pub fn new(config: PollingConfig) -> Self {
        PollingCoordinator {
            config,
            n_estimate: 0,
            last_polled_at: 0,
            latest: (0..config.k).map(|_| None).collect(),
            polls: 0,
        }
    }

    /// Number of full polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    fn merged(&self) -> MergedSummary {
        MergedSummary::new(self.latest.iter().flatten().cloned().collect())
    }

    /// An ε-approximate φ-quantile from the last poll.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        let m = self.merged();
        let n = m.total();
        if n == 0 {
            return None;
        }
        m.select((phi * n as f64).round() as u64)
    }

    /// Rank estimate from the last poll.
    pub fn rank_lt(&self, x: u64) -> u64 {
        self.merged().rank_estimate(x)
    }
}

impl Coordinator for PollingCoordinator {
    type Up = PollUp;
    type Down = PollRequest;

    fn on_message(&mut self, from: SiteId, msg: PollUp, out: &mut Outbox<PollRequest>) {
        match msg {
            PollUp::CountDelta(d) => {
                self.n_estimate += d;
                let due = (self.last_polled_at as f64) * (1.0 + self.config.epsilon);
                if self.last_polled_at == 0 || self.n_estimate as f64 > due {
                    self.last_polled_at = self.n_estimate;
                    self.polls += 1;
                    out.broadcast(PollRequest);
                }
            }
            PollUp::Summary(s) => {
                if let Some(slot) = self.latest.get_mut(from.index()) {
                    *slot = Some(s);
                }
            }
        }
    }
}

/// Convenience: build a polling cluster.
pub fn polling_cluster(
    config: PollingConfig,
) -> Result<dtrack_sim::Cluster<PollingSite, PollingCoordinator>, dtrack_sim::SimError> {
    let sites = (0..config.k).map(|_| PollingSite::exact(config)).collect();
    dtrack_sim::Cluster::new(sites, PollingCoordinator::new(config))
}

/// [`Protocol`] adapter: the periodic-polling strawman for the
/// [`dtrack_sim::Tracker`] facade. Answers carry a 2ε band (up to εn
/// arrivals are unaccounted between polls).
#[derive(Debug, Clone, Copy)]
pub struct PollingProtocol {
    config: PollingConfig,
}

impl PollingProtocol {
    /// Wrap a validated [`PollingConfig`].
    pub fn new(config: PollingConfig) -> Self {
        PollingProtocol { config }
    }
}

impl Protocol for PollingProtocol {
    type Site = PollingSite;
    type Up = PollUp;
    type Down = PollRequest;
    type Coordinator = PollingCoordinator;

    fn label(&self) -> &'static str {
        "polling"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<PollingSite>, PollingCoordinator), String> {
        let sites = (0..k).map(|_| PollingSite::exact(self.config)).collect();
        Ok((sites, PollingCoordinator::new(self.config)))
    }

    fn query(&self, c: &PollingCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Quantile { phi } => Ok(Answer::QuantileAt {
                phi,
                value: c.quantile(phi),
            }),
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &PollingCoordinator) -> Result<Vec<Answer>, QueryError> {
        Ok(PROBE_PHIS
            .iter()
            .map(|&phi| Answer::QuantileAt {
                phi,
                value: c.quantile(phi),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtrack_workload::{Generator, Uniform};

    #[test]
    fn forward_all_is_exact() {
        let mut cluster = forward_all_cluster(3).unwrap();
        let mut gen = Uniform::new(10_000, 3);
        let mut items = Vec::new();
        for i in 0..5_000u64 {
            let x = gen.next_item();
            items.push(x);
            cluster.feed(SiteId((i % 3) as u32), x).unwrap();
        }
        items.sort_unstable();
        let coord = cluster.coordinator();
        assert_eq!(coord.total(), 5_000);
        assert_eq!(coord.quantile(0.5), Some(items[2499]));
        assert_eq!(
            coord.rank_lt(items[1000]),
            items.partition_point(|&y| y < items[1000]) as u64
        );
        // Cost is exactly 2 words per item.
        assert_eq!(cluster.meter().total_words(), 10_000);
    }

    #[test]
    fn polling_tracks_quantiles() {
        let epsilon = 0.1;
        let config = PollingConfig::new(4, epsilon).unwrap();
        let mut cluster = polling_cluster(config).unwrap();
        let mut gen = Uniform::new(1 << 40, 9);
        let mut items = Vec::new();
        for i in 0..30_000u64 {
            let x = gen.next_item();
            items.push(x);
            cluster.feed(SiteId((i % 4) as u32), x).unwrap();
        }
        items.sort_unstable();
        let n = items.len() as u64;
        let q = cluster.coordinator().quantile(0.5).unwrap();
        let r = items.partition_point(|&y| y < q) as u64;
        assert!(
            (r as f64 - 0.5 * n as f64).abs() <= 2.0 * epsilon * n as f64,
            "median rank {r} of {n}"
        );
        assert!(cluster.coordinator().polls() > 0);
    }

    #[test]
    fn polling_costs_more_than_cgmr_style_push() {
        // The poll round-trips cost strictly more than pure pushing at
        // the same accuracy; this is the motivation for "push" the paper
        // cites. (Loose check: polling cost > 0 and grows with n.)
        let config = PollingConfig::new(4, 0.1).unwrap();
        let run = |n: u64| {
            let mut cluster = polling_cluster(config).unwrap();
            let mut gen = Uniform::new(1 << 30, 4);
            for i in 0..n {
                cluster
                    .feed(SiteId((i % 4) as u32), gen.next_item())
                    .unwrap();
            }
            cluster.meter().total_words()
        };
        let w1 = run(10_000);
        let w2 = run(100_000);
        assert!(w2 > w1);
        assert!(w2 < w1 * 6, "polling should still be logarithmic in n");
    }
}
