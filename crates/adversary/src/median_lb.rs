//! §3.2 — the input sequence under which the median changes
//! Ω(log n / ε) times.
//!
//! The paper's construction uses a two-value universe {0, 1}; at the start
//! of round `i` the lighter value has frequency `(0.5 − 2ε)·m_i` and the
//! heavier `(0.5 + 2ε)·m_i`. Inserting `4ε/(0.5 − 2ε) · m_i` copies of the
//! lighter value swaps the two sides and moves the median across the
//! boundary; there are Ω(log n / ε) rounds.
//!
//! Because our protocols assume (near-)distinct items via symbolic
//! perturbation, the construction uses two *clusters* of distinct values —
//! `[0, 2^32)` and `[2^32, 2^33)` — rather than two literal values; the
//! median flips across the cluster boundary exactly as in the paper.

/// The §3.2 construction.
#[derive(Debug, Clone)]
pub struct MedianLowerBound {
    /// The approximation error ε.
    pub epsilon: f64,
    /// The generated items.
    pub items: Vec<u64>,
    /// Number of rounds generated.
    pub rounds: u64,
}

/// Boundary between the low and high clusters.
pub const CLUSTER_BOUNDARY: u64 = 1 << 32;

impl MedianLowerBound {
    /// Build the construction, generating rounds until `n_target` items.
    ///
    /// # Panics
    /// Panics unless `ε < 1/8` (the construction needs 0.5 − 2ε bounded
    /// away from both 0 and 0.5).
    pub fn construct(epsilon: f64, n_target: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.125,
            "construction needs 0 < ε < 1/8, got {epsilon}"
        );
        // Unique values per cluster, assigned sequentially.
        let mut next_low = 0u64;
        let mut next_high = CLUSTER_BOUNDARY;
        let mut low_val = || {
            let v = next_low;
            next_low += 1;
            v
        };
        let mut high_val = || {
            let v = next_high;
            next_high += 1;
            v
        };

        // Initial state, round 0: low cluster is the light one at
        // (0.5 − 2ε)·m0, high at (0.5 + 2ε)·m0.
        let m0 = (64.0 / epsilon).ceil() as u64;
        let light0 = ((0.5 - 2.0 * epsilon) * m0 as f64).round() as u64;
        let heavy0 = m0 - light0;
        let mut items = Vec::new();
        for _ in 0..light0 {
            items.push(low_val());
        }
        for _ in 0..heavy0 {
            items.push(high_val());
        }
        let mut m_i = items.len() as f64;
        let mut light_is_low = true;
        let mut rounds = 0u64;
        while (items.len() as u64) < n_target {
            let copies = ((4.0 * epsilon / (0.5 - 2.0 * epsilon)) * m_i).ceil() as u64;
            if copies == 0 {
                break;
            }
            for _ in 0..copies {
                items.push(if light_is_low { low_val() } else { high_val() });
            }
            m_i += copies as f64;
            light_is_low = !light_is_low;
            rounds += 1;
        }
        MedianLowerBound {
            epsilon,
            items,
            rounds,
        }
    }

    /// Count, by exact simulation, how many times the true median crosses
    /// the cluster boundary.
    pub fn count_median_flips(&self) -> u64 {
        let mut low = 0u64;
        let mut high = 0u64;
        let mut flips = 0u64;
        let mut median_low: Option<bool> = None;
        for &x in &self.items {
            if x < CLUSTER_BOUNDARY {
                low += 1;
            } else {
                high += 1;
            }
            let is_low = low > high; // median side (strict majority)
            if low != high {
                if let Some(prev) = median_low {
                    if prev != is_low {
                        flips += 1;
                    }
                }
                median_low = Some(is_low);
            }
        }
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_flips_every_round() {
        let lb = MedianLowerBound::construct(0.05, 500_000);
        assert!(lb.rounds > 5);
        let flips = lb.count_median_flips();
        // One flip per round, up to rounding at the boundary.
        assert!(
            flips as f64 >= lb.rounds as f64 * 0.8,
            "{flips} flips for {} rounds",
            lb.rounds
        );
    }

    #[test]
    fn flips_scale_like_log_n() {
        let small = MedianLowerBound::construct(0.05, 50_000).count_median_flips();
        let large = MedianLowerBound::construct(0.05, 5_000_000).count_median_flips();
        let ratio = large as f64 / small as f64;
        assert!(
            (1.2..6.0).contains(&ratio),
            "flip growth {ratio} not log-like ({small} -> {large})"
        );
    }

    #[test]
    fn smaller_epsilon_more_flips() {
        let loose = MedianLowerBound::construct(0.1, 1_000_000).count_median_flips();
        let tight = MedianLowerBound::construct(0.02, 1_000_000).count_median_flips();
        assert!(
            tight > loose * 2,
            "1/ε scaling violated: {loose} vs {tight}"
        );
    }

    #[test]
    fn items_are_distinct() {
        let lb = MedianLowerBound::construct(0.1, 10_000);
        let mut sorted = lb.items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lb.items.len(), "values must be distinct");
    }

    #[test]
    #[should_panic(expected = "construction needs")]
    fn epsilon_bound_enforced() {
        MedianLowerBound::construct(0.2, 1000);
    }
}
