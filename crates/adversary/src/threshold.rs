//! Lemma 2.3 — the adversary that forces Ω(k) messages per heavy-hitter
//! change from any deterministic protocol.
//!
//! The proof's adversary knows every site's trigger threshold (legitimate
//! against a deterministic algorithm: the thresholds are a function of the
//! input so far). Given `B = β·m_i` copies of a rising item to place, it
//! repeatedly finds a site whose threshold is at most `2B/k` — one must
//! exist, otherwise placing `threshold_j − 1` copies everywhere would hide
//! the change entirely, contradicting correctness — and sends `2B/k`
//! copies there, forcing at least one message. This repeats `Ω(k)` times.
//!
//! [`ThresholdAdversary`] implements exactly that strategy against our own
//! §2.1 protocol via [`HhSite::remaining_until_message`].

use dtrack_core::hh::{ExactHhSite, HhCoordinator};
use dtrack_sim::{Cluster, SimError, SiteId};

/// Drives a heavy-hitter cluster with the Lemma 2.3 placement strategy.
#[derive(Debug)]
pub struct ThresholdAdversary;

/// Outcome of one forced change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedChange {
    /// Messages exchanged while the change was delivered.
    pub messages: u64,
    /// Words exchanged while the change was delivered.
    pub words: u64,
    /// How many distinct placement steps the adversary used.
    pub placements: u64,
}

impl ThresholdAdversary {
    /// Deliver `copies` arrivals of `item`, always targeting the site with
    /// the smallest remaining trigger threshold, in chunks of `2·copies/k`.
    /// Returns the communication the protocol was forced to spend.
    pub fn deliver(
        cluster: &mut Cluster<ExactHhSite, HhCoordinator>,
        item: u64,
        copies: u64,
    ) -> Result<ForcedChange, SimError> {
        let k = cluster.num_sites() as u64;
        let before_msgs = cluster.meter().total_messages();
        let before_words = cluster.meter().total_words();
        let chunk = (2 * copies / k).max(1);
        let mut delivered = 0u64;
        let mut placements = 0u64;
        while delivered < copies {
            // The site currently closest to a trigger.
            let target = (0..cluster.num_sites())
                .map(SiteId)
                .min_by_key(|&s| {
                    cluster
                        .site(s)
                        .map(|site| site.remaining_until_message(item))
                        .unwrap_or(u64::MAX)
                })
                .expect("cluster has sites");
            let send = chunk.min(copies - delivered);
            for _ in 0..send {
                cluster.feed(target, item)?;
            }
            delivered += send;
            placements += 1;
        }
        Ok(ForcedChange {
            messages: cluster.meter().total_messages() - before_msgs,
            words: cluster.meter().total_words() - before_words,
            placements,
        })
    }

    /// Feed the setup phase of a lower-bound construction round-robin.
    pub fn feed_setup(
        cluster: &mut Cluster<ExactHhSite, HhCoordinator>,
        setup: &[u64],
    ) -> Result<(), SimError> {
        let k = cluster.num_sites();
        for (i, &x) in setup.iter().enumerate() {
            cluster.feed(SiteId((i % k as usize) as u32), x)?;
        }
        Ok(())
    }

    /// Feed `count` unique chaff items round-robin, starting at
    /// `start_value`. Returns the next unused chaff value.
    pub fn feed_chaff(
        cluster: &mut Cluster<ExactHhSite, HhCoordinator>,
        count: u64,
        start_value: u64,
    ) -> Result<u64, SimError> {
        let k = cluster.num_sites() as u64;
        for i in 0..count {
            cluster.feed(SiteId((i % k) as u32), start_value + i)?;
        }
        Ok(start_value + count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hh_lb::HhLowerBound;
    use dtrack_core::hh::{exact_cluster, HhConfig};

    #[test]
    fn adversary_forces_omega_k_messages_per_change() {
        let phi = 0.3;
        let epsilon = 0.05;
        for k in [4u32, 8, 16] {
            let lb = HhLowerBound::construct(phi, epsilon, 400_000);
            let config = HhConfig::new(k, epsilon).unwrap();
            let mut cluster = exact_cluster(config).unwrap();
            ThresholdAdversary::feed_setup(&mut cluster, &lb.setup).unwrap();
            let mut total_msgs = 0u64;
            let mut events = 0u64;
            let mut chaff_v = crate::hh_lb::CHAFF_BASE + 3_000_000_000;
            for round in lb.rounds.iter().take(4) {
                for e in &round.rises {
                    let forced =
                        ThresholdAdversary::deliver(&mut cluster, e.item, e.copies).unwrap();
                    total_msgs += forced.messages;
                    events += 1;
                }
                chaff_v =
                    ThresholdAdversary::feed_chaff(&mut cluster, round.chaff, chaff_v).unwrap();
            }
            let per_change = total_msgs as f64 / events as f64;
            // Ω(k): at least a constant fraction of k messages per change.
            assert!(
                per_change >= k as f64 / 4.0,
                "k={k}: only {per_change:.1} messages per change"
            );
        }
    }

    #[test]
    fn protocol_stays_correct_under_adversary() {
        // The adversary maximizes cost but must not break correctness.
        let phi = 0.3;
        let epsilon = 0.05;
        let lb = HhLowerBound::construct(phi, epsilon, 300_000);
        let config = HhConfig::new(6, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = dtrack_core::ExactOracle::new();
        for &x in &lb.setup {
            oracle.observe(x);
        }
        ThresholdAdversary::feed_setup(&mut cluster, &lb.setup).unwrap();
        let mut chaff_v = crate::hh_lb::CHAFF_BASE + 4_000_000_000;
        for round in lb.rounds.iter().take(3) {
            for e in &round.rises {
                for _ in 0..e.copies {
                    oracle.observe(e.item);
                }
                ThresholdAdversary::deliver(&mut cluster, e.item, e.copies).unwrap();
                let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
                if let Some(v) = oracle.check_heavy_hitters(&reported, phi, epsilon) {
                    panic!("correctness violated under adversary: {v}");
                }
            }
            for i in 0..round.chaff {
                oracle.observe(chaff_v + i);
            }
            chaff_v = ThresholdAdversary::feed_chaff(&mut cluster, round.chaff, chaff_v).unwrap();
        }
    }

    #[test]
    fn placements_scale_with_k() {
        let lb = HhLowerBound::construct(0.3, 0.05, 200_000);
        let config = HhConfig::new(12, 0.05).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        ThresholdAdversary::feed_setup(&mut cluster, &lb.setup).unwrap();
        let e = lb.rounds[0].rises[0];
        let forced = ThresholdAdversary::deliver(&mut cluster, e.item, e.copies).unwrap();
        // chunk = 2B/k  =>  ~k/2 placements.
        assert!(forced.placements >= 5, "expected ~k/2 placements");
    }
}
