//! Lemma 2.2 — the input sequence under which the heavy-hitter set changes
//! Ω(log n / ε) times.
//!
//! Two groups of `l = ⌊1/(2φ − ε′)⌋` items each (ε′ = 2ε). At the start of
//! round `i` every item of group `b = i mod 2` has frequency `φ·m_i` and
//! every item of the other group `(φ − ε′)·m_i`. During the round, `β·m_i`
//! copies of each light-group item arrive (β = ε′(2φ−ε′)/(φ−ε′)), lifting
//! them all from below `(φ−ε′)|A|` to `φ|A|` — one mandatory heavy-hitter
//! change each — and multiplying the stream size by `φ/(φ−ε′)`. The number
//! of rounds until `n` items have arrived is Θ(log n), so the total number
//! of changes is `l · Θ(log n) = Ω(log n / ε)`.
//!
//! Implementation note: when `l·(2φ−ε′) < 1` the two groups do not fill
//! the stream, so each round also appends *chaff* — unique one-off values
//! that carry the leftover mass without ever approaching the heavy-hitter
//! threshold. The paper elides this by treating `1/(2φ−ε′)` as an integer.

/// One forced change: `copies` arrivals of `item`, during which the item
/// must transition from non-heavy to heavy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiseEvent {
    /// The rising item.
    pub item: u64,
    /// How many copies arrive during the transition window.
    pub copies: u64,
}

/// One round of the construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// The light-group items rising to heavy, in order.
    pub rises: Vec<RiseEvent>,
    /// Unique filler items appended after the rises.
    pub chaff: u64,
}

/// First value used for chaff items (group items live in `0..2l`).
pub const CHAFF_BASE: u64 = 1 << 40;

/// The Lemma 2.2 construction.
#[derive(Debug, Clone)]
pub struct HhLowerBound {
    /// The heavy-hitter threshold φ (> 3ε per the lemma).
    pub phi: f64,
    /// The approximation error ε.
    pub epsilon: f64,
    /// Items that set up the initial configuration, in arrival order.
    pub setup: Vec<u64>,
    /// The rounds.
    pub rounds: Vec<Round>,
}

impl HhLowerBound {
    /// Build the construction, generating rounds until the total stream
    /// length reaches `n_target`.
    ///
    /// # Panics
    /// Panics unless `φ > 3ε` (the lemma's requirement) and both are in
    /// range.
    pub fn construct(phi: f64, epsilon: f64, n_target: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 0.2, "epsilon out of range");
        assert!(
            phi > 3.0 * epsilon && phi <= 0.5,
            "lemma requires 3ε < φ <= 0.5"
        );
        let eps2 = 2.0 * epsilon; // the lemma's ε′
        let l = (1.0 / (2.0 * phi - eps2)).floor().max(1.0) as u64;
        let group0: Vec<u64> = (0..l).collect();
        let group1: Vec<u64> = (l..2 * l).collect();
        let mut next_chaff = CHAFF_BASE;

        // Initial state for round 0 (b = 0): group0 at φ·m0, group1 at
        // (φ−ε′)·m0, chaff filling the remainder. m0 is large enough that
        // integer rounding is negligible.
        let m0 = ((l as f64 + 1.0) * 64.0 / (phi - eps2)).ceil() as u64;
        let mut heavy = (phi * m0 as f64).round() as u64; // per heavy item
        let mut light = ((phi - eps2) * m0 as f64).round() as u64; // per light item
        let body = l * (heavy + light);
        let chaff0 = m0.saturating_sub(body);
        let mut setup = Vec::with_capacity(m0 as usize);
        let max_c = heavy.max(light);
        for c in 0..max_c {
            for &t in &group0 {
                if c < heavy {
                    setup.push(t);
                }
            }
            for &t in &group1 {
                if c < light {
                    setup.push(t);
                }
            }
        }
        for _ in 0..chaff0 {
            setup.push(next_chaff);
            next_chaff += 1;
        }
        let mut m_cur = setup.len() as u64;
        let mut rounds = Vec::new();
        let mut b = 0usize;
        let mut total = m_cur;
        while total < n_target {
            // Solve the round targets from the current exact counts, so
            // rounding never accumulates: the old heavy count becomes the
            // new light level, and the stream grows to m_next = heavy/(φ−ε′).
            let m_next = (heavy as f64 / (phi - eps2)).round() as u64;
            let copies = ((phi * m_next as f64) - light as f64).round().max(1.0) as u64;
            let chaff = m_next.saturating_sub(m_cur).saturating_sub(l * copies);
            let light_group = if b == 0 { &group1 } else { &group0 };
            let rises: Vec<RiseEvent> = light_group
                .iter()
                .map(|&t| RiseEvent { item: t, copies })
                .collect();
            rounds.push(Round { rises, chaff });
            total += l * copies + chaff;
            let new_heavy = light + copies;
            light = heavy;
            heavy = new_heavy;
            m_cur = m_next;
            b ^= 1;
        }
        HhLowerBound {
            phi,
            epsilon,
            setup,
            rounds,
        }
    }

    /// Total number of items across setup and all rounds.
    pub fn total_items(&self) -> u64 {
        self.setup.len() as u64
            + self
                .rounds
                .iter()
                .map(|r| r.chaff + r.rises.iter().map(|e| e.copies).sum::<u64>())
                .sum::<u64>()
    }

    /// Total number of forced heavy-hitter changes (one per rise event).
    pub fn forced_changes(&self) -> u64 {
        self.rounds.iter().map(|r| r.rises.len() as u64).sum()
    }

    /// Flatten the construction into a plain item sequence.
    pub fn flatten(&self) -> Vec<u64> {
        let mut out = self.setup.clone();
        let mut next_chaff = CHAFF_BASE + 1_000_000_000;
        for round in &self.rounds {
            for e in &round.rises {
                out.extend(std::iter::repeat_n(e.item, e.copies as usize));
            }
            for _ in 0..round.chaff {
                out.push(next_chaff);
                next_chaff += 1;
            }
        }
        out
    }

    /// Count, by exact simulation, how many times some item's frequency
    /// ratio crosses from at-or-below `φ − ε` to at-or-above `φ` — the
    /// changes any correct tracker must signal.
    pub fn count_changes(&self) -> u64 {
        use dtrack_hash::FxHashMap;
        let mut freq: FxHashMap<u64, u64> = FxHashMap::default();
        let mut low: FxHashMap<u64, bool> = FxHashMap::default();
        let mut n = 0u64;
        let mut changes = 0u64;
        for x in self.flatten() {
            n += 1;
            let f = freq.entry(x).or_insert(0);
            *f += 1;
            let ratio = *f as f64 / n as f64;
            let was_low = low.entry(x).or_insert(true);
            if *was_low && ratio >= self.phi {
                changes += 1;
                *was_low = false;
            } else if !*was_low && ratio <= self.phi - self.epsilon {
                *was_low = true;
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_parameters() {
        let lb = HhLowerBound::construct(0.3, 0.05, 200_000);
        assert!(!lb.setup.is_empty());
        assert!(lb.rounds.len() > 3, "expected several rounds");
        // Every round lifts the whole light group.
        let l = (1.0f64 / (2.0 * 0.3 - 0.1)).floor() as usize;
        for round in &lb.rounds {
            assert_eq!(round.rises.len(), l);
        }
    }

    #[test]
    fn invariant_holds_at_round_boundaries() {
        // After setup and after each round, heavy items sit at ~φ·m and
        // light items at ~(φ−ε′)·m.
        use std::collections::HashMap;
        let phi = 0.3;
        let eps = 0.05;
        let lb = HhLowerBound::construct(phi, eps, 400_000);
        let mut freq: HashMap<u64, u64> = HashMap::new();
        let mut n = 0u64;
        let check = |freq: &HashMap<u64, u64>, n: u64, ctx: &str| {
            let ratios: Vec<f64> = (0..2)
                .map(|t| freq.get(&(t as u64)).copied().unwrap_or(0) as f64 / n as f64)
                .collect();
            for r in ratios {
                let near_heavy = (r - phi).abs() < 0.02;
                let near_light = (r - (phi - 2.0 * eps)).abs() < 0.02;
                assert!(
                    near_heavy || near_light,
                    "{ctx}: group ratio {r} matches neither level"
                );
            }
        };
        for &x in &lb.setup {
            *freq.entry(x).or_insert(0) += 1;
            n += 1;
        }
        check(&freq, n, "after setup");
        let mut chaff_v = CHAFF_BASE + 2_000_000_000;
        for (i, round) in lb.rounds.iter().enumerate().take(6) {
            for e in &round.rises {
                *freq.entry(e.item).or_insert(0) += e.copies;
                n += e.copies;
            }
            for _ in 0..round.chaff {
                *freq.entry(chaff_v).or_insert(0) += 1;
                chaff_v += 1;
                n += 1;
            }
            check(&freq, n, &format!("after round {i}"));
        }
    }

    #[test]
    fn changes_scale_like_log_n_over_eps() {
        let eps = 0.05;
        let small = HhLowerBound::construct(0.3, eps, 50_000).count_changes();
        let large = HhLowerBound::construct(0.3, eps, 5_000_000).count_changes();
        assert!(large > small, "more items must force more changes");
        let ratio = large as f64 / small as f64;
        assert!(
            (1.2..8.0).contains(&ratio),
            "change growth {ratio} not log-like ({small} -> {large})"
        );
    }

    #[test]
    fn smaller_epsilon_forces_more_changes() {
        let loose = HhLowerBound::construct(0.3, 0.08, 1_000_000).count_changes();
        let tight = HhLowerBound::construct(0.3, 0.02, 1_000_000).count_changes();
        assert!(
            tight as f64 > loose as f64 * 1.5,
            "1/ε scaling violated: {loose} vs {tight}"
        );
    }

    #[test]
    fn simulated_changes_match_forced_changes_roughly() {
        let lb = HhLowerBound::construct(0.25, 0.04, 500_000);
        let forced = lb.forced_changes();
        let counted = lb.count_changes();
        assert!(
            counted as f64 >= forced as f64 * 0.8,
            "counted {counted} << forced {forced}"
        );
    }

    #[test]
    #[should_panic(expected = "lemma requires")]
    fn phi_must_exceed_3eps() {
        HhLowerBound::construct(0.1, 0.05, 1000);
    }
}
