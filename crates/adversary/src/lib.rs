//! # dtrack-adversary — the paper's lower-bound constructions
//!
//! The matching lower bounds (Theorems 2.4 and 3.2) are constructive:
//! Lemma 2.2 builds an input sequence under which the heavy-hitter set
//! changes Ω(log n / ε) times, Lemma 2.3 an adversary that forces Ω(k)
//! messages per change from *any* deterministic protocol, and §3.2 the
//! analogous two-value construction for the median. This crate implements
//! all three so the experiment harness can demonstrate the Ω(k/ε · log n)
//! bound empirically against our own protocol.

pub mod hh_lb;
pub mod median_lb;
pub mod threshold;

pub use hh_lb::{HhLowerBound, RiseEvent};
pub use median_lb::MedianLowerBound;
pub use threshold::ThresholdAdversary;
