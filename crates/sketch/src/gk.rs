//! Greenwald–Khanna ε-approximate quantile summary (the paper's citation
//! [18]).
//!
//! Maintains a sorted list of tuples `(v, g, Δ)` over a stream of n items
//! such that for every tuple `g + Δ <= ⌊2εn⌋`, which implies any rank query
//! can be answered within `εn`. Space is O((1/ε)·log(εn)) — exactly the
//! per-site space the paper quotes for the small-space quantile tracker
//! (§3.1 "Implementing with small space").
//!
//! Rank convention: `rank(x)` estimates `|{a : a <= x}|`.

use crate::summary::EquiDepthSummary;

#[derive(Debug, Clone, Copy)]
struct Tuple {
    v: u64,
    g: u64,
    delta: u64,
}

/// The Greenwald–Khanna summary.
#[derive(Debug, Clone)]
pub struct GreenwaldKhanna {
    epsilon: f64,
    n: u64,
    tuples: Vec<Tuple>,
    since_compress: u64,
    compress_every: u64,
}

impl GreenwaldKhanna {
    /// Summary with rank error `epsilon * n`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in (0, 0.5].
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 0.5,
            "epsilon must be in (0, 0.5], got {epsilon}"
        );
        GreenwaldKhanna {
            epsilon,
            n: 0,
            tuples: Vec::new(),
            since_compress: 0,
            compress_every: (1.0 / (2.0 * epsilon)).ceil() as u64,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of items observed.
    pub fn total(&self) -> u64 {
        self.n
    }

    /// Number of stored tuples (the space usage).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Record one occurrence of `v`.
    pub fn observe(&mut self, v: u64) {
        let band = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        self.n += 1;
        let idx = self.tuples.partition_point(|t| t.v < v);
        let delta = if idx == 0 || idx == self.tuples.len() {
            0
        } else {
            band.saturating_sub(1)
        };
        self.tuples.insert(idx, Tuple { v, g: 1, delta });
        self.since_compress += 1;
        if self.since_compress >= self.compress_every {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merge adjacent tuples while preserving the `g + Δ <= ⌊2εn⌋`
    /// invariant. The extreme tuples (exact min and max) are never merged
    /// away.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        let mut merged: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        let mut cur = self.tuples.pop().expect("len >= 3");
        while self.tuples.len() > 1 {
            let t = self.tuples.pop().expect("len > 1");
            if t.g + cur.g + cur.delta <= threshold {
                cur.g += t.g;
            } else {
                merged.push(std::mem::replace(&mut cur, t));
            }
        }
        merged.push(cur);
        if let Some(first) = self.tuples.pop() {
            merged.push(first);
        }
        merged.reverse();
        self.tuples = merged;
    }

    /// An item whose rank is within `εn` of `⌈phi * n⌉`. Returns `None` on
    /// an empty summary.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let r = ((phi * self.n as f64).ceil() as u64).clamp(1, self.n);
        let e = (self.epsilon * self.n as f64).ceil() as u64;
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            let rmax = rmin + t.delta;
            if r <= rmin + e && rmax <= r + e {
                return Some(t.v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }

    /// Bounds `(lo, hi)` on `rank(x) = |{a : a <= x}|`.
    pub fn rank_bounds(&self, x: u64) -> (u64, u64) {
        if self.n == 0 {
            return (0, 0);
        }
        let mut rmin_prev = 0u64;
        let mut rmax_prev = 0u64;
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            if t.v > x {
                // rank(x) is at least rmin of the predecessor and at most
                // one less than the rmax of this tuple.
                let hi = (rmin + t.delta).saturating_sub(1);
                return (rmin_prev, hi.max(rmax_prev));
            }
            rmin_prev = rmin;
            rmax_prev = rmin + t.delta;
        }
        (rmin_prev, self.n)
    }

    /// Point estimate of `rank(x)` (midpoint of [`Self::rank_bounds`]).
    pub fn rank_estimate(&self, x: u64) -> u64 {
        let (lo, hi) = self.rank_bounds(x);
        lo + (hi - lo) / 2
    }

    /// A stored value whose rank is within the sketch error of `r`
    /// (1-based). Returns `None` on an empty summary.
    pub fn select_rank(&self, r: u64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let r = r.clamp(1, self.n);
        let e = (self.epsilon * self.n as f64).ceil() as u64;
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            if rmin + e >= r {
                return Some(t.v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }

    /// Extract an equi-depth summary with separators roughly every `step`
    /// ranks. The summary's rank error accounts for both the separator
    /// spacing and this sketch's own `εn` error.
    pub fn equi_depth(&self, step: u64) -> EquiDepthSummary {
        let step = step.max(1);
        let gk_err = (self.epsilon * self.n as f64).ceil() as u64;
        if self.n == 0 {
            return EquiDepthSummary::from_parts(Vec::new(), 0, step);
        }
        let mut seps = Vec::new();
        let mut next_rank = step;
        // For each target rank r, pick the first tuple whose rmin reaches
        // r - gk_err; the GK invariant bounds its true rank within
        // [r - gk_err, r + gk_err + 1].
        let mut rmin = 0u64;
        let mut iter = self.tuples.iter();
        let mut cur = iter.next();
        while next_rank <= self.n {
            while let Some(t) = cur {
                if rmin + t.g + gk_err >= next_rank {
                    break;
                }
                rmin += t.g;
                cur = iter.next();
            }
            match cur {
                Some(t) => seps.push(t.v),
                None => {
                    if let Some(last) = self.tuples.last() {
                        seps.push(last.v);
                    }
                }
            }
            next_rank += step;
        }
        EquiDepthSummary::from_parts(seps, self.n, step).with_sep_error(gk_err + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn check_stream(values: &[u64], eps: f64) {
        let mut gk = GreenwaldKhanna::new(eps);
        for &v in values {
            gk.observe(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let slack = (eps * n as f64).ceil() as u64 + 2;
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let q = gk.quantile(phi).unwrap();
            let target = ((phi * n as f64).ceil() as u64).clamp(1, n);
            // True rank range of q in sorted order (1-based, <= convention).
            let lo = sorted.partition_point(|&y| y < q) as u64 + 1;
            let hi = sorted.partition_point(|&y| y <= q) as u64;
            let dist = if target < lo {
                lo - target
            } else {
                target.saturating_sub(hi)
            };
            assert!(
                dist <= slack,
                "phi={phi}: quantile {q} rank [{lo},{hi}] vs target {target} (slack {slack})"
            );
        }
    }

    #[test]
    fn quantiles_on_shuffled_range() {
        let mut vals: Vec<u64> = (0..5000).collect();
        // Deterministic shuffle.
        let mut st = 12345u64;
        for i in (1..vals.len()).rev() {
            let j = (xorshift(&mut st) % (i as u64 + 1)) as usize;
            vals.swap(i, j);
        }
        check_stream(&vals, 0.01);
        check_stream(&vals, 0.05);
    }

    #[test]
    fn quantiles_on_sorted_and_reversed() {
        let vals: Vec<u64> = (0..3000).collect();
        check_stream(&vals, 0.02);
        let rev: Vec<u64> = (0..3000).rev().collect();
        check_stream(&rev, 0.02);
    }

    #[test]
    fn quantiles_with_heavy_duplicates() {
        let mut vals = Vec::new();
        let mut st = 99u64;
        for _ in 0..4000 {
            vals.push(xorshift(&mut st) % 10);
        }
        check_stream(&vals, 0.02);
    }

    #[test]
    fn rank_bounds_contain_truth() {
        let mut gk = GreenwaldKhanna::new(0.02);
        let vals: Vec<u64> = (0..4000).map(|i| (i * 37) % 1000).collect();
        for &v in &vals {
            gk.observe(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let slack = (0.02 * n as f64).ceil() as u64 + 1;
        for probe in (0..1000).step_by(53) {
            let truth = sorted.partition_point(|&y| y <= probe) as u64;
            let (lo, hi) = gk.rank_bounds(probe);
            assert!(
                lo <= truth + slack && truth <= hi + slack,
                "rank bounds [{lo},{hi}] vs truth {truth} for {probe}"
            );
            let est = gk.rank_estimate(probe);
            let err = est.abs_diff(truth);
            assert!(
                err <= slack,
                "estimate {est} vs {truth}, err {err} > {slack}"
            );
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut gk = GreenwaldKhanna::new(0.01);
        let mut st = 5u64;
        let n = 200_000u64;
        for _ in 0..n {
            gk.observe(xorshift(&mut st));
        }
        // O((1/eps) * log(eps*n)) with a generous constant.
        let bound = (1.0 / 0.01) * ((0.01 * n as f64).log2() + 4.0) * 8.0;
        assert!(
            (gk.tuple_count() as f64) < bound,
            "{} tuples exceeds bound {bound}",
            gk.tuple_count()
        );
    }

    #[test]
    fn empty_and_single() {
        let mut gk = GreenwaldKhanna::new(0.1);
        assert_eq!(gk.quantile(0.5), None);
        assert_eq!(gk.rank_bounds(7), (0, 0));
        gk.observe(42);
        assert_eq!(gk.quantile(0.0), Some(42));
        assert_eq!(gk.quantile(1.0), Some(42));
        assert_eq!(gk.rank_bounds(41).0, 0);
        assert_eq!(gk.rank_bounds(42), (1, 1));
    }

    #[test]
    fn equi_depth_extraction_has_bounded_error() {
        let mut gk = GreenwaldKhanna::new(0.01);
        let vals: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 100_000).collect();
        for &v in &vals {
            gk.observe(v);
        }
        let step = 200;
        let summary = gk.equi_depth(step);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for probe in (0..100_000).step_by(4321) {
            let truth = sorted.partition_point(|&y| y < probe) as u64;
            let est = summary.rank_estimate(probe);
            let err = est.abs_diff(truth);
            assert!(
                err <= summary.rank_error() + 2,
                "probe {probe}: est {est} truth {truth} err {err} > {}",
                summary.rank_error()
            );
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 0.5]")]
    fn bad_epsilon_panics() {
        GreenwaldKhanna::new(0.9);
    }
}
