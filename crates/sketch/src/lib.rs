//! # dtrack-sketch — local stream summaries
//!
//! The tracking protocols of Yi & Zhang (PODS 2009) require each site to
//! answer questions about its *local* stream: exact or approximate item
//! frequencies (heavy-hitter tracking, §2), and exact or approximate ranks,
//! range counts, and equi-depth separator summaries (quantile tracking,
//! §3–4). This crate provides those building blocks:
//!
//! * [`ExactFrequencies`] — hash-map frequency store (the "exact local
//!   frequencies" the basic §2.1 protocol assumes).
//! * [`ExactOrdered`] — an order-statistic treap over a multiset of `u64`
//!   values: O(log n) insert, rank, select, and range count. This is what
//!   lets a site answer the coordinator's exact polls during quantile
//!   tracking.
//! * [`SpaceSaving`] — the Metwally et al. counter sketch the paper cites
//!   [26] for the O(1/ε)-space heavy-hitter site ("Implementing with small
//!   space", §2.1).
//! * [`MisraGries`] — classic deterministic frequent-items summary, used as
//!   an independent cross-check in tests.
//! * [`GreenwaldKhanna`] — the ε-approximate quantile summary the paper
//!   cites [18] for the small-space quantile sites (§3.1, §4).
//! * [`EquiDepthSummary`] — a mergeable separator summary with a bounded
//!   rank error; this is the object sites ship to the coordinator during
//!   the initialization and rebuilding steps of §3.1 and §4.
//! * [`FreqStore`] / [`OrderStore`] — traits that let the protocol sites be
//!   generic over exact vs. sketched local state.

pub mod exact;
pub mod gk;
pub mod mg;
pub mod spacesaving;
pub mod store;
pub mod summary;

pub use exact::{ExactFrequencies, ExactOrdered};
pub use gk::GreenwaldKhanna;
pub use mg::MisraGries;
pub use spacesaving::SpaceSaving;
pub use store::{FreqStore, OrderStore};
pub use summary::{EquiDepthSummary, MergedSummary};
