//! Exact local stores: a frequency map and an order-statistic treap.
//!
//! The basic protocols of the paper assume each site "maintains the exact
//! frequency of each x ∈ U at site Sj" (§2.1) and can answer exact rank and
//! range-count polls (§3.1 step 1–2). [`ExactFrequencies`] and
//! [`ExactOrdered`] provide those with O(log n) (or O(1)) operations.
//!
//! Both structures sit on the per-arrival hot path (every site store and
//! the differential oracle are built from them), so they avoid the two
//! classic per-item taxes: [`ExactFrequencies`] hashes with the
//! deterministic Fx hash instead of SipHash, and [`ExactOrdered`] is an
//! *arena* treap — nodes live contiguously in a `Vec` and link by `u32`
//! index, so insertion allocates nothing after the arena has grown and
//! lookups chase 32-bit indices in cache instead of scattered `Box`es.

use dtrack_hash::FxHashMap;

/// Exact per-item frequency counts for a site's local stream.
#[derive(Debug, Clone, Default)]
pub struct ExactFrequencies {
    counts: FxHashMap<u64, u64>,
    total: u64,
}

impl ExactFrequencies {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one occurrence of `x`; returns the new count of `x`.
    #[inline]
    pub fn observe(&mut self, x: u64) -> u64 {
        self.total += 1;
        let c = self.counts.entry(x).or_insert(0);
        *c += 1;
        *c
    }

    /// Exact count of `x`.
    #[inline]
    pub fn count(&self, x: u64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// Total number of items observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct items observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(item, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

/// Sentinel index for "no child".
const NIL: u32 = u32::MAX;

/// A node of the order-statistic treap: a multiset entry with subtree
/// weight. `size` counts total multiplicity (not distinct keys) in the
/// subtree so ranks are multiset ranks. Children are arena indices.
#[derive(Debug, Clone)]
struct Node {
    key: u64,
    prio: u64,
    mult: u64,
    size: u64,
    left: u32,
    right: u32,
}

/// SplitMix64: deterministic pseudo-random priorities so treap shape (and
/// thus all protocol runs) are reproducible without an RNG dependency.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An order-statistic treap over a multiset of `u64` values.
///
/// Supports the exact queries quantile-tracking sites must answer:
/// * `rank_lt(x)` — number of stored items strictly less than `x`;
/// * `rank_le(x)` — number of stored items ≤ `x`;
/// * `select(r)` — the item of multiset rank `r` (0-based);
/// * `range_count(lo, hi)` — items in the inclusive range `[lo, hi]`.
///
/// All operations are O(log n) expected; insertion order does not affect
/// results, and the structure is deterministic for a given insertion
/// sequence. Storage is an index-linked arena: one `Vec` growth per new
/// distinct key, zero per-node heap allocations.
#[derive(Debug, Clone)]
pub struct ExactOrdered {
    nodes: Vec<Node>,
    root: u32,
    prio_state: u64,
    len: u64,
}

impl Default for ExactOrdered {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactOrdered {
    /// Empty multiset.
    pub fn new() -> Self {
        ExactOrdered {
            nodes: Vec::new(),
            root: NIL,
            prio_state: 0x5DEE_CE66_D123_4567,
            len: 0,
        }
    }

    /// Empty multiset with arena room for `distinct` keys.
    pub fn with_capacity(distinct: usize) -> Self {
        let mut t = Self::new();
        t.nodes.reserve(distinct);
        t
    }

    /// Number of stored items (with multiplicity).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys stored (arena occupancy).
    pub fn distinct(&self) -> usize {
        self.nodes.len()
    }

    /// Remove every item, keeping the arena's capacity for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.root = NIL;
        self.prio_state = 0x5DEE_CE66_D123_4567;
        self.len = 0;
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    #[inline]
    fn subtree_size(&self, idx: u32) -> u64 {
        if idx == NIL {
            0
        } else {
            self.node(idx).size
        }
    }

    #[inline]
    fn update(&mut self, idx: u32) {
        let (l, r, mult) = {
            let n = self.node(idx);
            (n.left, n.right, n.mult)
        };
        self.nodes[idx as usize].size = mult + self.subtree_size(l) + self.subtree_size(r);
    }

    /// Insert one occurrence of `x`.
    pub fn insert(&mut self, x: u64) {
        let prio = splitmix64(&mut self.prio_state);
        let root = self.root;
        self.root = self.insert_at(root, x, prio);
        self.len += 1;
    }

    fn insert_at(&mut self, idx: u32, key: u64, prio: u64) -> u32 {
        if idx == NIL {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                key,
                prio,
                mult: 1,
                size: 1,
                left: NIL,
                right: NIL,
            });
            return id;
        }
        let nkey = self.node(idx).key;
        if key == nkey {
            let n = &mut self.nodes[idx as usize];
            n.mult += 1;
            n.size += 1;
            idx
        } else if key < nkey {
            let child = self.insert_at(self.node(idx).left, key, prio);
            self.nodes[idx as usize].left = child;
            if self.node(child).prio > self.node(idx).prio {
                self.rotate_right(idx)
            } else {
                self.update(idx);
                idx
            }
        } else {
            let child = self.insert_at(self.node(idx).right, key, prio);
            self.nodes[idx as usize].right = child;
            if self.node(child).prio > self.node(idx).prio {
                self.rotate_left(idx)
            } else {
                self.update(idx);
                idx
            }
        }
    }

    fn rotate_right(&mut self, idx: u32) -> u32 {
        let l = self.node(idx).left;
        debug_assert_ne!(l, NIL, "rotate_right requires a left child");
        self.nodes[idx as usize].left = self.node(l).right;
        self.update(idx);
        self.nodes[l as usize].right = idx;
        self.update(l);
        l
    }

    fn rotate_left(&mut self, idx: u32) -> u32 {
        let r = self.node(idx).right;
        debug_assert_ne!(r, NIL, "rotate_left requires a right child");
        self.nodes[idx as usize].right = self.node(r).left;
        self.update(idx);
        self.nodes[r as usize].left = idx;
        self.update(r);
        r
    }

    /// Number of items strictly less than `x`.
    pub fn rank_lt(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            if x <= n.key {
                cur = n.left;
            } else {
                acc += self.subtree_size(n.left) + n.mult;
                cur = n.right;
            }
        }
        acc
    }

    /// Number of items less than or equal to `x`.
    pub fn rank_le(&self, x: u64) -> u64 {
        if x == u64::MAX {
            return self.len;
        }
        self.rank_lt(x + 1)
    }

    /// Exact multiplicity of `x`.
    pub fn count(&self, x: u64) -> u64 {
        self.rank_le(x) - self.rank_lt(x)
    }

    /// Number of items in the inclusive range `[lo, hi]`; 0 when `lo > hi`.
    pub fn range_count(&self, lo: u64, hi: u64) -> u64 {
        if lo > hi {
            return 0;
        }
        self.rank_le(hi) - self.rank_lt(lo)
    }

    /// The item of multiset rank `r` (0-based); `None` when `r >= len`.
    pub fn select(&self, r: u64) -> Option<u64> {
        if r >= self.len {
            return None;
        }
        let mut r = r;
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            let left = self.subtree_size(n.left);
            if r < left {
                cur = n.left;
            } else if r < left + n.mult {
                return Some(n.key);
            } else {
                r -= left + n.mult;
                cur = n.right;
            }
        }
        None
    }

    /// Iterate over `(value, multiplicity)` in ascending value order.
    pub fn iter(&self) -> ExactOrderedIter<'_> {
        let mut iter = ExactOrderedIter {
            tree: self,
            stack: Vec::new(),
        };
        iter.push_left_spine(self.root);
        iter
    }
}

/// In-order iterator over an [`ExactOrdered`] multiset.
pub struct ExactOrderedIter<'a> {
    tree: &'a ExactOrdered,
    stack: Vec<u32>,
}

impl ExactOrderedIter<'_> {
    fn push_left_spine(&mut self, mut idx: u32) {
        while idx != NIL {
            self.stack.push(idx);
            idx = self.tree.node(idx).left;
        }
    }
}

impl<'a> Iterator for ExactOrderedIter<'a> {
    type Item = (u64, u64);
    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let n = self.tree.node(idx);
        self.push_left_spine(n.right);
        Some((n.key, n.mult))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_count_and_total() {
        let mut f = ExactFrequencies::new();
        for x in [5, 5, 7, 5, 9] {
            f.observe(x);
        }
        assert_eq!(f.count(5), 3);
        assert_eq!(f.count(7), 1);
        assert_eq!(f.count(42), 0);
        assert_eq!(f.total(), 5);
        assert_eq!(f.distinct(), 3);
        let mut pairs: Vec<_> = f.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(5, 3), (7, 1), (9, 1)]);
    }

    #[test]
    fn ordered_rank_select_roundtrip() {
        let mut t = ExactOrdered::new();
        let vals = [50u64, 10, 30, 30, 90, 70, 30];
        for v in vals {
            t.insert(v);
        }
        // Sorted: 10, 30, 30, 30, 50, 70, 90
        assert_eq!(t.len(), 7);
        assert_eq!(t.distinct(), 5);
        assert_eq!(t.rank_lt(10), 0);
        assert_eq!(t.rank_lt(30), 1);
        assert_eq!(t.rank_le(30), 4);
        assert_eq!(t.rank_lt(100), 7);
        assert_eq!(t.count(30), 3);
        assert_eq!(t.count(11), 0);
        assert_eq!(t.select(0), Some(10));
        assert_eq!(t.select(3), Some(30));
        assert_eq!(t.select(4), Some(50));
        assert_eq!(t.select(6), Some(90));
        assert_eq!(t.select(7), None);
    }

    #[test]
    fn range_count_inclusive() {
        let mut t = ExactOrdered::new();
        for v in 0..100u64 {
            t.insert(v * 2); // evens 0..198
        }
        assert_eq!(t.range_count(0, 198), 100);
        assert_eq!(t.range_count(10, 20), 6); // 10,12,14,16,18,20
        assert_eq!(t.range_count(11, 11), 0);
        assert_eq!(t.range_count(20, 10), 0);
        assert_eq!(t.range_count(197, u64::MAX), 1);
    }

    #[test]
    fn extreme_keys() {
        let mut t = ExactOrdered::new();
        t.insert(0);
        t.insert(u64::MAX);
        t.insert(u64::MAX);
        assert_eq!(t.rank_lt(0), 0);
        assert_eq!(t.rank_le(0), 1);
        assert_eq!(t.rank_le(u64::MAX), 3);
        assert_eq!(t.rank_lt(u64::MAX), 1);
        assert_eq!(t.count(u64::MAX), 2);
        assert_eq!(t.select(2), Some(u64::MAX));
    }

    #[test]
    fn iter_is_sorted_with_multiplicity() {
        let mut t = ExactOrdered::new();
        for v in [9u64, 1, 5, 5, 9, 9] {
            t.insert(v);
        }
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(1, 1), (5, 2), (9, 3)]);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_state() {
        let mut t = ExactOrdered::with_capacity(100);
        for v in [3u64, 1, 2, 2] {
            t.insert(v);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.distinct(), 0);
        assert_eq!(t.select(0), None);
        // Re-inserting after clear behaves like a fresh treap.
        t.insert(9);
        t.insert(4);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(4, 1), (9, 1)]);
    }

    #[test]
    fn matches_sorted_vec_on_dense_input() {
        let mut t = ExactOrdered::new();
        let mut v: Vec<u64> = Vec::new();
        // Deterministic pseudo-random inserts.
        let mut st = 42u64;
        for _ in 0..2000 {
            let x = splitmix64(&mut st) % 500;
            t.insert(x);
            v.push(x);
        }
        v.sort_unstable();
        for probe in (0..500).step_by(7) {
            let lt = v.partition_point(|&y| y < probe) as u64;
            let le = v.partition_point(|&y| y <= probe) as u64;
            assert_eq!(t.rank_lt(probe), lt, "rank_lt({probe})");
            assert_eq!(t.rank_le(probe), le, "rank_le({probe})");
        }
        for r in (0..v.len()).step_by(13) {
            assert_eq!(t.select(r as u64), Some(v[r]), "select({r})");
        }
    }

    #[test]
    fn treap_depth_is_logarithmic() {
        // Sorted insertion is the worst case for a plain BST; the treap
        // must keep expected O(log n) depth.
        let mut t = ExactOrdered::new();
        for v in 0..10_000u64 {
            t.insert(v);
        }
        fn depth(t: &ExactOrdered, idx: u32) -> u32 {
            if idx == NIL {
                return 0;
            }
            let n = t.node(idx);
            1 + depth(t, n.left).max(depth(t, n.right))
        }
        let d = depth(&t, t.root);
        assert!(d < 64, "treap depth {d} too large for n=10000");
    }
}
