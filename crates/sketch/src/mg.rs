//! Misra–Gries frequent-items summary.
//!
//! The oldest deterministic heavy-hitter summary: `capacity` counters, and
//! when a new item arrives with all counters taken, every counter is
//! decremented (items reaching zero are dropped). Guarantees for a stream
//! of n items:
//!
//! * `true(x) - n / (capacity + 1) <= estimate(x) <= true(x)` for every x —
//!   an **underestimate**, the mirror image of SpaceSaving.
//!
//! The tracking protocols use SpaceSaving; Misra–Gries exists here as an
//! independent implementation used by tests to cross-check the sketch-based
//! heavy-hitter sites (two different summaries agreeing on classifications
//! is strong evidence neither is silently broken).

use dtrack_hash::FxHashMap;

/// The Misra–Gries summary.
#[derive(Debug, Clone)]
pub struct MisraGries {
    capacity: usize,
    counters: FxHashMap<u64, u64>,
    total: u64,
}

impl MisraGries {
    /// Summary with the given number of counters.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MisraGries capacity must be positive");
        MisraGries {
            capacity,
            counters: FxHashMap::with_capacity_and_hasher(capacity * 2, Default::default()),
            total: 0,
        }
    }

    /// Summary sized for absolute error `epsilon * n`:
    /// `capacity = ⌈1/epsilon⌉`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in (0, 1].
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self::new((1.0 / epsilon).ceil() as usize)
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of observed items.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Record one occurrence of `x`.
    pub fn observe(&mut self, x: u64) {
        self.total += 1;
        if let Some(c) = self.counters.get_mut(&x) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(x, 1);
            return;
        }
        // Decrement-all step; drop zeros. Amortized O(1): every decrement
        // pairs with a previous increment.
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Merge another summary into this one (Agarwal et al., "Mergeable
    /// Summaries"): add counters pointwise, then, if more than `capacity`
    /// counters remain, subtract the (capacity+1)-st largest counter value
    /// from every counter and drop the non-positive ones. The merged
    /// summary keeps the Misra–Gries guarantee for the concatenated
    /// stream: `true(x) − (n₁+n₂)/(capacity+1) <= estimate(x) <= true(x)`.
    /// Merging is commutative: both orders yield identical counters.
    ///
    /// # Panics
    /// Panics if the capacities differ (the error guarantee would be the
    /// weaker of the two, which is almost never what a caller wants).
    pub fn merge(&mut self, other: &MisraGries) {
        assert_eq!(
            self.capacity, other.capacity,
            "can only merge equal-capacity MisraGries summaries"
        );
        for (&x, &c) in &other.counters {
            *self.counters.entry(x).or_insert(0) += c;
        }
        self.total += other.total;
        if self.counters.len() > self.capacity {
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let cut = counts[self.capacity];
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(cut);
                *c > 0
            });
        }
    }

    /// Underestimate of the frequency of `x`.
    pub fn estimate(&self, x: u64) -> u64 {
        self.counters.get(&x).copied().unwrap_or(0)
    }

    /// Candidate heavy hitters: items whose estimate is at least
    /// `threshold`.
    pub fn candidates(&self, threshold: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .counters
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(&x, _)| x)
            .collect();
        v.sort_unstable();
        v
    }

    /// Iterate over `(item, estimate)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counters.iter().map(|(&x, &c)| (x, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(10);
        for x in [1u64, 1, 2, 3, 1] {
            mg.observe(x);
        }
        assert_eq!(mg.estimate(1), 3);
        assert_eq!(mg.estimate(2), 1);
        assert_eq!(mg.estimate(9), 0);
    }

    #[test]
    fn underestimate_with_bounded_error() {
        let mut stream = Vec::new();
        let mut st = 3u64;
        for i in 0..6000u64 {
            if i % 4 == 0 {
                stream.push(7);
            } else {
                st = st
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                stream.push(100 + st % 300);
            }
        }
        let cap = 40;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut mg = MisraGries::new(cap);
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
            mg.observe(x);
        }
        let n = stream.len() as u64;
        let bound = n / (cap as u64 + 1);
        for (&x, &t) in &truth {
            let e = mg.estimate(x);
            assert!(e <= t, "must underestimate, item {x}: {e} > {t}");
            assert!(
                t - e <= bound,
                "error bound violated for {x}: {t}-{e} > {bound}"
            );
        }
    }

    #[test]
    fn candidates_sorted_and_filtered() {
        let mut mg = MisraGries::new(5);
        for _ in 0..10 {
            mg.observe(3);
        }
        for _ in 0..4 {
            mg.observe(1);
        }
        let c = mg.candidates(5);
        assert_eq!(c, vec![3]);
        let c = mg.candidates(1);
        assert_eq!(c, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        MisraGries::new(0);
    }

    #[test]
    fn with_epsilon_sizes_capacity() {
        assert_eq!(MisraGries::with_epsilon(0.05).capacity(), 20);
    }
}
