//! Store traits that let protocol sites swap exact local state for
//! small-space sketches.
//!
//! The paper first presents each protocol with exact local state, then
//! notes ("Implementing with small space") that the exact state can be
//! replaced by a sketch with error Θ(ε) without changing the asymptotic
//! communication bounds. [`FreqStore`] and [`OrderStore`] capture exactly
//! the operations the protocols need, and are implemented by both the exact
//! stores and the sketches.

use dtrack_hash::FxHashMap;

use crate::exact::{ExactFrequencies, ExactOrdered};
use crate::gk::GreenwaldKhanna;
use crate::spacesaving::SpaceSaving;
use crate::summary::EquiDepthSummary;

/// Local frequency state for a heavy-hitter site.
///
/// The site's job (§2.1) is to detect when the *unreported* local increment
/// of some item reaches a threshold. The store tracks, per item, how much
/// has arrived beyond what was last reported, in a way that guarantees the
/// coordinator's accumulated total **never exceeds** the true local count
/// (the safe direction for the paper's invariant (2)).
pub trait FreqStore {
    /// Record one arrival of `x`; returns the current unreported amount
    /// for `x` (a lower bound on the true unreported arrivals).
    fn observe(&mut self, x: u64) -> u64;

    /// Mark `delta` units of `x` as reported to the coordinator.
    fn mark_reported(&mut self, x: u64, delta: u64);

    /// The current unreported amount for `x` without recording an arrival
    /// (used by deterministic adversaries to inspect trigger distances,
    /// per the Lemma 2.3 model where thresholds are known to the
    /// adversary).
    fn unreported(&self, x: u64) -> u64;

    /// Total number of items observed at this site.
    fn total(&self) -> u64;

    /// Number of stored entries — the per-site space the experiments
    /// compare against the paper's O(1/ε) claim.
    fn entries(&self) -> usize;
}

/// Exact frequency store: a hash map of counts plus reported amounts.
#[derive(Debug, Clone, Default)]
pub struct ExactFreqStore {
    counts: ExactFrequencies,
    reported: FxHashMap<u64, u64>,
}

impl ExactFreqStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact local count of `x` (test/oracle access).
    pub fn count(&self, x: u64) -> u64 {
        self.counts.count(x)
    }
}

impl FreqStore for ExactFreqStore {
    fn observe(&mut self, x: u64) -> u64 {
        let c = self.counts.observe(x);
        c - self.reported.get(&x).copied().unwrap_or(0)
    }

    fn mark_reported(&mut self, x: u64, delta: u64) {
        *self.reported.entry(x).or_insert(0) += delta;
        debug_assert!(self.reported[&x] <= self.counts.count(x));
    }

    fn unreported(&self, x: u64) -> u64 {
        self.counts.count(x) - self.reported.get(&x).copied().unwrap_or(0)
    }

    fn total(&self) -> u64 {
        self.counts.total()
    }

    fn entries(&self) -> usize {
        self.counts.distinct()
    }
}

/// SpaceSaving-backed frequency store with O(capacity) space.
///
/// The counter `tag` stores the reported amount. Reporting is driven by the
/// sketch's *lower bound* `count - error`, which only advances on genuine
/// arrivals of the monitored item, so everything ever reported is backed by
/// true arrivals and the coordinator's total stays a lower bound on the
/// true local count. When a counter is taken over, the new item's reported
/// mark starts at its takeover lower bound, so pre-takeover mass is never
/// re-reported; the evicted item's unreported mass (at most one threshold)
/// is forfeited, which only deepens the underestimate.
#[derive(Debug, Clone)]
pub struct SketchFreqStore {
    sketch: SpaceSaving,
}

impl SketchFreqStore {
    /// Store with `capacity` counters.
    pub fn new(capacity: usize) -> Self {
        SketchFreqStore {
            sketch: SpaceSaving::new(capacity),
        }
    }

    /// Store sized for local error `epsilon * |Sj|`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        SketchFreqStore {
            sketch: SpaceSaving::with_epsilon(epsilon),
        }
    }

    /// The underlying sketch (test/oracle access).
    pub fn sketch(&self) -> &SpaceSaving {
        &self.sketch
    }
}

impl FreqStore for SketchFreqStore {
    fn observe(&mut self, x: u64) -> u64 {
        let evicted = self.sketch.observe(x);
        if evicted.is_some() {
            // x just took over a counter: pretend everything up to the
            // takeover lower bound has been reported so it is never
            // re-reported after a previous residency.
            let lb = self.sketch.lower_bound(x);
            if let Some(tag) = self.sketch.tag_mut(x) {
                *tag = lb;
            }
            return 0;
        }
        let c = self.sketch.get(x).expect("x was just observed");
        (c.count - c.error).saturating_sub(c.tag)
    }

    fn mark_reported(&mut self, x: u64, delta: u64) {
        if let Some(tag) = self.sketch.tag_mut(x) {
            *tag += delta;
        }
    }

    fn unreported(&self, x: u64) -> u64 {
        self.sketch
            .get(x)
            .map_or(0, |c| (c.count - c.error).saturating_sub(c.tag))
    }

    fn total(&self) -> u64 {
        self.sketch.total()
    }

    fn entries(&self) -> usize {
        self.sketch.len()
    }
}

/// Local ordered state for a quantile-tracking site: rank and range-count
/// queries plus equi-depth summary extraction.
pub trait OrderStore {
    /// Record one arrival of `x`.
    fn insert(&mut self, x: u64);

    /// Total number of items observed.
    fn total(&self) -> u64;

    /// (Estimate of) `|{a : a < x}|`.
    fn rank_lt(&self, x: u64) -> u64;

    /// Upper bound on the error of [`Self::rank_lt`] and
    /// [`Self::range_count`] (0 for exact stores).
    fn rank_error(&self) -> u64;

    /// (Estimate of) the number of items in the inclusive range `[lo, hi]`.
    fn range_count(&self, lo: u64, hi: u64) -> u64;

    /// An equi-depth summary with separators every `step` ranks.
    fn summary(&self, step: u64) -> EquiDepthSummary;

    /// An equi-depth summary of only the items in the value range
    /// `[lo, hi)` (`hi = None` means unbounded above), with separators
    /// every `step` ranks *within the range*. This is what a site ships
    /// when the coordinator rebuilds a single interval or subtree (§3.1
    /// interval splits, §4 partial rebuilds).
    fn summary_range(&self, lo: u64, hi: Option<u64>, step: u64) -> EquiDepthSummary;

    /// Number of stored entries (space usage).
    fn entries(&self) -> usize;
}

impl OrderStore for ExactOrdered {
    fn insert(&mut self, x: u64) {
        ExactOrdered::insert(self, x);
    }

    fn total(&self) -> u64 {
        self.len()
    }

    fn rank_lt(&self, x: u64) -> u64 {
        ExactOrdered::rank_lt(self, x)
    }

    fn rank_error(&self) -> u64 {
        0
    }

    fn range_count(&self, lo: u64, hi: u64) -> u64 {
        ExactOrdered::range_count(self, lo, hi)
    }

    fn summary(&self, step: u64) -> EquiDepthSummary {
        EquiDepthSummary::from_sorted_counts(self.iter(), self.len(), step)
    }

    fn summary_range(&self, lo: u64, hi: Option<u64>, step: u64) -> EquiDepthSummary {
        let step = step.max(1);
        let lo_rank = ExactOrdered::rank_lt(self, lo);
        let hi_rank = hi.map_or(self.len(), |h| ExactOrdered::rank_lt(self, h));
        let cnt = hi_rank.saturating_sub(lo_rank);
        let mut seps = Vec::new();
        let mut r = step;
        while r <= cnt {
            if let Some(v) = self.select(lo_rank + r - 1) {
                seps.push(v);
            }
            r += step;
        }
        EquiDepthSummary::from_parts(seps, cnt, step)
    }

    fn entries(&self) -> usize {
        // Distinct keys stored — the treap arena's occupancy.
        self.distinct()
    }
}

impl OrderStore for GreenwaldKhanna {
    fn insert(&mut self, x: u64) {
        self.observe(x);
    }

    fn total(&self) -> u64 {
        GreenwaldKhanna::total(self)
    }

    fn rank_lt(&self, x: u64) -> u64 {
        if x == 0 {
            return 0;
        }
        self.rank_estimate(x - 1)
    }

    fn rank_error(&self) -> u64 {
        (self.epsilon() * GreenwaldKhanna::total(self) as f64).ceil() as u64 + 1
    }

    fn range_count(&self, lo: u64, hi: u64) -> u64 {
        if lo > hi {
            return 0;
        }
        let hi_rank = self.rank_estimate(hi);
        let lo_rank = OrderStore::rank_lt(self, lo);
        hi_rank.saturating_sub(lo_rank)
    }

    fn summary(&self, step: u64) -> EquiDepthSummary {
        self.equi_depth(step)
    }

    fn summary_range(&self, lo: u64, hi: Option<u64>, step: u64) -> EquiDepthSummary {
        let step = step.max(1);
        let lo_rank = OrderStore::rank_lt(self, lo);
        let hi_rank = hi.map_or(GreenwaldKhanna::total(self), |h| {
            OrderStore::rank_lt(self, h)
        });
        let cnt = hi_rank.saturating_sub(lo_rank);
        let gk_err = OrderStore::rank_error(self);
        let mut seps = Vec::new();
        let mut r = step;
        while r <= cnt {
            if let Some(v) = self.select_rank(lo_rank + r) {
                // Clamp into the requested range; the sketch error can push
                // a selected value slightly outside it.
                let mut v = v.max(lo);
                if let Some(h) = hi {
                    v = v.min(h.saturating_sub(1));
                }
                seps.push(v);
            }
            r += step;
        }
        seps.sort_unstable();
        EquiDepthSummary::from_parts(seps, cnt, step).with_sep_error(2 * gk_err + 2)
    }

    fn entries(&self) -> usize {
        self.tuple_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_freq_store_tracks_unreported() {
        let mut s = ExactFreqStore::new();
        assert_eq!(s.observe(7), 1);
        assert_eq!(s.observe(7), 2);
        s.mark_reported(7, 2);
        assert_eq!(s.observe(7), 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.entries(), 1);
    }

    #[test]
    fn sketch_freq_store_never_over_reports() {
        // Reports accumulated through the store must never exceed the true
        // count, even across evictions and re-entries.
        let mut s = SketchFreqStore::new(3);
        let mut truth: std::collections::HashMap<u64, u64> = Default::default();
        let mut reported: std::collections::HashMap<u64, u64> = Default::default();
        // Adversarial pattern: rotate 6 items through 3 counters.
        let stream: Vec<u64> = (0..600u64).map(|i| i % 6).collect();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
            let unrep = s.observe(x);
            // "Protocol" reports everything unreported immediately.
            if unrep > 0 {
                s.mark_reported(x, unrep);
                *reported.entry(x).or_insert(0) += unrep;
            }
        }
        for (&x, &r) in &reported {
            assert!(
                r <= truth[&x],
                "item {x}: reported {r} > true {}",
                truth[&x]
            );
        }
    }

    #[test]
    fn sketch_freq_store_reports_most_of_a_heavy_item() {
        let mut s = SketchFreqStore::new(10);
        let mut reported = 0u64;
        let mut stream = Vec::new();
        for i in 0..3000u64 {
            stream.push(if i % 2 == 0 { 42 } else { 1000 + i % 30 });
        }
        for &x in &stream {
            let unrep = s.observe(x);
            if x == 42 && unrep > 0 {
                s.mark_reported(x, unrep);
                reported += unrep;
            }
        }
        let truth = stream.iter().filter(|&&x| x == 42).count() as u64;
        assert!(reported <= truth);
        // The heavy item is never evicted once established, so nearly all
        // of its mass is reportable (slack: sketch error n/capacity).
        let slack = stream.len() as u64 / 10;
        assert!(
            truth - reported <= slack,
            "reported {reported} of {truth}, slack {slack}"
        );
        assert!(s.entries() <= 10);
    }

    #[test]
    fn order_store_exact_matches_direct_calls() {
        let mut t = ExactOrdered::new();
        for v in [5u64, 1, 9, 5, 3] {
            OrderStore::insert(&mut t, v);
        }
        assert_eq!(OrderStore::total(&t), 5);
        assert_eq!(OrderStore::rank_lt(&t, 5), 2);
        assert_eq!(OrderStore::rank_error(&t), 0);
        assert_eq!(OrderStore::range_count(&t, 3, 5), 3);
        let s = OrderStore::summary(&t, 2);
        assert_eq!(s.total(), 5);
        assert!(!s.separators().is_empty());
    }

    #[test]
    fn order_store_gk_bounded_error() {
        let mut gk = GreenwaldKhanna::new(0.02);
        let vals: Vec<u64> = (0..5000).map(|i| (i * 13) % 2000).collect();
        for &v in &vals {
            OrderStore::insert(&mut gk, v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let err = OrderStore::rank_error(&gk);
        for probe in (0..2000).step_by(97) {
            let truth = sorted.partition_point(|&y| y < probe) as u64;
            let est = OrderStore::rank_lt(&gk, probe);
            assert!(
                est.abs_diff(truth) <= err + 1,
                "probe {probe}: est {est} truth {truth} err bound {err}"
            );
        }
        // Range counts: error at most twice the rank error.
        let lo = 500u64;
        let hi = 1500u64;
        let truth = sorted.partition_point(|&y| y <= hi) as u64
            - sorted.partition_point(|&y| y < lo) as u64;
        let est = OrderStore::range_count(&gk, lo, hi);
        assert!(est.abs_diff(truth) <= 2 * err + 2);
        assert!(OrderStore::entries(&gk) < 5000);
    }

    #[test]
    fn gk_rank_lt_zero_is_zero() {
        let mut gk = GreenwaldKhanna::new(0.1);
        for v in 0..100u64 {
            OrderStore::insert(&mut gk, v);
        }
        assert_eq!(OrderStore::rank_lt(&gk, 0), 0);
    }
}
