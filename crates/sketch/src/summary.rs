//! Mergeable equi-depth separator summaries.
//!
//! This is the object the paper's initialization and rebuild steps ship
//! from sites to the coordinator: "each site computes a set of intervals,
//! each containing ε|Aj|/32 items, and sends the set of intervals to the
//! coordinator (by sending those separating items)" (§3.1). The key
//! property is mergeability: k summaries with rank error `e_j` on local
//! streams `A_j` yield global rank estimates with error at most `Σ e_j` on
//! `A = ∪ A_j` — for `e_j = (ε/32)|A_j|` that is `(ε/32)|A|`, which is what
//! the coordinator needs to place interval boundaries and splitting
//! elements.
//!
//! Rank convention: estimates of `rank_lt(x) = |{a : a < x}|`.

/// An equi-depth summary of one site's local multiset: separators taken
/// every `step` ranks, each placed with at most `sep_error` rank slack
/// (0 when extracted from exact data, the sketch error when extracted from
/// a Greenwald–Khanna summary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiDepthSummary {
    separators: Vec<u64>,
    total: u64,
    step: u64,
    sep_error: u64,
}

impl EquiDepthSummary {
    /// Build from raw parts. `separators` must be sorted ascending; `step`
    /// is the rank spacing between consecutive separators.
    pub(crate) fn from_parts(separators: Vec<u64>, total: u64, step: u64) -> Self {
        debug_assert!(separators.windows(2).all(|w| w[0] <= w[1]));
        EquiDepthSummary {
            separators,
            total,
            step: step.max(1),
            sep_error: 0,
        }
    }

    /// Build from a sorted slice of values (with multiplicity already
    /// expanded), taking one separator every `step` ranks.
    pub fn from_sorted(values: &[u64], step: u64) -> Self {
        let step = step.max(1);
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]));
        let total = values.len() as u64;
        let mut separators = Vec::new();
        let mut r = step;
        while r <= total {
            // 1-based rank r => 0-based index r-1.
            separators.push(values[(r - 1) as usize]);
            r += step;
        }
        EquiDepthSummary {
            separators,
            total,
            step,
            sep_error: 0,
        }
    }

    /// Build from an iterator of `(value, multiplicity)` pairs in ascending
    /// value order (e.g. [`crate::ExactOrdered::iter`]).
    pub fn from_sorted_counts<I>(pairs: I, total: u64, step: u64) -> Self
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let step = step.max(1);
        let mut separators = Vec::new();
        let mut next_rank = step;
        let mut seen = 0u64;
        for (v, mult) in pairs {
            seen += mult;
            while next_rank <= total && seen >= next_rank {
                separators.push(v);
                next_rank += step;
            }
        }
        EquiDepthSummary {
            separators,
            total,
            step,
            sep_error: 0,
        }
    }

    /// Attach extra per-separator placement error (used when separators
    /// come from an approximate sketch rather than exact data).
    pub fn with_sep_error(mut self, sep_error: u64) -> Self {
        self.sep_error = sep_error;
        self
    }

    /// Number of items summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rank spacing between separators.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The separator values.
    pub fn separators(&self) -> &[u64] {
        &self.separators
    }

    /// Upper bound on `|estimate(x) - rank_lt(x)|` for any `x`.
    pub fn rank_error(&self) -> u64 {
        self.step + self.sep_error
    }

    /// Estimate of `rank_lt(x)`.
    pub fn rank_estimate(&self, x: u64) -> u64 {
        let j = self.separators.partition_point(|&s| s < x) as u64;
        (j * self.step + self.step / 2).min(self.total)
    }

    /// Size of this summary on the wire, in 64-bit words (separators plus
    /// the three header fields).
    pub fn wire_words(&self) -> u64 {
        self.separators.len() as u64 + 3
    }
}

impl dtrack_wire::WireMessage for EquiDepthSummary {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        dtrack_wire::put_vec_u64(out, &self.separators);
        dtrack_wire::put_u64(out, self.total);
        dtrack_wire::put_u64(out, self.step);
        dtrack_wire::put_u64(out, self.sep_error);
    }

    fn wire_decode(r: &mut dtrack_wire::WireReader<'_>) -> Result<Self, dtrack_wire::DecodeError> {
        Ok(EquiDepthSummary {
            separators: r.vec_u64()?,
            total: r.u64()?,
            step: r.u64()?,
            sep_error: r.u64()?,
        })
    }
}

/// A set of per-site summaries merged by the coordinator.
///
/// Rank estimates are sums of per-site estimates; the error bound is the
/// sum of per-site error bounds.
#[derive(Debug, Clone, Default)]
pub struct MergedSummary {
    parts: Vec<EquiDepthSummary>,
}

impl MergedSummary {
    /// Merge the given summaries.
    pub fn new(parts: Vec<EquiDepthSummary>) -> Self {
        MergedSummary { parts }
    }

    /// Total items across all parts.
    pub fn total(&self) -> u64 {
        self.parts.iter().map(|p| p.total()).sum()
    }

    /// Upper bound on the global rank estimation error.
    pub fn rank_error(&self) -> u64 {
        self.parts.iter().map(|p| p.rank_error()).sum()
    }

    /// Estimate of the global `rank_lt(x)`.
    pub fn rank_estimate(&self, x: u64) -> u64 {
        self.parts.iter().map(|p| p.rank_estimate(x)).sum()
    }

    /// A value whose estimated global rank is as close as possible to
    /// `target` among all separator candidates. Returns `None` when no
    /// part carries any separator (e.g. all sites are tiny).
    pub fn select(&self, target: u64) -> Option<u64> {
        let mut candidates: Vec<u64> = self
            .parts
            .iter()
            .flat_map(|p| p.separators().iter().copied())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_unstable();
        candidates.dedup();
        // rank_estimate is monotone nondecreasing in x, so binary search.
        let idx = candidates.partition_point(|&c| self.rank_estimate(c) < target);
        let hi = candidates.get(idx).copied();
        let lo = if idx > 0 {
            candidates.get(idx - 1).copied()
        } else {
            None
        };
        match (lo, hi) {
            (Some(a), Some(b)) => {
                let da = self.rank_estimate(a).abs_diff(target);
                let db = self.rank_estimate(b).abs_diff(target);
                Some(if da <= db { a } else { b })
            }
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Largest gap in estimated rank between adjacent separator candidates
    /// — how far [`Self::select`] can be from an arbitrary target, beyond
    /// [`Self::rank_error`].
    pub fn max_rank_gap(&self) -> u64 {
        self.parts.iter().map(|p| p.step() + p.rank_error()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_places_separators_every_step() {
        let vals: Vec<u64> = (1..=100).collect();
        let s = EquiDepthSummary::from_sorted(&vals, 10);
        assert_eq!(s.separators(), &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.total(), 100);
        assert_eq!(s.rank_error(), 10);
        assert_eq!(s.wire_words(), 13);
    }

    #[test]
    fn rank_estimate_error_bounded_exact_source() {
        let vals: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let step = 25;
        let s = EquiDepthSummary::from_sorted(&vals, step);
        for probe in (0..3000).step_by(17) {
            let truth = vals.partition_point(|&y| y < probe) as u64;
            let est = s.rank_estimate(probe);
            assert!(
                est.abs_diff(truth) <= s.rank_error(),
                "probe {probe}: est {est}, truth {truth}"
            );
        }
    }

    #[test]
    fn from_sorted_counts_matches_from_sorted() {
        let vals = [5u64, 5, 5, 9, 9, 12, 20, 20, 20, 20];
        let a = EquiDepthSummary::from_sorted(&vals, 3);
        let pairs = [(5u64, 3u64), (9, 2), (12, 1), (20, 4)];
        let b = EquiDepthSummary::from_sorted_counts(pairs, 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_summaries() {
        let s = EquiDepthSummary::from_sorted(&[], 10);
        assert_eq!(s.rank_estimate(5), 0);
        assert_eq!(s.total(), 0);
        // Fewer items than one step: no separators, but estimates are
        // clamped to total, keeping the error within rank_error().
        let s = EquiDepthSummary::from_sorted(&[4, 5], 10);
        assert!(s.separators().is_empty());
        assert!(s.rank_estimate(100) <= 2);
    }

    #[test]
    fn merged_error_is_sum_of_parts() {
        // Two "sites" holding interleaved halves of 0..2000.
        let a_vals: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let b_vals: Vec<u64> = (0..1000).map(|i| i * 2 + 1).collect();
        let a = EquiDepthSummary::from_sorted(&a_vals, 50);
        let b = EquiDepthSummary::from_sorted(&b_vals, 50);
        let m = MergedSummary::new(vec![a, b]);
        assert_eq!(m.total(), 2000);
        assert_eq!(m.rank_error(), 100);
        for probe in (0..2000).step_by(111) {
            let truth = probe; // rank_lt(probe) in 0..2000 is probe itself
            let est = m.rank_estimate(probe);
            assert!(
                est.abs_diff(truth) <= m.rank_error(),
                "probe {probe}: est {est}"
            );
        }
    }

    #[test]
    fn merged_select_hits_near_target() {
        let a_vals: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let b_vals: Vec<u64> = (0..1000).map(|i| i * 2 + 1).collect();
        let m = MergedSummary::new(vec![
            EquiDepthSummary::from_sorted(&a_vals, 40),
            EquiDepthSummary::from_sorted(&b_vals, 40),
        ]);
        for target in [1u64, 100, 500, 1000, 1500, 1999] {
            let v = m.select(target).unwrap();
            let truth = v; // rank_lt(v) == v in this stream
            assert!(
                truth.abs_diff(target) <= m.rank_error() + m.max_rank_gap(),
                "target {target}: got value {v}"
            );
        }
    }

    #[test]
    fn merged_select_none_when_no_separators() {
        let m = MergedSummary::new(vec![EquiDepthSummary::from_sorted(&[1, 2], 10)]);
        assert_eq!(m.select(1), None);
    }

    #[test]
    fn duplicate_heavy_input() {
        // 500 copies of 7, 500 copies of 9.
        let mut vals = vec![7u64; 500];
        vals.extend(std::iter::repeat_n(9, 500));
        let s = EquiDepthSummary::from_sorted(&vals, 100);
        assert_eq!(s.rank_estimate(7), (100 / 2)); // j=0
        let truth_9 = 500;
        assert!(s.rank_estimate(9).abs_diff(truth_9) <= s.rank_error());
        assert!(s.rank_estimate(10).abs_diff(1000) <= s.rank_error());
    }
}
