//! SpaceSaving (Metwally, Agrawal, El Abbadi — the paper's citation [26]).
//!
//! Maintains `capacity` counters over a stream of n items with the classic
//! guarantees:
//!
//! * every monitored item's counter **overestimates** its true frequency by
//!   at most its recorded `error`, and `error <= n / capacity`;
//! * every item with true frequency `> n / capacity` is monitored;
//! * the minimum counter value is at most `n / capacity`.
//!
//! Used by the O(1/ε)-space heavy-hitter site of §2.1 ("Implementing with
//! small space"): with `capacity = ⌈1/ε'⌉` the sketch gives local
//! frequencies with absolute error at most ε'·|Sj|.
//!
//! Each counter also carries a protocol-owned `tag` word. The tracking site
//! uses it to store the number of unreported arrivals of the monitored
//! item; the sketch never interprets it, but returns it on eviction so the
//! protocol can account for the unreported mass it loses.
//!
//! Implementation: an indexed binary min-heap keyed by count, with a
//! deterministic fast-hash map from item to heap slot — O(log capacity)
//! per update.

use dtrack_hash::FxHashMap;

/// A monitored counter as seen by callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterView {
    /// The monitored item.
    pub item: u64,
    /// The (over-)estimated count.
    pub count: u64,
    /// Maximum overestimation: `count - error <= true <= count`.
    pub error: u64,
    /// Protocol-owned tag (see module docs).
    pub tag: u64,
}

/// A counter returned when its item is evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The item that lost its counter.
    pub item: u64,
    /// Its count at eviction.
    pub count: u64,
    /// Its error at eviction.
    pub error: u64,
    /// Its protocol tag at eviction.
    pub tag: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    item: u64,
    count: u64,
    error: u64,
    tag: u64,
}

/// The SpaceSaving sketch.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    heap: Vec<Slot>,
    pos: FxHashMap<u64, usize>,
    total: u64,
}

impl SpaceSaving {
    /// Sketch with the given number of counters.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            capacity,
            heap: Vec::with_capacity(capacity),
            pos: FxHashMap::with_capacity_and_hasher(capacity * 2, Default::default()),
            total: 0,
        }
    }

    /// Sketch sized for absolute frequency error `epsilon * n`:
    /// `capacity = ⌈1/epsilon⌉`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in (0, 1].
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self::new((1.0 / epsilon).ceil() as usize)
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of counters currently in use.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no items have been observed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of observed items.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Record one occurrence of `x`. Returns the counter evicted to make
    /// room, if any.
    pub fn observe(&mut self, x: u64) -> Option<Evicted> {
        self.total += 1;
        if let Some(&i) = self.pos.get(&x) {
            self.heap[i].count += 1;
            self.sift_down(i);
            return None;
        }
        if self.heap.len() < self.capacity {
            let i = self.heap.len();
            self.heap.push(Slot {
                item: x,
                count: 1,
                error: 0,
                tag: 0,
            });
            self.pos.insert(x, i);
            self.sift_up(i);
            return None;
        }
        // Take over the minimum counter (heap root).
        let old = self.heap[0].clone();
        self.pos.remove(&old.item);
        self.pos.insert(x, 0);
        self.heap[0] = Slot {
            item: x,
            count: old.count + 1,
            error: old.count,
            tag: 0,
        };
        self.sift_down(0);
        Some(Evicted {
            item: old.item,
            count: old.count,
            error: old.error,
            tag: old.tag,
        })
    }

    /// Merge another sketch into this one (Agarwal et al., "Mergeable
    /// Summaries"). For items monitored on both sides, counts and errors
    /// add; an item monitored on one side only gets the other side's
    /// `min_count` added to both its count and its error (the other
    /// side's upper bound on what it may have missed). The combined
    /// counters are then truncated to the `capacity` largest, ties broken
    /// by item id so that merging is exactly commutative.
    ///
    /// Merged guarantees, for the concatenated stream of n = n₁+n₂ items:
    ///
    /// * `count` still overestimates and `count − error` still
    ///   underestimates every monitored item's true frequency;
    /// * `error <= n / capacity`;
    /// * every item with true frequency `> 2n / capacity` stays monitored
    ///   (the merge doubles the miss threshold, matching the cited
    ///   analysis).
    ///
    /// Protocol `tag`s are reset to zero: a merge produces a fresh
    /// summary-level object, not a tracking-site state.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn merge(&mut self, other: &SpaceSaving) {
        assert_eq!(
            self.capacity, other.capacity,
            "can only merge equal-capacity SpaceSaving sketches"
        );
        let min_self = self.min_count();
        let min_other = other.min_count();
        // item -> (count, error)
        let mut merged: FxHashMap<u64, (u64, u64)> =
            FxHashMap::with_capacity_and_hasher(2 * self.capacity, Default::default());
        for s in &self.heap {
            merged.insert(s.item, (s.count, s.error));
        }
        for o in &other.heap {
            merged
                .entry(o.item)
                .and_modify(|(c, e)| {
                    *c += o.count;
                    *e += o.error;
                })
                .or_insert((o.count + min_self, o.error + min_self));
        }
        for s in &self.heap {
            if !other.pos.contains_key(&s.item) {
                let entry = merged.get_mut(&s.item).expect("inserted above");
                entry.0 += min_other;
                entry.1 += min_other;
            }
        }
        let mut all: Vec<(u64, (u64, u64))> = merged.into_iter().collect();
        all.sort_unstable_by(|a, b| (b.1 .0.cmp(&a.1 .0)).then(a.0.cmp(&b.0)));
        all.truncate(self.capacity);
        self.total += other.total;
        self.heap.clear();
        self.pos.clear();
        for (item, (count, error)) in all {
            let i = self.heap.len();
            self.heap.push(Slot {
                item,
                count,
                error,
                tag: 0,
            });
            self.pos.insert(item, i);
            self.sift_up(i);
        }
    }

    /// The counter for `x`, if monitored.
    pub fn get(&self, x: u64) -> Option<CounterView> {
        self.pos.get(&x).map(|&i| {
            let s = &self.heap[i];
            CounterView {
                item: s.item,
                count: s.count,
                error: s.error,
                tag: s.tag,
            }
        })
    }

    /// Mutable access to the protocol tag of a monitored item.
    pub fn tag_mut(&mut self, x: u64) -> Option<&mut u64> {
        let i = *self.pos.get(&x)?;
        Some(&mut self.heap[i].tag)
    }

    /// Upper bound on the true frequency of `x` (valid for every `x`,
    /// monitored or not).
    pub fn upper_bound(&self, x: u64) -> u64 {
        match self.get(x) {
            Some(c) => c.count,
            None => self.min_count(),
        }
    }

    /// Lower bound on the true frequency of `x` (0 when not monitored).
    pub fn lower_bound(&self, x: u64) -> u64 {
        self.get(x).map_or(0, |c| c.count - c.error)
    }

    /// The smallest counter value (0 while the sketch is not full). This is
    /// at most `total / capacity`.
    pub fn min_count(&self) -> u64 {
        if self.heap.len() < self.capacity {
            0
        } else {
            self.heap.first().map_or(0, |s| s.count)
        }
    }

    /// Iterate over all monitored counters in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = CounterView> + '_ {
        self.heap.iter().map(|s| CounterView {
            item: s.item,
            count: s.count,
            error: s.error,
            tag: s.tag,
        })
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].count < self.heap[parent].count {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].count < self.heap[smallest].count {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].count < self.heap[smallest].count {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].item, a);
        self.pos.insert(self.heap[b].item, b);
    }

    #[cfg(test)]
    fn check_heap_invariants(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.heap[parent].count <= self.heap[i].count,
                "heap order violated at {i}"
            );
        }
        for (i, s) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[&s.item], i, "stale position for {}", s.item);
        }
        assert_eq!(self.pos.len(), self.heap.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn truth_and_sketch(stream: &[u64], cap: usize) -> (HashMap<u64, u64>, SpaceSaving) {
        let mut truth = HashMap::new();
        let mut ss = SpaceSaving::new(cap);
        for &x in stream {
            *truth.entry(x).or_insert(0u64) += 1;
            ss.observe(x);
            ss.check_heap_invariants();
        }
        (truth, ss)
    }

    #[test]
    fn exact_below_capacity() {
        let stream = [1u64, 2, 3, 1, 2, 1];
        let (truth, ss) = truth_and_sketch(&stream, 8);
        for (&x, &c) in &truth {
            let v = ss.get(x).unwrap();
            assert_eq!(v.count, c);
            assert_eq!(v.error, 0);
        }
        assert_eq!(ss.total(), 6);
        assert_eq!(ss.min_count(), 0, "not full yet");
    }

    #[test]
    fn overestimate_bounded_by_error_and_n_over_c() {
        // Skewed stream: item 0 is very frequent, plus a tail.
        let mut stream = Vec::new();
        let mut st = 7u64;
        for i in 0..5000u64 {
            if i % 3 == 0 {
                stream.push(0);
            } else {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                stream.push(1 + st % 400);
            }
        }
        let cap = 50;
        let (truth, ss) = truth_and_sketch(&stream, cap);
        let n = stream.len() as u64;
        for c in ss.iter() {
            let t = truth.get(&c.item).copied().unwrap_or(0);
            assert!(c.count >= t, "count must overestimate");
            assert!(c.count - c.error <= t, "lower bound must hold");
            assert!(c.error <= n / cap as u64, "error bound n/c violated");
        }
        assert!(ss.min_count() <= n / cap as u64);
        // The heavy item is monitored and tightly estimated.
        let heavy = ss.get(0).unwrap();
        let true_heavy = truth[&0];
        assert!(heavy.count >= true_heavy);
        assert!(heavy.count - true_heavy <= n / cap as u64);
    }

    #[test]
    fn heavy_items_always_monitored() {
        // Any item with frequency > n / capacity must be present.
        let mut stream = Vec::new();
        for round in 0..100u64 {
            stream.push(42); // frequency 100 out of 300, cap 10 => 30 < 100
            stream.push(round * 2 + 1000);
            stream.push(round * 2 + 1001);
        }
        let (truth, ss) = truth_and_sketch(&stream, 10);
        let n = stream.len() as u64;
        for (&x, &c) in &truth {
            if c > n / 10 {
                assert!(ss.get(x).is_some(), "heavy item {x} evicted");
            }
        }
    }

    #[test]
    fn eviction_returns_old_counter_with_tag() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(1);
        ss.observe(2);
        *ss.tag_mut(1).unwrap() = 99;
        // 3 evicts the min counter (1 or 2, both count 1).
        let ev = ss.observe(3).unwrap();
        assert_eq!(ev.count, 1);
        assert_eq!(ev.error, 0);
        if ev.item == 1 {
            assert_eq!(ev.tag, 99);
        }
        // New counter starts with count = min + 1, error = min, tag = 0.
        let c = ss.get(3).unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.error, 1);
        assert_eq!(c.tag, 0);
    }

    #[test]
    fn bounds_for_unmonitored_items() {
        let mut ss = SpaceSaving::new(2);
        for _ in 0..10 {
            ss.observe(1);
            ss.observe(2);
        }
        assert_eq!(ss.lower_bound(777), 0);
        assert_eq!(ss.upper_bound(777), ss.min_count());
        assert!(ss.min_count() > 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SpaceSaving::new(0);
    }

    #[test]
    fn with_epsilon_sizes_capacity() {
        let ss = SpaceSaving::with_epsilon(0.01);
        assert_eq!(ss.capacity(), 100);
        let ss = SpaceSaving::with_epsilon(0.03);
        assert_eq!(ss.capacity(), 34);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn bad_epsilon_panics() {
        SpaceSaving::with_epsilon(0.0);
    }
}
