//! Property-based tests of the summary substrate: the guarantees every
//! sketch advertises must hold for arbitrary streams, not just the unit
//! tests' hand-built ones. The tracking protocols' correctness proofs
//! consume exactly these properties.

use dtrack_sketch::{
    EquiDepthSummary, ExactOrdered, GreenwaldKhanna, MergedSummary, MisraGries, SpaceSaving,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn freq_of(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &x in stream {
        *m.entry(x).or_insert(0u64) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// SpaceSaving: count is an overestimate, `count − error` a lower
    /// bound, error at most n/capacity, and every (n/capacity)-frequent
    /// item is monitored.
    #[test]
    fn spacesaving_guarantees(
        stream in prop::collection::vec(0u64..300, 50..2000),
        cap in 4usize..64,
    ) {
        let truth = freq_of(&stream);
        let mut ss = SpaceSaving::new(cap);
        for &x in &stream {
            ss.observe(x);
        }
        let n = stream.len() as u64;
        let bound = n / cap as u64;
        for c in ss.iter() {
            let t = truth.get(&c.item).copied().unwrap_or(0);
            prop_assert!(c.count >= t);
            prop_assert!(c.count - c.error <= t);
            prop_assert!(c.error <= bound);
        }
        prop_assert!(ss.min_count() <= bound);
        for (&x, &t) in &truth {
            if t > bound {
                prop_assert!(ss.get(x).is_some(), "frequent item {x} evicted");
            }
            prop_assert!(ss.upper_bound(x) >= t);
            prop_assert!(ss.lower_bound(x) <= t);
        }
    }

    /// Misra–Gries: estimate is an underestimate with deficit at most
    /// n/(capacity+1).
    #[test]
    fn misra_gries_guarantees(
        stream in prop::collection::vec(0u64..300, 50..2000),
        cap in 4usize..64,
    ) {
        let truth = freq_of(&stream);
        let mut mg = MisraGries::new(cap);
        for &x in &stream {
            mg.observe(x);
        }
        let bound = stream.len() as u64 / (cap as u64 + 1);
        for (&x, &t) in &truth {
            let e = mg.estimate(x);
            prop_assert!(e <= t);
            prop_assert!(t - e <= bound, "item {x}: deficit {} > {bound}", t - e);
        }
    }

    /// SpaceSaving and Misra–Gries bracket the truth from opposite sides.
    #[test]
    fn ss_and_mg_bracket_truth(
        stream in prop::collection::vec(0u64..200, 100..1500),
    ) {
        let cap = 32;
        let mut ss = SpaceSaving::new(cap);
        let mut mg = MisraGries::new(cap);
        for &x in &stream {
            ss.observe(x);
            mg.observe(x);
        }
        for x in 0u64..200 {
            prop_assert!(mg.estimate(x) <= ss.upper_bound(x));
        }
    }

    /// Greenwald–Khanna: every quantile query lands within εn ranks.
    #[test]
    fn gk_quantile_error_bounded(
        stream in prop::collection::vec(0u64..100_000, 100..3000),
        eps_pct in 2u32..20,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let mut gk = GreenwaldKhanna::new(eps);
        for &x in &stream {
            gk.observe(x);
        }
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let slack = (eps * n as f64).ceil() as u64 + 2;
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let q = gk.quantile(phi).unwrap();
            let target = ((phi * n as f64).ceil() as u64).clamp(1, n);
            let lo = sorted.partition_point(|&y| y < q) as u64 + 1;
            let hi = sorted.partition_point(|&y| y <= q) as u64;
            let dist = if target < lo { lo - target } else { target.saturating_sub(hi) };
            prop_assert!(dist <= slack, "phi {phi}: dist {dist} > {slack}");
        }
    }

    /// The order-statistic treap agrees exactly with a sorted vector.
    #[test]
    fn treap_matches_sorted_vec(
        stream in prop::collection::vec(0u64..10_000, 1..1500),
        probes in prop::collection::vec(0u64..10_000, 10),
    ) {
        let mut t = ExactOrdered::new();
        for &x in &stream {
            t.insert(x);
        }
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        prop_assert_eq!(t.len(), sorted.len() as u64);
        for &p in &probes {
            prop_assert_eq!(t.rank_lt(p), sorted.partition_point(|&y| y < p) as u64);
            prop_assert_eq!(t.rank_le(p), sorted.partition_point(|&y| y <= p) as u64);
        }
        for r in [0u64, sorted.len() as u64 / 2, sorted.len() as u64 - 1] {
            prop_assert_eq!(t.select(r), Some(sorted[r as usize]));
        }
        prop_assert_eq!(t.select(sorted.len() as u64), None);
    }

    /// Equi-depth summaries: rank estimates within the advertised error,
    /// and the error bound of a merge is the sum of the parts.
    #[test]
    fn equidepth_merge_error_additive(
        a in prop::collection::vec(0u64..50_000, 20..800),
        b in prop::collection::vec(0u64..50_000, 20..800),
        step in 5u64..100,
    ) {
        let mut sa = a.clone();
        sa.sort_unstable();
        let mut sb = b.clone();
        sb.sort_unstable();
        let pa = EquiDepthSummary::from_sorted(&sa, step);
        let pb = EquiDepthSummary::from_sorted(&sb, step);
        let merged = MergedSummary::new(vec![pa.clone(), pb.clone()]);
        prop_assert_eq!(merged.rank_error(), pa.rank_error() + pb.rank_error());
        prop_assert_eq!(merged.total(), (a.len() + b.len()) as u64);
        let mut all = a.clone();
        all.extend(&b);
        all.sort_unstable();
        for probe in (0..50_000).step_by(7919) {
            let truth = all.partition_point(|&y| y < probe) as u64;
            let est = merged.rank_estimate(probe);
            prop_assert!(
                est.abs_diff(truth) <= merged.rank_error(),
                "probe {probe}: est {est}, truth {truth}, bound {}",
                merged.rank_error()
            );
        }
    }

    /// Merged select returns a value whose true rank is near the target.
    #[test]
    fn merged_select_near_target(
        a in prop::collection::vec(0u64..50_000, 200..900),
        b in prop::collection::vec(0u64..50_000, 200..900),
    ) {
        let step = 20u64;
        let mut sa = a.clone();
        sa.sort_unstable();
        let mut sb = b.clone();
        sb.sort_unstable();
        let merged = MergedSummary::new(vec![
            EquiDepthSummary::from_sorted(&sa, step),
            EquiDepthSummary::from_sorted(&sb, step),
        ]);
        let mut all = a.clone();
        all.extend(&b);
        all.sort_unstable();
        let n = all.len() as u64;
        for target in [n / 4, n / 2, 3 * n / 4] {
            if let Some(v) = merged.select(target) {
                let r_lo = all.partition_point(|&y| y < v) as u64;
                let r_hi = all.partition_point(|&y| y <= v) as u64;
                let slack = merged.rank_error() + merged.max_rank_gap();
                let dist = if target < r_lo {
                    r_lo - target
                } else {
                    target.saturating_sub(r_hi)
                };
                prop_assert!(dist <= slack, "target {target}: value {v} off by {dist}");
            }
        }
    }

    /// Misra–Gries merge: commutative, still an underestimate, and the
    /// deficit of the merged summary stays within (n₁+n₂)/(capacity+1) —
    /// the mergeable-summaries guarantee for the concatenated stream.
    #[test]
    fn mg_merge_commutes_and_bounds_error(
        a in prop::collection::vec(0u64..250, 50..1200),
        b in prop::collection::vec(0u64..250, 50..1200),
        cap in 8usize..48,
    ) {
        let feed = |stream: &[u64]| {
            let mut mg = MisraGries::new(cap);
            for &x in stream {
                mg.observe(x);
            }
            mg
        };
        let (ma, mb) = (feed(&a), feed(&b));
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        let mut truth = freq_of(&a);
        for (x, c) in freq_of(&b) {
            *truth.entry(x).or_insert(0) += c;
        }
        let n = (a.len() + b.len()) as u64;
        let bound = n / (cap as u64 + 1);
        prop_assert_eq!(ab.total(), n);
        for x in 0u64..250 {
            prop_assert_eq!(
                ab.estimate(x), ba.estimate(x),
                "merge not commutative at item {}", x
            );
            let t = truth.get(&x).copied().unwrap_or(0);
            let e = ab.estimate(x);
            prop_assert!(e <= t, "item {x}: merged estimate {e} > true {t}");
            prop_assert!(t - e <= bound, "item {x}: merged deficit {} > {bound}", t - e);
        }
    }

    /// SpaceSaving merge: commutative, count/error brackets still hold,
    /// per-counter error stays within (n₁+n₂)/capacity, and items above
    /// twice that threshold stay monitored.
    #[test]
    fn ss_merge_commutes_and_bounds_error(
        a in prop::collection::vec(0u64..250, 50..1200),
        b in prop::collection::vec(0u64..250, 50..1200),
        cap in 8usize..48,
    ) {
        let feed = |stream: &[u64]| {
            let mut ss = SpaceSaving::new(cap);
            for &x in stream {
                ss.observe(x);
            }
            ss
        };
        let (sa, sb) = (feed(&a), feed(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut truth = freq_of(&a);
        for (x, c) in freq_of(&b) {
            *truth.entry(x).or_insert(0) += c;
        }
        let n = (a.len() + b.len()) as u64;
        let bound = n / cap as u64;
        prop_assert_eq!(ab.total(), n);
        prop_assert_eq!(ab.min_count(), ba.min_count());
        for c in ab.iter() {
            let t = truth.get(&c.item).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "item {}: merged count {} < true {t}", c.item, c.count);
            prop_assert!(c.count - c.error <= t, "item {} lower bound broken", c.item);
            prop_assert!(c.error <= bound, "item {}: error {} > {bound}", c.item, c.error);
        }
        for x in 0u64..250 {
            prop_assert_eq!(ab.upper_bound(x), ba.upper_bound(x));
            prop_assert_eq!(ab.lower_bound(x), ba.lower_bound(x));
            let t = truth.get(&x).copied().unwrap_or(0);
            if t > 2 * bound {
                prop_assert!(ab.get(x).is_some(), "heavy item {x} lost in merge");
            }
            prop_assert!(ab.upper_bound(x) >= t);
            prop_assert!(ab.lower_bound(x) <= t);
        }
    }

    /// The GK merge path the protocols use — extract equi-depth summaries
    /// and combine them — is order-insensitive and keeps the additive
    /// error bound on rank estimates against the exact concatenation.
    #[test]
    fn gk_summary_merge_commutes_and_bounds_error(
        a in prop::collection::vec(0u64..50_000, 100..1500),
        b in prop::collection::vec(0u64..50_000, 100..1500),
    ) {
        use dtrack_sketch::OrderStore;
        let feed = |stream: &[u64]| {
            let mut gk = GreenwaldKhanna::new(0.05);
            for &x in stream {
                gk.observe(x);
            }
            gk
        };
        let (ga, gb) = (feed(&a), feed(&b));
        let step = 40u64;
        let (pa, pb) = (
            ga.summary_range(0, None, step),
            gb.summary_range(0, None, step),
        );
        let ab = MergedSummary::new(vec![pa.clone(), pb.clone()]);
        let ba = MergedSummary::new(vec![pb, pa]);
        prop_assert_eq!(ab.total(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ab.total(), ba.total());
        prop_assert_eq!(ab.rank_error(), ba.rank_error());
        let mut all = a.clone();
        all.extend(&b);
        all.sort_unstable();
        for probe in (0..50_000).step_by(6199) {
            prop_assert_eq!(
                ab.rank_estimate(probe), ba.rank_estimate(probe),
                "merge order changed rank({})", probe
            );
            let t = all.partition_point(|&y| y < probe) as u64;
            prop_assert!(
                ab.rank_estimate(probe).abs_diff(t) <= ab.rank_error(),
                "probe {}: est {} truth {} bound {}",
                probe, ab.rank_estimate(probe), t, ab.rank_error()
            );
        }
    }

    /// GK rank bounds sandwich the true rank and the point estimate.
    #[test]
    fn gk_rank_bounds_sandwich_truth(
        stream in prop::collection::vec(0u64..100_000, 100..2500),
        eps_pct in 2u32..20,
    ) {
        use dtrack_sketch::OrderStore;
        let eps = eps_pct as f64 / 100.0;
        let mut gk = GreenwaldKhanna::new(eps);
        for &x in &stream {
            gk.observe(x);
        }
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let slack = OrderStore::rank_error(&gk) + 1;
        for probe in (0..100_000u64).step_by(9973) {
            let (lo, hi) = gk.rank_bounds(probe);
            prop_assert!(lo <= hi);
            let est = gk.rank_estimate(probe);
            prop_assert!(lo <= est && est <= hi, "estimate outside its own bounds");
            let t = sorted.partition_point(|&y| y < probe) as u64;
            prop_assert!(
                t.saturating_sub(slack) <= hi && lo <= (t + slack).min(n),
                "true rank {t} not bracketed by [{lo}, {hi}] +- {slack}"
            );
        }
    }

    /// GK range summaries stay within their advertised error too.
    #[test]
    fn gk_summary_range_bounded(
        stream in prop::collection::vec(0u64..10_000, 300..2000),
        lo in 0u64..5_000,
    ) {
        use dtrack_sketch::OrderStore;
        let hi = lo + 4_000;
        let mut gk = GreenwaldKhanna::new(0.02);
        for &x in &stream {
            gk.observe(x);
        }
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        let in_range: Vec<u64> = sorted
            .iter()
            .copied()
            .filter(|&v| v >= lo && v < hi)
            .collect();
        let s = gk.summary_range(lo, Some(hi), 50);
        // Total within the sketch's rank error at both endpoints.
        let err = 2 * OrderStore::rank_error(&gk) + 2;
        prop_assert!(
            s.total().abs_diff(in_range.len() as u64) <= err,
            "range total {} vs true {}",
            s.total(),
            in_range.len()
        );
    }
}
