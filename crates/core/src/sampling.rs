//! §5 — the randomized sampling tracker.
//!
//! From the paper's concluding remarks: "If randomization is allowed,
//! simple random sampling can be used to achieve a cost of
//! O((k + 1/ε²) · polylog(n, k, 1/ε)) for tracking both the heavy hitters
//! and the quantiles. … This breaks the deterministic lower bound for
//! ε = ω(1/k)."
//!
//! The implementation is the classic level-sampling scheme:
//!
//! * every site forwards each arrival independently with probability
//!   `2^{-j}` (the current *level* `j`), tagging the forward with `j`;
//! * the coordinator keeps the forwarded items as its sample; whenever the
//!   sample exceeds twice the target size `S = ⌈c/ε² · ln(4/δ)⌉`, it
//!   advances the level — discarding each kept item with probability 1/2
//!   and broadcasting the new level (k words, O(log n) times);
//! * a forward tagged with a stale level is accepted with probability
//!   `2^{j_cur − j_msg}`, so every retained item is an unbiased
//!   `2^{-j_cur}`-sample regardless of in-flight level changes.
//!
//! At all times the sample is a uniform random sample of size ≈ S of the
//! whole stream, so sample quantiles are ε-approximate with probability
//! 1 − δ, and item frequencies in the sample estimate true frequencies
//! within ε. Expected communication: O(S · log n) forwarded items plus
//! O(k · log n) level broadcasts — the (k + 1/ε²)·polylog(n) shape, which
//! beats the deterministic Θ(k/ε · log n) exactly when ε ≫ 1/k
//! (experiment E17).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId, PROBE_PHIS,
};

use dtrack_wire::{put_u32, put_u64, DecodeError, WireMessage, WireReader};

use crate::common::{check_epsilon, check_phi, check_sites, CoreError};

/// Parameters of the sampling tracker.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 0.5].
    pub delta: f64,
    /// Base RNG seed (site `i` uses `seed + i + 1`, coordinator `seed`).
    pub seed: u64,
}

impl SamplingConfig {
    /// Validated configuration.
    pub fn new(k: u32, epsilon: f64, delta: f64, seed: u64) -> Result<Self, CoreError> {
        check_sites(k)?;
        check_epsilon(epsilon)?;
        if !(delta > 0.0 && delta <= 0.5) {
            return Err(CoreError::BadPhi(delta)); // reuse the range error
        }
        Ok(SamplingConfig {
            k,
            epsilon,
            delta,
            seed,
        })
    }

    /// Target sample size S = ⌈2/ε² · ln(4/δ)⌉.
    pub fn target_sample_size(&self) -> usize {
        ((2.0 / (self.epsilon * self.epsilon)) * (4.0 / self.delta).ln()).ceil() as usize
    }
}

/// Upstream message: a sampled item, tagged with the sampling level it was
/// drawn at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampled {
    /// The item.
    pub item: u64,
    /// The site's level when it sampled the item.
    pub level: u32,
}

impl MessageSize for Sampled {
    fn size_words(&self) -> u64 {
        2
    }
    fn kind(&self) -> &'static str {
        "samp/item"
    }
}

/// Downstream message: adopt a new sampling level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetLevel(pub u32);

impl MessageSize for SetLevel {
    fn size_words(&self) -> u64 {
        1
    }
    fn kind(&self) -> &'static str {
        "samp/set-level"
    }
}

impl WireMessage for Sampled {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.item);
        put_u32(out, self.level);
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(Sampled {
            item: r.u64()?,
            level: r.u32()?,
        })
    }
}

impl WireMessage for SetLevel {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(SetLevel(r.u32()?))
    }
}

/// A sampling site: forwards each arrival with probability 2^{-level}.
#[derive(Debug, Clone)]
pub struct SamplingSite {
    level: u32,
    rng: StdRng,
}

impl SamplingSite {
    /// Site number `index` under `config`.
    pub fn new(config: SamplingConfig, index: u32) -> Self {
        SamplingSite {
            level: 0,
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(index as u64 + 1)),
        }
    }

    /// Current sampling level.
    pub fn level(&self) -> u32 {
        self.level
    }
}

impl Site for SamplingSite {
    type Item = u64;
    type Up = Sampled;
    type Down = SetLevel;

    fn on_item(&mut self, item: u64, out: &mut Vec<Sampled>) {
        // Keep with probability 2^{-level}: `level` fair coin flips.
        let keep = self.level == 0 || {
            let draws = self.level.min(63);
            self.rng.gen_range(0u64..(1u64 << draws)) == 0
        };
        if keep {
            out.push(Sampled {
                item,
                level: self.level,
            });
        }
    }

    fn on_message(&mut self, msg: &SetLevel, _out: &mut Vec<Sampled>) {
        self.level = msg.0;
    }
}

/// The sampling coordinator: a uniform sample of the whole stream.
#[derive(Debug, Clone)]
pub struct SamplingCoordinator {
    config: SamplingConfig,
    level: u32,
    sample: Vec<u64>,
    rng: StdRng,
    level_ups: u64,
}

impl SamplingCoordinator {
    /// Fresh coordinator.
    pub fn new(config: SamplingConfig) -> Self {
        SamplingCoordinator {
            config,
            level: 0,
            sample: Vec::with_capacity(2 * config.target_sample_size() + 8),
            rng: StdRng::seed_from_u64(config.seed),
            level_ups: 0,
        }
    }

    /// Current sample size.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Current sampling level (the stream has roughly `S · 2^level`
    /// items).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of level advances (each costs one broadcast).
    pub fn level_ups(&self) -> u64 {
        self.level_ups
    }

    /// An ε-approximate φ-quantile, with probability 1 − δ.
    pub fn quantile(&self, phi: f64) -> Result<Option<u64>, CoreError> {
        check_phi(phi)?;
        if self.sample.is_empty() {
            return Ok(None);
        }
        let mut sorted = self.sample.clone();
        sorted.sort_unstable();
        let idx = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Ok(Some(sorted[idx]))
    }

    /// The φ-heavy hitters by sample frequency, with probability 1 − δ
    /// (report iff the sample frequency is at least (φ − ε/2)).
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<u64>, CoreError> {
        check_phi(phi)?;
        if self.sample.is_empty() {
            return Ok(Vec::new());
        }
        let mut counts = dtrack_hash::FxHashMap::default();
        for &x in &self.sample {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        let thresh = (phi - self.config.epsilon / 2.0) * self.sample.len() as f64;
        let mut out: Vec<u64> = counts
            .into_iter()
            .filter(|&(_, c)| c as f64 >= thresh)
            .map(|(x, _)| x)
            .collect();
        out.sort_unstable();
        Ok(out)
    }
}

impl Coordinator for SamplingCoordinator {
    type Up = Sampled;
    type Down = SetLevel;

    fn on_message(&mut self, _from: SiteId, msg: Sampled, out: &mut Outbox<SetLevel>) {
        // A forward at a stale (smaller) level is kept with probability
        // 2^{level - msg.level} so the sample stays uniform at 2^{-level}.
        let keep = if msg.level >= self.level {
            debug_assert!(msg.level <= self.level, "site ahead of coordinator");
            true
        } else {
            let gap = (self.level - msg.level).min(63);
            self.rng.gen_range(0u64..(1u64 << gap)) == 0
        };
        if keep {
            self.sample.push(msg.item);
        }
        let cap = 2 * self.config.target_sample_size();
        if self.sample.len() > cap {
            self.level += 1;
            self.level_ups += 1;
            let rng = &mut self.rng;
            self.sample.retain(|_| rng.gen_bool(0.5));
            out.broadcast(SetLevel(self.level));
        }
    }
}

/// Convenience: build a full sampling cluster.
pub fn sampling_cluster(
    config: SamplingConfig,
) -> Result<dtrack_sim::Cluster<SamplingSite, SamplingCoordinator>, CoreError> {
    let sites = (0..config.k)
        .map(|i| SamplingSite::new(config, i))
        .collect();
    dtrack_sim::Cluster::new(sites, SamplingCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// [`Protocol`] adapter: the §5 randomized sampling tracker for the
/// [`dtrack_sim::Tracker`] facade. Answers hold with probability 1 − δ.
#[derive(Debug, Clone, Copy)]
pub struct SamplingProtocol {
    config: SamplingConfig,
}

impl SamplingProtocol {
    /// Wrap a validated [`SamplingConfig`].
    pub fn new(config: SamplingConfig) -> Self {
        SamplingProtocol { config }
    }
}

impl Protocol for SamplingProtocol {
    type Site = SamplingSite;
    type Up = Sampled;
    type Down = SetLevel;
    type Coordinator = SamplingCoordinator;

    fn label(&self) -> &'static str {
        "sampling"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<SamplingSite>, SamplingCoordinator), String> {
        let sites = (0..k).map(|i| SamplingSite::new(self.config, i)).collect();
        Ok((sites, SamplingCoordinator::new(self.config)))
    }

    fn query(&self, c: &SamplingCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::HeavyHitters { phi } => {
                let mut items = c
                    .heavy_hitters(phi)
                    .map_err(|e| QueryError::Protocol(e.to_string()))?;
                items.sort_unstable();
                Ok(Answer::HeavyHitters { phi, items })
            }
            Query::Quantile { phi } => {
                let value = c
                    .quantile(phi)
                    .map_err(|e| QueryError::Protocol(e.to_string()))?;
                Ok(Answer::QuantileAt { phi, value })
            }
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &SamplingCoordinator) -> Result<Vec<Answer>, QueryError> {
        let mut out = Vec::new();
        for phi in PROBE_PHIS {
            let value = c
                .quantile(phi)
                .map_err(|e| QueryError::Protocol(e.to_string()))?;
            out.push(Answer::QuantileAt { phi, value });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn sample_size_stays_bounded() {
        let config = SamplingConfig::new(4, 0.1, 0.05, 7).unwrap();
        let cap = 2 * config.target_sample_size();
        let mut cluster = sampling_cluster(config).unwrap();
        let mut st = 1u64;
        for i in 0..200_000u64 {
            cluster
                .feed(SiteId((i % 4) as u32), xorshift(&mut st))
                .unwrap();
            assert!(cluster.coordinator().sample_size() <= cap + 1);
        }
        assert!(cluster.coordinator().level() > 0, "level must advance");
    }

    #[test]
    fn quantiles_approximately_correct() {
        let epsilon = 0.1;
        let config = SamplingConfig::new(4, epsilon, 0.01, 42).unwrap();
        let mut cluster = sampling_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        let mut st = 3u64;
        for i in 0..150_000u64 {
            let x = xorshift(&mut st) % (1 << 30);
            oracle.observe(x);
            cluster.feed(SiteId((i % 4) as u32), x).unwrap();
        }
        for phi in [0.1, 0.5, 0.9] {
            let q = cluster
                .coordinator()
                .quantile(phi)
                .unwrap()
                .expect("nonempty");
            // Randomized guarantee; fixed seed, check at 2ε slack.
            assert!(
                oracle.quantile_ok(q, phi, 2.0 * epsilon),
                "phi {phi}: {q} rank {} of {}",
                oracle.rank_lt(q),
                oracle.total()
            );
        }
    }

    #[test]
    fn heavy_hitters_found_with_high_probability() {
        let epsilon = 0.05;
        let config = SamplingConfig::new(4, epsilon, 0.01, 11).unwrap();
        let mut cluster = sampling_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        let mut st = 5u64;
        for i in 0..120_000u64 {
            let x = if i % 4 == 0 {
                42
            } else {
                1000 + xorshift(&mut st) % (1 << 20)
            };
            oracle.observe(x);
            cluster.feed(SiteId((i % 4) as u32), x).unwrap();
        }
        let hh = cluster.coordinator().heavy_hitters(0.2).unwrap();
        assert!(hh.contains(&42), "missed the 25% item: {hh:?}");
        // No wild false positives.
        let n = oracle.total() as f64;
        for &x in &hh {
            assert!(
                oracle.frequency(x) as f64 >= (0.2 - 2.0 * epsilon) * n,
                "false positive {x}"
            );
        }
    }

    #[test]
    fn cost_is_independent_of_k_shape() {
        // For fixed ε, the dominant S·log n term does not grow with k —
        // this is what breaks the deterministic Ω(k/ε·log n) bound when
        // ε ≫ 1/k.
        let run = |k: u32| {
            let config = SamplingConfig::new(k, 0.1, 0.05, 9).unwrap();
            let mut cluster = sampling_cluster(config).unwrap();
            let mut st = 1u64;
            for i in 0..200_000u64 {
                cluster
                    .feed(SiteId((i % k as u64) as u32), xorshift(&mut st))
                    .unwrap();
            }
            cluster.meter().total_words()
        };
        let w4 = run(4);
        let w32 = run(32);
        // Deterministic protocols would grow ~8x; sampling grows only by
        // the level-broadcast term.
        assert!(
            (w32 as f64) < (w4 as f64) * 2.0,
            "sampling cost grew with k: {w4} -> {w32}"
        );
    }

    #[test]
    fn stale_level_forwards_are_subsampled() {
        // Directly exercise the stale-level path: a coordinator at level 2
        // receiving level-0 forwards keeps ~1/4 of them. A tiny ε makes
        // the target sample huge so no level-up interferes mid-test.
        let config = SamplingConfig::new(2, 0.01, 0.1, 1).unwrap();
        let mut coord = SamplingCoordinator::new(config);
        coord.level = 2;
        let mut out = Outbox::new();
        let mut kept = 0usize;
        for i in 0..4000u64 {
            let before = coord.sample_size();
            coord.on_message(SiteId(0), Sampled { item: i, level: 0 }, &mut out);
            if coord.sample_size() > before {
                kept += 1;
            }
        }
        let frac = kept as f64 / 4000.0;
        assert!(
            (0.18..0.32).contains(&frac),
            "expected ~25% keep rate, got {frac}"
        );
    }

    #[test]
    fn config_validation() {
        assert!(SamplingConfig::new(1, 0.1, 0.1, 0).is_err());
        assert!(SamplingConfig::new(4, 0.0, 0.1, 0).is_err());
        assert!(SamplingConfig::new(4, 0.1, 0.9, 0).is_err());
        let c = SamplingConfig::new(4, 0.1, 0.05, 0).unwrap();
        assert!(c.target_sample_size() > 100);
    }
}
