//! §5 open problem — tracking heavy hitters over a **sliding window**.
//!
//! The paper closes with: "Another possible direction is to design
//! algorithms to track the heavy hitters and quantiles within a sliding
//! window in the distributed streaming model." This module implements a
//! natural epoch-block protocol for the count-based window (the last `W`
//! arrivals across all sites):
//!
//! * Global time is divided into **epochs** of `E = ⌈εW/4⌉` arrivals. The
//!   coordinator detects epoch boundaries from a (1±εW/8)-accurate global
//!   count maintained exactly like the paper's counter building block
//!   (site threshold `εW/8k`), and broadcasts each boundary.
//! * Each site keeps one unreported counter per item (across epochs) and
//!   reports `(current_epoch, item, delta)` when it reaches `εW/8k` — the
//!   §2.1 trigger with thresholds fixed relative to `W` instead of the
//!   growing `n`.
//! * The coordinator keeps per-epoch tracked counts `C.m_x[e]` and answers
//!   window queries from the last `⌊W/E⌋` complete epochs; epochs that
//!   slide out of the window are dropped on both sides.
//!
//! Error budget per item: unreported in-window mass plus pre-window mass
//! misattributed into the window are each at most `k·(εW/8k)` (one pending
//! buffer per site), and approximating the window by whole epochs
//! misplaces at most `E + εW/8 ≈ 3εW/8` boundary items — under `3εW/4`
//! in total, so the tracked set is correct within a small constant times
//! ε (tests verify at 2ε). Communication is O(k/ε) words per `W` arrivals
//! (8k/ε item reports + 8k/ε count reports + (4/ε)·k boundary broadcasts),
//! the window analogue of the paper's O(k/ε) per doubling round.

use dtrack_hash::FxHashMap;

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId, PROBE_PHIS,
};

use dtrack_wire::{put_u64, put_u8, DecodeError, WireMessage, WireReader};

use crate::common::{check_epsilon, check_phi, check_sites, CoreError};

/// Parameters of the sliding-window heavy-hitter tracker.
#[derive(Debug, Clone, Copy)]
pub struct WindowHhConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
    /// Window length W in items (counts arrivals across all sites).
    pub window: u64,
}

impl WindowHhConfig {
    /// Validated configuration. Requires `W >= 16k/ε` so every threshold
    /// is at least one item.
    pub fn new(k: u32, epsilon: f64, window: u64) -> Result<Self, CoreError> {
        check_sites(k)?;
        check_epsilon(epsilon)?;
        let min_w = (16.0 * k as f64 / epsilon).ceil() as u64;
        if window < min_w {
            // Below this, forwarding every item is both cheaper and exact.
            return Err(CoreError::BadEpsilon(epsilon));
        }
        Ok(WindowHhConfig { k, epsilon, window })
    }

    /// Epoch width `E = ⌈εW/4⌉`.
    pub fn epoch_len(&self) -> u64 {
        ((self.epsilon * self.window as f64 / 4.0).ceil() as u64).max(1)
    }

    /// Number of complete epochs covering the window.
    pub fn epochs_in_window(&self) -> u64 {
        (self.window / self.epoch_len()).max(1)
    }

    /// Per-site reporting threshold `εW/8k` (items and counts).
    fn site_threshold(&self) -> u64 {
        ((self.epsilon * self.window as f64 / (8.0 * self.k as f64)).floor() as u64).max(1)
    }
}

/// Upstream messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WUp {
    /// `delta` arrivals at this site since its last count report.
    CountDelta { delta: u64 },
    /// Item `item` gained `delta` occurrences in epoch `epoch` at this
    /// site.
    ItemDelta { epoch: u64, item: u64, delta: u64 },
}

impl MessageSize for WUp {
    fn size_words(&self) -> u64 {
        match self {
            WUp::CountDelta { .. } => 1,
            WUp::ItemDelta { .. } => 3,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            WUp::CountDelta { .. } => "whh/count",
            WUp::ItemDelta { .. } => "whh/item",
        }
    }
}

/// Downstream message: a new epoch has begun.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewEpoch(pub u64);

impl MessageSize for NewEpoch {
    fn size_words(&self) -> u64 {
        2
    }
    fn kind(&self) -> &'static str {
        "whh/new-epoch"
    }
}

impl WireMessage for WUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            WUp::CountDelta { delta } => {
                put_u8(out, 0);
                put_u64(out, *delta);
            }
            WUp::ItemDelta { epoch, item, delta } => {
                put_u8(out, 1);
                put_u64(out, *epoch);
                put_u64(out, *item);
                put_u64(out, *delta);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("WUp")?;
        match tag {
            0 => Ok(WUp::CountDelta { delta: r.u64()? }),
            1 => Ok(WUp::ItemDelta {
                epoch: r.u64()?,
                item: r.u64()?,
                delta: r.u64()?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "WUp",
                tag,
                offset,
            }),
        }
    }
}

impl WireMessage for NewEpoch {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(NewEpoch(r.u64()?))
    }
}

/// A sliding-window site.
#[derive(Debug, Clone)]
pub struct WindowHhSite {
    config: WindowHhConfig,
    epoch: u64,
    count_unrep: u64,
    /// Unreported per-item increments (carried across epochs; attributed
    /// to the epoch current at report time).
    unrep: FxHashMap<u64, u64>,
}

impl WindowHhSite {
    /// Fresh site.
    pub fn new(config: WindowHhConfig) -> Self {
        WindowHhSite {
            config,
            epoch: 0,
            count_unrep: 0,
            unrep: FxHashMap::default(),
        }
    }

    /// Number of live per-item slots (space usage).
    pub fn entries(&self) -> usize {
        self.unrep.len()
    }
}

impl Site for WindowHhSite {
    type Item = u64;
    type Up = WUp;
    type Down = NewEpoch;

    fn on_item(&mut self, item: u64, out: &mut Vec<WUp>) {
        let t = self.config.site_threshold();
        self.count_unrep += 1;
        if self.count_unrep >= t {
            out.push(WUp::CountDelta {
                delta: self.count_unrep,
            });
            self.count_unrep = 0;
        }
        let slot = self.unrep.entry(item).or_insert(0);
        *slot += 1;
        if *slot >= t {
            out.push(WUp::ItemDelta {
                epoch: self.epoch,
                item,
                delta: *slot,
            });
            *slot = 0;
        }
    }

    fn on_message(&mut self, msg: &NewEpoch, _out: &mut Vec<WUp>) {
        self.epoch = msg.0;
        // Pending sub-threshold mass carries over (it will be attributed
        // to the epoch current at report time; the misattribution is
        // bounded by one threshold per site per item). Drop exhausted
        // slots to keep the map tidy.
        self.unrep.retain(|_, v| *v > 0);
    }
}

/// The sliding-window coordinator.
#[derive(Debug, Clone)]
pub struct WindowHhCoordinator {
    config: WindowHhConfig,
    /// Total arrivals reported (within εW/8 of the truth).
    count: u64,
    epoch: u64,
    /// Arrivals counted at the start of the current epoch.
    epoch_started_at: u64,
    /// Per-epoch tracked frequencies, keyed by epoch id.
    per_epoch: FxHashMap<u64, FxHashMap<u64, u64>>,
    /// Per-epoch tracked arrival totals.
    epoch_totals: FxHashMap<u64, u64>,
    epochs_bumped: u64,
}

impl WindowHhCoordinator {
    /// Fresh coordinator.
    pub fn new(config: WindowHhConfig) -> Self {
        WindowHhCoordinator {
            config,
            count: 0,
            epoch: 0,
            epoch_started_at: 0,
            per_epoch: FxHashMap::default(),
            epoch_totals: FxHashMap::default(),
            epochs_bumped: 0,
        }
    }

    /// Epochs currently retained (live window plus the in-progress one).
    pub fn live_epochs(&self) -> usize {
        self.per_epoch.len()
    }

    /// Number of epoch boundaries broadcast so far.
    pub fn epochs_bumped(&self) -> u64 {
        self.epochs_bumped
    }

    /// Epoch ids inside the tracked window (the last `epochs_in_window`
    /// *complete* epochs, plus the in-progress epoch).
    fn window_epochs(&self) -> impl Iterator<Item = u64> + '_ {
        let lw = self.config.epochs_in_window();
        let lo = (self.epoch + 1).saturating_sub(lw);
        lo..=self.epoch
    }

    /// Tracked window size (sum of tracked epoch totals in the window).
    pub fn window_estimate(&self) -> u64 {
        self.window_epochs()
            .map(|e| self.epoch_totals.get(&e).copied().unwrap_or(0))
            .sum()
    }

    /// Tracked frequency of `x` within the window.
    pub fn frequency(&self, x: u64) -> u64 {
        self.window_epochs()
            .map(|e| {
                self.per_epoch
                    .get(&e)
                    .and_then(|m| m.get(&x))
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// The tracked φ-heavy hitters of the window, sorted
    /// (rule: tracked ratio ≥ φ − ε/2, as in §2.1).
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<u64>, CoreError> {
        check_phi(phi)?;
        let w = self.window_estimate();
        if w == 0 {
            return Ok(Vec::new());
        }
        let mut totals: FxHashMap<u64, u64> = FxHashMap::default();
        for e in self.window_epochs() {
            if let Some(m) = self.per_epoch.get(&e) {
                for (&x, &c) in m {
                    *totals.entry(x).or_insert(0) += c;
                }
            }
        }
        let thresh = (phi - self.config.epsilon / 2.0) * w as f64;
        let mut out: Vec<u64> = totals
            .into_iter()
            .filter(|&(_, c)| c as f64 >= thresh)
            .map(|(x, _)| x)
            .collect();
        out.sort_unstable();
        Ok(out)
    }
}

impl Coordinator for WindowHhCoordinator {
    type Up = WUp;
    type Down = NewEpoch;

    fn on_message(&mut self, _from: SiteId, msg: WUp, out: &mut Outbox<NewEpoch>) {
        match msg {
            WUp::CountDelta { delta } => {
                self.count += delta;
                *self.epoch_totals.entry(self.epoch).or_insert(0) += delta;
                if self.count - self.epoch_started_at >= self.config.epoch_len() {
                    self.epoch += 1;
                    self.epochs_bumped += 1;
                    self.epoch_started_at = self.count;
                    out.broadcast(NewEpoch(self.epoch));
                    // Expire epochs that left the window.
                    let keep_from =
                        (self.epoch + 1).saturating_sub(self.config.epochs_in_window() + 1);
                    self.per_epoch.retain(|&e, _| e >= keep_from);
                    self.epoch_totals.retain(|&e, _| e >= keep_from);
                }
            }
            WUp::ItemDelta { epoch, item, delta } => {
                // Reports for expired epochs are dropped (their epoch has
                // left the window anyway).
                let keep_from = (self.epoch + 1).saturating_sub(self.config.epochs_in_window() + 1);
                if epoch >= keep_from {
                    *self
                        .per_epoch
                        .entry(epoch)
                        .or_default()
                        .entry(item)
                        .or_insert(0) += delta;
                }
            }
        }
    }
}

/// Convenience: build a full sliding-window cluster.
pub fn window_cluster(
    config: WindowHhConfig,
) -> Result<dtrack_sim::Cluster<WindowHhSite, WindowHhCoordinator>, CoreError> {
    let sites = (0..config.k).map(|_| WindowHhSite::new(config)).collect();
    dtrack_sim::Cluster::new(sites, WindowHhCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// [`Protocol`] adapter: the §5 sliding-window heavy-hitter tracker for
/// the [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct WindowHhProtocol {
    config: WindowHhConfig,
}

impl WindowHhProtocol {
    /// Wrap a validated [`WindowHhConfig`].
    pub fn new(config: WindowHhConfig) -> Self {
        WindowHhProtocol { config }
    }
}

impl Protocol for WindowHhProtocol {
    type Site = WindowHhSite;
    type Up = WUp;
    type Down = NewEpoch;
    type Coordinator = WindowHhCoordinator;

    fn label(&self) -> &'static str {
        "window-hh"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<WindowHhSite>, WindowHhCoordinator), String> {
        let sites = (0..k).map(|_| WindowHhSite::new(self.config)).collect();
        Ok((sites, WindowHhCoordinator::new(self.config)))
    }

    fn query(&self, c: &WindowHhCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Count => Ok(Answer::LengthEstimate(c.window_estimate())),
            Query::HeavyHitters { phi } => {
                let mut items = c
                    .heavy_hitters(phi)
                    .map_err(|e| QueryError::Protocol(e.to_string()))?;
                items.sort_unstable();
                Ok(Answer::HeavyHitters { phi, items })
            }
            Query::Frequency { x } => Ok(Answer::Frequency {
                x,
                count: c.frequency(x),
            }),
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &WindowHhCoordinator) -> Result<Vec<Answer>, QueryError> {
        Ok(vec![Answer::LengthEstimate(c.window_estimate())])
    }
}

/// Exact sliding-window oracle for tests and experiments.
#[derive(Debug, Clone)]
pub struct WindowOracle {
    window: u64,
    items: std::collections::VecDeque<u64>,
    freq: FxHashMap<u64, u64>,
}

impl WindowOracle {
    /// Oracle over the last `window` items.
    pub fn new(window: u64) -> Self {
        WindowOracle {
            window,
            items: std::collections::VecDeque::new(),
            freq: FxHashMap::default(),
        }
    }

    /// Record an arrival (expiring the oldest item when full).
    pub fn observe(&mut self, x: u64) {
        self.items.push_back(x);
        *self.freq.entry(x).or_insert(0) += 1;
        if self.items.len() as u64 > self.window {
            let old = self.items.pop_front().expect("nonempty");
            let c = self.freq.get_mut(&old).expect("tracked");
            *c -= 1;
            if *c == 0 {
                self.freq.remove(&old);
            }
        }
    }

    /// Current window size (≤ W).
    pub fn len(&self) -> u64 {
        self.items.len() as u64
    }

    /// True when no items are in the window.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Exact frequency of `x` in the window.
    pub fn frequency(&self, x: u64) -> u64 {
        self.freq.get(&x).copied().unwrap_or(0)
    }

    /// Exact φ-heavy hitters of the window, sorted.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<u64> {
        let thresh = phi * self.len() as f64;
        let mut out: Vec<u64> = self
            .freq
            .iter()
            .filter(|&(_, &c)| c as f64 >= thresh)
            .map(|(&x, _)| x)
            .collect();
        out.sort_unstable();
        out
    }

    /// First violation of the ε-window guarantee in `reported`, if any.
    pub fn check(&self, reported: &[u64], phi: f64, epsilon: f64) -> Option<String> {
        let w = self.len() as f64;
        for &x in reported {
            if (self.frequency(x) as f64) < (phi - epsilon) * w {
                return Some(format!(
                    "false positive {x}: window freq {} < (φ−ε)W = {}",
                    self.frequency(x),
                    (phi - epsilon) * w
                ));
            }
        }
        for x in self.heavy_hitters(phi + epsilon) {
            if !reported.contains(&x) {
                return Some(format!(
                    "false negative {x}: window freq {} >= (φ+ε)W",
                    self.frequency(x)
                ));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Sliding-window quantiles
// ---------------------------------------------------------------------

use dtrack_sketch::{EquiDepthSummary, ExactOrdered, MergedSummary};

/// Upstream messages of the window-quantile protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WqUp {
    /// `delta` arrivals at this site since its last count report.
    CountDelta { delta: u64 },
    /// Equi-depth summary of the items this site received during the
    /// epoch that just closed.
    EpochSummary {
        epoch: u64,
        summary: EquiDepthSummary,
    },
}

impl MessageSize for WqUp {
    fn size_words(&self) -> u64 {
        match self {
            WqUp::CountDelta { .. } => 1,
            WqUp::EpochSummary { summary, .. } => summary.wire_words() + 1,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            WqUp::CountDelta { .. } => "wq/count",
            WqUp::EpochSummary { .. } => "wq/epoch-summary",
        }
    }
}

impl WireMessage for WqUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            WqUp::CountDelta { delta } => {
                put_u8(out, 0);
                put_u64(out, *delta);
            }
            WqUp::EpochSummary { epoch, summary } => {
                put_u8(out, 1);
                put_u64(out, *epoch);
                summary.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("WqUp")?;
        match tag {
            0 => Ok(WqUp::CountDelta { delta: r.u64()? }),
            1 => Ok(WqUp::EpochSummary {
                epoch: r.u64()?,
                summary: EquiDepthSummary::wire_decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "WqUp",
                tag,
                offset,
            }),
        }
    }
}

/// A sliding-window quantile site: buffers only the current epoch's items
/// and ships an equi-depth summary of them when the epoch closes.
///
/// Per-site space is O(E) = O(εW/4) for the buffer; the summary step is
/// chosen so the merged window rank error is at most εW/4. Communication
/// per window span W: L = 4/ε epoch closures, each shipping k summaries
/// totalling O(1/ε) words — O((k + 1/ε)/ε) words per window.
#[derive(Debug, Clone)]
pub struct WindowQuantileSite {
    config: WindowHhConfig,
    epoch: u64,
    count_unrep: u64,
    buffer: ExactOrdered,
}

impl WindowQuantileSite {
    /// Fresh site.
    pub fn new(config: WindowHhConfig) -> Self {
        WindowQuantileSite {
            config,
            epoch: 0,
            count_unrep: 0,
            buffer: ExactOrdered::new(),
        }
    }
}

impl Site for WindowQuantileSite {
    type Item = u64;
    type Up = WqUp;
    type Down = NewEpoch;

    fn on_item(&mut self, item: u64, out: &mut Vec<WqUp>) {
        self.buffer.insert(item);
        self.count_unrep += 1;
        if self.count_unrep >= self.config.site_threshold() {
            out.push(WqUp::CountDelta {
                delta: self.count_unrep,
            });
            self.count_unrep = 0;
        }
    }

    fn on_message(&mut self, msg: &NewEpoch, out: &mut Vec<WqUp>) {
        // Ship the closing epoch's summary. Step: the merged error over
        // L epochs and k sites must stay below εW/4, so each summary
        // contributes at most ε/4 · W/(L·k) = ε²W/(16k) rank error.
        let local = self.buffer.len();
        if local > 0 {
            let step = ((self.config.epsilon * self.config.epsilon * self.config.window as f64
                / (16.0 * self.config.k as f64))
                .floor() as u64)
                .max(1);
            let summary = EquiDepthSummary::from_sorted_counts(self.buffer.iter(), local, step);
            out.push(WqUp::EpochSummary {
                epoch: self.epoch,
                summary,
            });
        }
        self.buffer = ExactOrdered::new();
        self.epoch = msg.0;
    }
}

/// The sliding-window quantile coordinator: merged per-epoch summaries of
/// the last ⌊W/E⌋ epochs.
#[derive(Debug, Clone)]
pub struct WindowQuantileCoordinator {
    config: WindowHhConfig,
    count: u64,
    epoch: u64,
    epoch_started_at: u64,
    /// Per-epoch summaries, keyed by epoch id.
    summaries: FxHashMap<u64, Vec<EquiDepthSummary>>,
}

impl WindowQuantileCoordinator {
    /// Fresh coordinator.
    pub fn new(config: WindowHhConfig) -> Self {
        WindowQuantileCoordinator {
            config,
            count: 0,
            epoch: 0,
            epoch_started_at: 0,
            summaries: FxHashMap::default(),
        }
    }

    fn merged(&self) -> MergedSummary {
        let lw = self.config.epochs_in_window();
        let lo = (self.epoch + 1).saturating_sub(lw);
        let parts: Vec<EquiDepthSummary> = (lo..=self.epoch)
            .filter_map(|e| self.summaries.get(&e))
            .flatten()
            .cloned()
            .collect();
        MergedSummary::new(parts)
    }

    /// Tracked window size (items covered by retained summaries).
    pub fn window_estimate(&self) -> u64 {
        self.merged().total()
    }

    /// An ε-approximate φ-quantile of the window. `None` until the first
    /// epoch has closed.
    pub fn quantile(&self, phi: f64) -> Result<Option<u64>, CoreError> {
        check_phi(phi)?;
        let m = self.merged();
        let n = m.total();
        if n == 0 {
            return Ok(None);
        }
        Ok(m.select((phi * n as f64).round() as u64))
    }

    /// Estimate of the window `rank_lt(x)`.
    pub fn rank_lt(&self, x: u64) -> u64 {
        self.merged().rank_estimate(x)
    }
}

impl Coordinator for WindowQuantileCoordinator {
    type Up = WqUp;
    type Down = NewEpoch;

    fn on_message(&mut self, _from: SiteId, msg: WqUp, out: &mut Outbox<NewEpoch>) {
        match msg {
            WqUp::CountDelta { delta } => {
                self.count += delta;
                if self.count - self.epoch_started_at >= self.config.epoch_len() {
                    self.epoch += 1;
                    self.epoch_started_at = self.count;
                    out.broadcast(NewEpoch(self.epoch));
                    let keep_from =
                        (self.epoch + 1).saturating_sub(self.config.epochs_in_window() + 1);
                    self.summaries.retain(|&e, _| e >= keep_from);
                }
            }
            WqUp::EpochSummary { epoch, summary } => {
                let keep_from = (self.epoch + 1).saturating_sub(self.config.epochs_in_window() + 1);
                if epoch >= keep_from {
                    self.summaries.entry(epoch).or_default().push(summary);
                }
            }
        }
    }
}

/// Convenience: build a full sliding-window quantile cluster.
pub fn window_quantile_cluster(
    config: WindowHhConfig,
) -> Result<dtrack_sim::Cluster<WindowQuantileSite, WindowQuantileCoordinator>, CoreError> {
    let sites = (0..config.k)
        .map(|_| WindowQuantileSite::new(config))
        .collect();
    dtrack_sim::Cluster::new(sites, WindowQuantileCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// [`Protocol`] adapter: the §5 sliding-window quantile tracker for the
/// [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct WindowQuantileProtocol {
    config: WindowHhConfig,
}

impl WindowQuantileProtocol {
    /// Wrap a validated [`WindowHhConfig`].
    pub fn new(config: WindowHhConfig) -> Self {
        WindowQuantileProtocol { config }
    }
}

impl Protocol for WindowQuantileProtocol {
    type Site = WindowQuantileSite;
    type Up = WqUp;
    type Down = NewEpoch;
    type Coordinator = WindowQuantileCoordinator;

    fn label(&self) -> &'static str {
        "window-quantile"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(
        &self,
        k: u32,
    ) -> Result<(Vec<WindowQuantileSite>, WindowQuantileCoordinator), String> {
        let sites = (0..k)
            .map(|_| WindowQuantileSite::new(self.config))
            .collect();
        Ok((sites, WindowQuantileCoordinator::new(self.config)))
    }

    fn query(&self, c: &WindowQuantileCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Count => Ok(Answer::LengthEstimate(c.window_estimate())),
            Query::Quantile { phi } => {
                let value = c
                    .quantile(phi)
                    .map_err(|e| QueryError::Protocol(e.to_string()))?;
                Ok(Answer::QuantileAt { phi, value })
            }
            Query::RankLt { x } => Ok(Answer::RankLt {
                x,
                rank: c.rank_lt(x),
            }),
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &WindowQuantileCoordinator) -> Result<Vec<Answer>, QueryError> {
        let mut out = vec![Answer::LengthEstimate(c.window_estimate())];
        for phi in PROBE_PHIS {
            let value = c
                .quantile(phi)
                .map_err(|e| QueryError::Protocol(e.to_string()))?;
            out.push(Answer::QuantileAt { phi, value });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn oracle_slides() {
        let mut o = WindowOracle::new(3);
        for x in [1u64, 1, 2, 3] {
            o.observe(x);
        }
        // Window is [1, 2, 3].
        assert_eq!(o.len(), 3);
        assert_eq!(o.frequency(1), 1);
        assert_eq!(o.frequency(2), 1);
        o.observe(4); // window [2, 3, 4]
        assert_eq!(o.frequency(1), 0);
    }

    #[test]
    fn window_tracker_follows_a_departing_heavy_hitter() {
        // Item 7 dominates the first half of the stream, then vanishes;
        // once the window slides past, it must stop being reported.
        let k = 4;
        let epsilon = 0.1;
        let w = 20_000u64;
        let phi = 0.3;
        let config = WindowHhConfig::new(k, epsilon, w).unwrap();
        let mut cluster = window_cluster(config).unwrap();
        let mut oracle = WindowOracle::new(w);
        let mut st = 5u64;
        let n = 100_000u64;
        let mut reported_late = false;
        for i in 0..n {
            let x = if i < n / 2 && i % 2 == 0 {
                7
            } else {
                1000 + xorshift(&mut st) % 50_000
            };
            oracle.observe(x);
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
            if i % 1000 == 999 {
                let hh = cluster.coordinator().heavy_hitters(phi).unwrap();
                if let Some(v) = oracle.check(&hh, phi, 2.0 * epsilon) {
                    panic!("item {i}: {v}");
                }
                if i > n / 2 + 2 * w {
                    reported_late |= hh.contains(&7);
                }
            }
        }
        assert!(
            !reported_late,
            "item 7 was still reported long after leaving the window"
        );
    }

    #[test]
    fn window_correctness_on_uniform_churn() {
        let k = 3;
        let epsilon = 0.1;
        let w = 15_000u64;
        let phi = 0.2;
        let config = WindowHhConfig::new(k, epsilon, w).unwrap();
        let mut cluster = window_cluster(config).unwrap();
        let mut oracle = WindowOracle::new(w);
        let mut st = 9u64;
        for i in 0..80_000u64 {
            // A rotating heavy item: id changes every 10k arrivals.
            let hot = 10 + i / 10_000;
            let x = if i % 3 == 0 {
                hot
            } else {
                1 << (20 + (xorshift(&mut st) % 20))
            };
            oracle.observe(x);
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
            if i % 777 == 0 && i > w {
                let hh = cluster.coordinator().heavy_hitters(phi).unwrap();
                if let Some(v) = oracle.check(&hh, phi, 2.0 * epsilon) {
                    panic!("item {i}: {v}");
                }
            }
        }
    }

    #[test]
    fn communication_is_linear_in_stream_over_window() {
        // Cost should be ~O(k/ε) words per W arrivals: doubling the
        // stream doubles the words, unlike the log-growth of the infinite
        // -window protocol.
        let k = 4;
        let epsilon = 0.1;
        let w = 20_000u64;
        let run = |n: u64| {
            let config = WindowHhConfig::new(k, epsilon, w).unwrap();
            let mut cluster = window_cluster(config).unwrap();
            let mut st = 3u64;
            for i in 0..n {
                cluster
                    .feed(SiteId((i % k as u64) as u32), xorshift(&mut st) % 1000)
                    .unwrap();
            }
            cluster.meter().total_words()
        };
        let w1 = run(100_000);
        let w2 = run(200_000);
        let ratio = w2 as f64 / w1 as f64;
        assert!(
            (1.6..2.4).contains(&ratio),
            "expected ~2x words for 2x stream, got {ratio}"
        );
        // And the per-window cost is O(k/ε)-ish.
        let per_window = w1 as f64 / (100_000.0 / w as f64);
        let unit = k as f64 / epsilon;
        assert!(
            per_window < unit * 40.0,
            "per-window cost {per_window} >> k/eps = {unit}"
        );
    }

    #[test]
    fn memory_is_bounded_by_window() {
        let k = 3;
        let epsilon = 0.2;
        let w = 10_000u64;
        let config = WindowHhConfig::new(k, epsilon, w).unwrap();
        let mut cluster = window_cluster(config).unwrap();
        let mut st = 7u64;
        for i in 0..100_000u64 {
            cluster
                .feed(SiteId((i % k as u64) as u32), xorshift(&mut st))
                .unwrap();
        }
        // Coordinator keeps only the window's worth of epochs.
        let max_epochs = config.epochs_in_window() as usize + 2;
        assert!(
            cluster.coordinator().live_epochs() <= max_epochs,
            "{} live epochs > {max_epochs}",
            cluster.coordinator().live_epochs()
        );
    }

    #[test]
    fn config_validation() {
        assert!(WindowHhConfig::new(1, 0.1, 100_000).is_err());
        assert!(
            WindowHhConfig::new(4, 0.1, 100).is_err(),
            "window too small"
        );
        let c = WindowHhConfig::new(4, 0.1, 100_000).unwrap();
        assert_eq!(c.epoch_len(), 2500);
        assert_eq!(c.epochs_in_window(), 40);
    }

    #[test]
    fn window_quantiles_follow_a_distribution_shift() {
        // First W items come from a low band, then a high band; once the
        // window slides past the boundary, every quantile must move to
        // the new band.
        let k = 4;
        let epsilon = 0.1;
        let w = 20_000u64;
        let config = WindowHhConfig::new(k, epsilon, w).unwrap();
        let mut cluster = window_quantile_cluster(config).unwrap();
        let mut st = 3u64;
        let n = 120_000u64;
        let band = 1u64 << 30;
        // Track a local window oracle of raw values for rank checks.
        let mut oracle_items: std::collections::VecDeque<u64> = Default::default();
        for i in 0..n {
            let x = if i < n / 2 {
                xorshift(&mut st) % band
            } else {
                band + xorshift(&mut st) % band
            };
            oracle_items.push_back(x);
            if oracle_items.len() as u64 > w {
                oracle_items.pop_front();
            }
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
            if i % 4001 == 0 && i > w {
                let mut sorted: Vec<u64> = oracle_items.iter().copied().collect();
                sorted.sort_unstable();
                let wn = sorted.len() as u64;
                for phi in [0.25f64, 0.5, 0.75] {
                    let q = cluster
                        .coordinator()
                        .quantile(phi)
                        .unwrap()
                        .expect("nonempty");
                    let r_lo = sorted.partition_point(|&y| y < q) as u64;
                    let r_hi = sorted.partition_point(|&y| y <= q) as u64;
                    let target = phi * wn as f64;
                    let dist = if target < r_lo as f64 {
                        r_lo as f64 - target
                    } else if target > r_hi as f64 {
                        target - r_hi as f64
                    } else {
                        0.0
                    };
                    assert!(
                        dist <= 2.0 * epsilon * wn as f64,
                        "item {i}, phi {phi}: quantile {q} off by {dist} ranks"
                    );
                }
            }
        }
        // Late in the run the median must live in the high band.
        let med = cluster.coordinator().quantile(0.5).unwrap().unwrap();
        assert!(med >= band, "median {med} did not follow the shift");
    }

    #[test]
    fn window_quantile_cost_linear_in_stream() {
        let k = 4;
        let epsilon = 0.1;
        let w = 20_000u64;
        let run = |n: u64| {
            let config = WindowHhConfig::new(k, epsilon, w).unwrap();
            let mut cluster = window_quantile_cluster(config).unwrap();
            let mut st = 11u64;
            for i in 0..n {
                cluster
                    .feed(SiteId((i % k as u64) as u32), xorshift(&mut st))
                    .unwrap();
            }
            cluster.meter().total_words()
        };
        let w1 = run(100_000);
        let w2 = run(200_000);
        let ratio = w2 as f64 / w1 as f64;
        assert!(
            (1.6..2.4).contains(&ratio),
            "expected ~2x words for 2x stream, got {ratio}"
        );
    }

    #[test]
    fn window_quantile_memory_bounded() {
        let k = 3;
        let epsilon = 0.2;
        let w = 12_000u64;
        let config = WindowHhConfig::new(k, epsilon, w).unwrap();
        let mut cluster = window_quantile_cluster(config).unwrap();
        let mut st = 5u64;
        for i in 0..60_000u64 {
            cluster
                .feed(SiteId((i % k as u64) as u32), xorshift(&mut st))
                .unwrap();
        }
        // The coordinator retains at most a window's worth of summaries.
        let max_epochs = config.epochs_in_window() + 2;
        assert!(cluster.coordinator().summaries.len() as u64 <= max_epochs);
        // The tracked window size approximates W.
        let est = cluster.coordinator().window_estimate();
        assert!(
            est as f64 > 0.7 * w as f64 && est <= w + config.epoch_len(),
            "window estimate {est} vs W = {w}"
        );
    }
}
