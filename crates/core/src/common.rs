//! Shared pieces of the tracking protocols: parameter validation, value
//! ranges, and reply collection.

use std::fmt;

use dtrack_wire::{put_bool, put_u64, DecodeError, WireMessage, WireReader};

/// Errors from protocol construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// ε outside (0, 0.5].
    BadEpsilon(f64),
    /// φ outside [0, 1].
    BadPhi(f64),
    /// k < 2.
    BadSiteCount(u32),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadEpsilon(e) => write!(f, "epsilon must be in (0, 0.5], got {e}"),
            CoreError::BadPhi(p) => write!(f, "phi must be in [0, 1], got {p}"),
            CoreError::BadSiteCount(k) => write!(f, "need at least 2 sites, got {k}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Validate a protocol error parameter ε.
pub fn check_epsilon(epsilon: f64) -> Result<(), CoreError> {
    if epsilon.is_finite() && epsilon > 0.0 && epsilon <= 0.5 {
        Ok(())
    } else {
        Err(CoreError::BadEpsilon(epsilon))
    }
}

/// Validate a quantile/heavy-hitter fraction φ.
pub fn check_phi(phi: f64) -> Result<(), CoreError> {
    if phi.is_finite() && (0.0..=1.0).contains(&phi) {
        Ok(())
    } else {
        Err(CoreError::BadPhi(phi))
    }
}

/// Validate the number of sites k.
pub fn check_sites(k: u32) -> Result<(), CoreError> {
    if k >= 2 {
        Ok(())
    } else {
        Err(CoreError::BadSiteCount(k))
    }
}

/// A half-open value range `[lo, hi)`; `hi = None` means unbounded above
/// (so `ValueRange::all()` covers the whole universe, including
/// `u64::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound; `None` = +∞.
    pub hi: Option<u64>,
}

impl ValueRange {
    /// The whole universe.
    pub fn all() -> Self {
        ValueRange { lo: 0, hi: None }
    }

    /// `[lo, hi)`.
    pub fn new(lo: u64, hi: Option<u64>) -> Self {
        debug_assert!(hi.is_none_or(|h| lo < h), "empty range [{lo}, {hi:?})");
        ValueRange { lo, hi }
    }

    /// Does the range contain `x`?
    #[inline]
    pub fn contains(&self, x: u64) -> bool {
        x >= self.lo && self.hi.is_none_or(|h| x < h)
    }

    /// Wire size in words (lo and an encoded hi).
    pub fn words(&self) -> u64 {
        2
    }
}

impl WireMessage for ValueRange {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.lo);
        put_bool(out, self.hi.is_some());
        if let Some(hi) = self.hi {
            put_u64(out, hi);
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let lo = r.u64()?;
        let hi = if r.bool()? { Some(r.u64()?) } else { None };
        Ok(ValueRange { lo, hi })
    }
}

impl fmt::Display for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(h) => write!(f, "[{}, {})", self.lo, h),
            None => write!(f, "[{}, +inf)", self.lo),
        }
    }
}

/// Collects one reply from each of `k` sites during a poll.
#[derive(Debug, Clone)]
pub struct KCollector<T> {
    slots: Vec<Option<T>>,
    got: u32,
}

impl<T> KCollector<T> {
    /// Expect `k` replies.
    pub fn new(k: u32) -> Self {
        KCollector {
            slots: (0..k).map(|_| None).collect(),
            got: 0,
        }
    }

    /// Record the reply from site `idx`. Returns `true` once all replies
    /// have arrived. A duplicate reply from the same site replaces the old
    /// one without double counting.
    pub fn put(&mut self, idx: usize, value: T) -> bool {
        if idx >= self.slots.len() {
            return false;
        }
        if self.slots[idx].is_none() {
            self.got += 1;
        }
        self.slots[idx] = Some(value);
        self.got as usize == self.slots.len()
    }

    /// True when all replies are in.
    pub fn complete(&self) -> bool {
        self.got as usize == self.slots.len()
    }

    /// Take the replies, in site order.
    ///
    /// # Panics
    /// Panics if called before [`Self::complete`].
    pub fn take(self) -> Vec<T> {
        assert!(
            self.got as usize == self.slots.len(),
            "KCollector::take before all replies arrived"
        );
        self.slots
            .into_iter()
            .map(|s| s.expect("complete"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.01).is_ok());
        assert!(check_epsilon(0.5).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(0.51).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
    }

    #[test]
    fn phi_validation() {
        assert!(check_phi(0.0).is_ok());
        assert!(check_phi(0.5).is_ok());
        assert!(check_phi(1.0).is_ok());
        assert!(check_phi(-0.1).is_err());
        assert!(check_phi(1.1).is_err());
    }

    #[test]
    fn sites_validation() {
        assert!(check_sites(2).is_ok());
        assert!(check_sites(1).is_err());
        assert_eq!(
            check_sites(0).unwrap_err().to_string(),
            "need at least 2 sites, got 0"
        );
    }

    #[test]
    fn value_range_contains() {
        let r = ValueRange::new(10, Some(20));
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
        let all = ValueRange::all();
        assert!(all.contains(0));
        assert!(all.contains(u64::MAX));
        assert_eq!(all.to_string(), "[0, +inf)");
        assert_eq!(r.to_string(), "[10, 20)");
    }

    #[test]
    fn kcollector_gathers_in_order() {
        let mut c: KCollector<u64> = KCollector::new(3);
        assert!(!c.put(1, 10));
        assert!(!c.put(0, 5));
        assert!(!c.complete());
        // Duplicate from site 0 does not complete the poll.
        assert!(!c.put(0, 6));
        assert!(c.put(2, 20));
        assert!(c.complete());
        assert_eq!(c.take(), vec![6, 10, 20]);
    }

    #[test]
    fn kcollector_ignores_out_of_range() {
        let mut c: KCollector<u64> = KCollector::new(2);
        assert!(!c.put(7, 1));
        assert!(!c.complete());
    }

    #[test]
    #[should_panic(expected = "before all replies")]
    fn kcollector_take_panics_when_incomplete() {
        let c: KCollector<u64> = KCollector::new(2);
        c.take();
    }
}
