//! §2.1 — Tracking the heavy hitters with O(k/ε · log n) communication
//! (Theorem 2.1).
//!
//! ## Protocol
//!
//! Let `m` be the current size of A and `S_j.m` each site's copy of the
//! last synchronized global count.
//!
//! * **Site `S_j`**: on each arrival, increments `Δ(m)` and the arriving
//!   item's `Δ(m_x)`. When either reaches the threshold
//!   `t_j = ε·S_j.m / 3k`, the site sends `(all, t_j)` resp. `(x, t_j)`
//!   and resets the counter.
//! * **Coordinator**: accumulates the increments into `C.m` and `C.m_x`.
//!   After receiving `k` `all`-signals, it polls every site for its exact
//!   local count, sets `C.m` to the exact total, and broadcasts it; sites
//!   adopt the new `S_j.m` and reset `Δ(m)`.
//! * **Classification** (paper's rule (1)): report `x` as a φ-heavy hitter
//!   iff `C.m_x / C.m >= φ + ε/2`. Note φ enters *only* here — a single
//!   tracker answers heavy-hitter queries for every φ ≥ ε.
//!
//! The protocol maintains the paper's invariants
//!
//! ```text
//! (2)  m_x − εm/3 <= C.m_x <= m_x
//! (3)  m  − εm/3 <= C.m  <= m
//! ```
//!
//! which make rule (1) free of false positives below `(φ−ε)|A|` and false
//! negatives at or above `φ|A|`.
//!
//! Before the stream reaches `k/ε` items, every arrival is simply forwarded
//! (the paper's warm-up assumption); tracking begins once the coordinator
//! has seen `⌈k/ε⌉` items.
//!
//! ## Small space
//!
//! The site is generic over its [`FreqStore`]. With [`ExactFreqStore`] it
//! is the paper's main protocol; with [`SketchFreqStore`] (SpaceSaving,
//! capacity Θ(1/ε)) it is the "Implementing with small space" variant:
//! O(1/ε) words per site, with the sketch error folded into the
//! classification slack (use `ε_sketch = ε/6`, see DESIGN.md).

use dtrack_hash::FxHashMap;
use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId,
    HH_PROBE_PHIS,
};
use dtrack_sketch::store::{ExactFreqStore, SketchFreqStore};
use dtrack_sketch::FreqStore;
use dtrack_wire::{put_u64, put_u8, DecodeError, WireMessage, WireReader};

use crate::common::{check_epsilon, check_phi, check_sites, CoreError, KCollector};

/// Parameters of the heavy-hitter protocol.
#[derive(Debug, Clone, Copy)]
pub struct HhConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
    /// Number of `all`-signals that trigger a global re-sync. The paper
    /// uses exactly `k`; experiment E15 ablates this.
    pub resync_after: u32,
    /// Stream size at which tracking starts (items before that are
    /// forwarded verbatim). The paper assumes `k/ε`.
    pub warmup_target: u64,
}

impl HhConfig {
    /// Standard configuration from the paper: re-sync after `k` signals,
    /// warm up for `⌈k/ε⌉` items.
    pub fn new(k: u32, epsilon: f64) -> Result<Self, CoreError> {
        check_sites(k)?;
        check_epsilon(epsilon)?;
        Ok(HhConfig {
            k,
            epsilon,
            resync_after: k,
            warmup_target: (k as f64 / epsilon).ceil() as u64,
        })
    }

    /// Override the re-sync trigger (ablation experiments).
    pub fn with_resync_after(mut self, resync_after: u32) -> Self {
        self.resync_after = resync_after.max(1);
        self
    }

    /// Override the warm-up length.
    pub fn with_warmup_target(mut self, warmup_target: u64) -> Self {
        self.warmup_target = warmup_target.max(1);
        self
    }
}

/// Upstream messages (site → coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HhUp {
    /// Warm-up: forward the raw item.
    Raw { item: u64 },
    /// `(all, delta)` — the site's total count grew by `delta`.
    AllSignal { delta: u64 },
    /// `(x, delta)` — item `x`'s local count grew by `delta`.
    ItemSignal { item: u64, delta: u64 },
    /// Reply to a re-sync poll: the exact local count.
    CountReply { local: u64 },
}

impl MessageSize for HhUp {
    fn size_words(&self) -> u64 {
        match self {
            HhUp::Raw { .. } => 2,
            HhUp::AllSignal { .. } => 2,
            HhUp::ItemSignal { .. } => 3,
            HhUp::CountReply { .. } => 2,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            HhUp::Raw { .. } => "hh/raw",
            HhUp::AllSignal { .. } => "hh/all",
            HhUp::ItemSignal { .. } => "hh/item",
            HhUp::CountReply { .. } => "hh/count-reply",
        }
    }
}

/// Downstream messages (coordinator → site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HhDown {
    /// Warm-up over; adopt `m` as `S_j.m` and start tracking.
    Start { m: u64 },
    /// Request the exact local count.
    SyncPoll,
    /// New synchronized global count.
    NewCount { m: u64 },
}

impl MessageSize for HhDown {
    fn size_words(&self) -> u64 {
        match self {
            HhDown::Start { .. } => 2,
            HhDown::SyncPoll => 1,
            HhDown::NewCount { .. } => 2,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            HhDown::Start { .. } => "hh/start",
            HhDown::SyncPoll => "hh/sync-poll",
            HhDown::NewCount { .. } => "hh/new-count",
        }
    }
}

impl WireMessage for HhUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            HhUp::Raw { item } => {
                put_u8(out, 0);
                put_u64(out, *item);
            }
            HhUp::AllSignal { delta } => {
                put_u8(out, 1);
                put_u64(out, *delta);
            }
            HhUp::ItemSignal { item, delta } => {
                put_u8(out, 2);
                put_u64(out, *item);
                put_u64(out, *delta);
            }
            HhUp::CountReply { local } => {
                put_u8(out, 3);
                put_u64(out, *local);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("HhUp")?;
        match tag {
            0 => Ok(HhUp::Raw { item: r.u64()? }),
            1 => Ok(HhUp::AllSignal { delta: r.u64()? }),
            2 => Ok(HhUp::ItemSignal {
                item: r.u64()?,
                delta: r.u64()?,
            }),
            3 => Ok(HhUp::CountReply { local: r.u64()? }),
            tag => Err(DecodeError::BadTag {
                context: "HhUp",
                tag,
                offset,
            }),
        }
    }
}

impl WireMessage for HhDown {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            HhDown::Start { m } => {
                put_u8(out, 0);
                put_u64(out, *m);
            }
            HhDown::SyncPoll => put_u8(out, 1),
            HhDown::NewCount { m } => {
                put_u8(out, 2);
                put_u64(out, *m);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("HhDown")?;
        match tag {
            0 => Ok(HhDown::Start { m: r.u64()? }),
            1 => Ok(HhDown::SyncPoll),
            2 => Ok(HhDown::NewCount { m: r.u64()? }),
            tag => Err(DecodeError::BadTag {
                context: "HhDown",
                tag,
                offset,
            }),
        }
    }
}

/// A heavy-hitter tracking site, generic over its local frequency store.
#[derive(Debug, Clone)]
pub struct HhSite<F = ExactFreqStore> {
    config: HhConfig,
    store: F,
    /// `S_j.m`: last synchronized global count; 0 means warm-up.
    sm: u64,
    /// `Δ(m)`: local arrivals since the last `all`-signal or sync.
    delta_m: u64,
}

/// The exact-store site of the paper's main exposition.
pub type ExactHhSite = HhSite<ExactFreqStore>;
/// The O(1/ε)-space SpaceSaving-backed site.
pub type SketchHhSite = HhSite<SketchFreqStore>;

impl HhSite<ExactFreqStore> {
    /// Site with exact local frequencies.
    pub fn exact(config: HhConfig) -> Self {
        HhSite::with_store(config, ExactFreqStore::new())
    }
}

impl HhSite<SketchFreqStore> {
    /// Site with a SpaceSaving store of error `ε/6` (Θ(1/ε) counters),
    /// per the "Implementing with small space" paragraph.
    pub fn sketched(config: HhConfig) -> Self {
        let store = SketchFreqStore::with_epsilon(config.epsilon / 6.0);
        HhSite::with_store(config, store)
    }
}

impl<F: FreqStore> HhSite<F> {
    /// Site with a caller-provided store.
    pub fn with_store(config: HhConfig, store: F) -> Self {
        HhSite {
            config,
            store,
            sm: 0,
            delta_m: 0,
        }
    }

    /// The trigger threshold `t_j = max(1, ⌊ε·S_j.m / 3k⌋)`.
    pub fn threshold(&self) -> u64 {
        let t = (self.config.epsilon * self.sm as f64 / (3.0 * self.config.k as f64)).floor();
        (t as u64).max(1)
    }

    /// How many consecutive arrivals of `x` at this site would trigger the
    /// next message. This is the trigger-threshold introspection the
    /// Lemma 2.3 adversary is entitled to (deterministic protocols hide
    /// nothing from an adversary that knows the algorithm and the input).
    pub fn remaining_until_message(&self, x: u64) -> u64 {
        if self.sm == 0 {
            return 1; // warm-up forwards every arrival
        }
        let t = self.threshold();
        let by_all = t.saturating_sub(self.delta_m);
        let by_item = t.saturating_sub(self.store.unreported(x));
        by_all.min(by_item).max(1)
    }

    /// The local store (oracle access).
    pub fn store(&self) -> &F {
        &self.store
    }

    /// Exact number of items received at this site.
    pub fn local_count(&self) -> u64 {
        self.store.total()
    }
}

impl<F: FreqStore> Site for HhSite<F> {
    type Item = u64;
    type Up = HhUp;
    type Down = HhDown;

    fn on_item(&mut self, item: u64, out: &mut Vec<HhUp>) {
        let unreported = self.store.observe(item);
        if self.sm == 0 {
            // Warm-up: forward and keep nothing unreported.
            self.store.mark_reported(item, unreported);
            out.push(HhUp::Raw { item });
            return;
        }
        self.delta_m += 1;
        let t = self.threshold();
        if self.delta_m >= t {
            out.push(HhUp::AllSignal {
                delta: self.delta_m,
            });
            self.delta_m = 0;
        }
        if unreported >= t {
            out.push(HhUp::ItemSignal {
                item,
                delta: unreported,
            });
            self.store.mark_reported(item, unreported);
        }
    }

    fn on_message(&mut self, msg: &HhDown, out: &mut Vec<HhUp>) {
        match *msg {
            HhDown::Start { m } | HhDown::NewCount { m } => {
                self.sm = m;
                self.delta_m = 0;
            }
            HhDown::SyncPoll => out.push(HhUp::CountReply {
                local: self.store.total(),
            }),
        }
    }
}

/// Tracking phase of the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup,
    Tracking,
}

/// The heavy-hitter coordinator.
#[derive(Debug, Clone)]
pub struct HhCoordinator {
    config: HhConfig,
    phase: Phase,
    /// `C.m`.
    m: u64,
    /// `C.m_x` for every item ever reported.
    counts: FxHashMap<u64, u64>,
    all_signals: u32,
    sync: Option<KCollector<u64>>,
    resyncs: u64,
}

impl HhCoordinator {
    /// Fresh coordinator.
    pub fn new(config: HhConfig) -> Self {
        HhCoordinator {
            config,
            phase: Phase::Warmup,
            m: 0,
            counts: FxHashMap::default(),
            all_signals: 0,
            sync: None,
            resyncs: 0,
        }
    }

    /// `C.m`, the tracked global count (within εm/3 of |A|).
    pub fn global_count(&self) -> u64 {
        self.m
    }

    /// `C.m_x`, the tracked frequency of `x` (within εm/3 of m_x, from
    /// below).
    pub fn frequency(&self, x: u64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// True while the protocol is still forwarding raw items.
    pub fn in_warmup(&self) -> bool {
        self.phase == Phase::Warmup
    }

    /// Number of global re-syncs performed so far — the paper's "rounds",
    /// bounded by `log_{1+ε/3} n = O(log n / ε)`.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Number of items with a tracked count (coordinator memory).
    pub fn tracked_items(&self) -> usize {
        self.counts.len()
    }

    /// Classify `x`: report iff `C.m_x / C.m >= φ − ε/2` (exact rule
    /// during warm-up).
    ///
    /// Note on the constant: the paper's rule (1) is printed as
    /// `C.m_x/C.m >= φ + ε/2`, but its own correctness argument shows the
    /// tracked ratio lies within ε/2 of the true ratio, and invariant (2)
    /// only guarantees a true heavy hitter's tracked ratio exceeds
    /// `φ − ε/3` — so the printed threshold would miss boundary heavy
    /// hitters (our Lemma 2.2 adversarial input exhibits exactly that).
    /// With `φ − ε/2` both directions follow: a true φ-heavy hitter has
    /// tracked ratio `> φ − ε/3 > φ − ε/2`, and an item below `(φ−ε)|A|`
    /// has tracked ratio `< φ − ε + ε/2 = φ − ε/2`. See DESIGN.md.
    pub fn is_heavy(&self, x: u64, phi: f64) -> bool {
        if self.m == 0 {
            return false;
        }
        let ratio = self.frequency(x) as f64 / self.m as f64;
        match self.phase {
            Phase::Warmup => ratio >= phi,
            Phase::Tracking => ratio >= phi - self.config.epsilon / 2.0,
        }
    }

    /// The tracked set of φ-heavy hitters, sorted. Any φ with
    /// `ε <= φ <= 1` is valid for a single tracker.
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<u64>, CoreError> {
        check_phi(phi)?;
        let mut out: Vec<u64> = self
            .counts
            .keys()
            .copied()
            .filter(|&x| self.is_heavy(x, phi))
            .collect();
        out.sort_unstable();
        Ok(out)
    }
}

impl Coordinator for HhCoordinator {
    type Up = HhUp;
    type Down = HhDown;

    fn on_message(&mut self, from: SiteId, msg: HhUp, out: &mut Outbox<HhDown>) {
        match msg {
            HhUp::Raw { item } => {
                // Under the threaded runtime a Raw can arrive just after
                // warm-up ended (sent before the site received Start).
                // Counting it exactly is correct in either phase: the site
                // marked it reported, so it appears nowhere else. Only the
                // warm-up→tracking *transition* broadcasts Start — the one
                // broadcast already reaches every site, including any
                // whose Raws are still in flight, so re-broadcasting per
                // late Raw would amplify each straggler into k metered
                // messages (free-running ingest can have a whole window
                // per site in flight at the transition).
                self.m += 1;
                *self.counts.entry(item).or_insert(0) += 1;
                if self.phase == Phase::Warmup && self.m >= self.config.warmup_target {
                    self.phase = Phase::Tracking;
                    out.broadcast(HhDown::Start { m: self.m });
                }
            }
            HhUp::AllSignal { delta } => {
                self.m += delta;
                if self.sync.is_none() {
                    self.all_signals += 1;
                    if self.all_signals >= self.config.resync_after {
                        self.sync = Some(KCollector::new(self.config.k));
                        out.broadcast(HhDown::SyncPoll);
                    }
                }
            }
            HhUp::ItemSignal { item, delta } => {
                *self.counts.entry(item).or_insert(0) += delta;
            }
            HhUp::CountReply { local } => {
                let complete = match self.sync.as_mut() {
                    Some(c) => c.put(from.index(), local),
                    None => false,
                };
                if complete {
                    let replies = self.sync.take().expect("sync in progress").take();
                    self.m = replies.iter().sum();
                    self.all_signals = 0;
                    self.resyncs += 1;
                    out.broadcast(HhDown::NewCount { m: self.m });
                }
            }
        }
    }
}

/// Convenience: build a full exact-store cluster.
pub fn exact_cluster(
    config: HhConfig,
) -> Result<dtrack_sim::Cluster<ExactHhSite, HhCoordinator>, crate::CoreError> {
    let sites = (0..config.k).map(|_| HhSite::exact(config)).collect();
    dtrack_sim::Cluster::new(sites, HhCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// Convenience: build a full sketch-store cluster (O(1/ε) space per site).
pub fn sketched_cluster(
    config: HhConfig,
) -> Result<dtrack_sim::Cluster<SketchHhSite, HhCoordinator>, crate::CoreError> {
    let sites = (0..config.k).map(|_| HhSite::sketched(config)).collect();
    dtrack_sim::Cluster::new(sites, HhCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// Shared query dispatch for both heavy-hitter facade adapters.
fn hh_query(label: &'static str, c: &HhCoordinator, query: Query) -> Result<Answer, QueryError> {
    match query {
        Query::Count => Ok(Answer::StreamLength(c.global_count())),
        Query::HeavyHitters { phi } => {
            let mut items = c
                .heavy_hitters(phi)
                .map_err(|e| QueryError::Protocol(e.to_string()))?;
            items.sort_unstable();
            Ok(Answer::HeavyHitters { phi, items })
        }
        Query::Frequency { x } => Ok(Answer::Frequency {
            x,
            count: c.frequency(x),
        }),
        other => Err(QueryError::Unsupported {
            protocol: label,
            query: other,
        }),
    }
}

/// Canonical answer set: the tracked m, then the heavy-hitter set for
/// every standard probe threshold meaningfully above ε.
fn hh_answers(epsilon: f64, c: &HhCoordinator) -> Result<Vec<Answer>, QueryError> {
    let mut out = vec![Answer::StreamLength(c.global_count())];
    for phi in HH_PROBE_PHIS {
        if phi > epsilon {
            let mut items = c
                .heavy_hitters(phi)
                .map_err(|e| QueryError::Protocol(e.to_string()))?;
            items.sort_unstable();
            out.push(Answer::HeavyHitters { phi, items });
        }
    }
    Ok(out)
}

/// [`Protocol`] adapter: §2.1 heavy hitters with exact per-site frequency
/// stores, for the [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct HhExactProtocol {
    config: HhConfig,
}

impl HhExactProtocol {
    /// Wrap a validated [`HhConfig`].
    pub fn new(config: HhConfig) -> Self {
        HhExactProtocol { config }
    }
}

impl Protocol for HhExactProtocol {
    type Site = ExactHhSite;
    type Up = HhUp;
    type Down = HhDown;
    type Coordinator = HhCoordinator;

    fn label(&self) -> &'static str {
        "hh-exact"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<ExactHhSite>, HhCoordinator), String> {
        let sites = (0..k).map(|_| HhSite::exact(self.config)).collect();
        Ok((sites, HhCoordinator::new(self.config)))
    }

    fn query(&self, c: &HhCoordinator, query: Query) -> Result<Answer, QueryError> {
        hh_query(self.label(), c, query)
    }

    fn answers(&self, c: &HhCoordinator) -> Result<Vec<Answer>, QueryError> {
        hh_answers(self.config.epsilon, c)
    }
}

/// [`Protocol`] adapter: §2.1 heavy hitters with SpaceSaving sites
/// (O(1/ε) words per site), for the [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct HhSketchedProtocol {
    config: HhConfig,
}

impl HhSketchedProtocol {
    /// Wrap a validated [`HhConfig`].
    pub fn new(config: HhConfig) -> Self {
        HhSketchedProtocol { config }
    }
}

impl Protocol for HhSketchedProtocol {
    type Site = SketchHhSite;
    type Up = HhUp;
    type Down = HhDown;
    type Coordinator = HhCoordinator;

    fn label(&self) -> &'static str {
        "hh-sketched"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<SketchHhSite>, HhCoordinator), String> {
        let sites = (0..k).map(|_| HhSite::sketched(self.config)).collect();
        Ok((sites, HhCoordinator::new(self.config)))
    }

    fn query(&self, c: &HhCoordinator, query: Query) -> Result<Answer, QueryError> {
        hh_query(self.label(), c, query)
    }

    fn answers(&self, c: &HhCoordinator) -> Result<Vec<Answer>, QueryError> {
        hh_answers(self.config.epsilon, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use dtrack_sim::Cluster;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// A deterministic skewed stream: item i mod 8 with probability ~1/2,
    /// otherwise a pseudo-random tail item.
    fn skewed_stream(n: u64, seed: u64) -> Vec<u64> {
        let mut st = seed;
        (0..n)
            .map(|_| {
                let r = xorshift(&mut st);
                if r.is_multiple_of(2) {
                    r % 8
                } else {
                    100 + (r >> 8) % 1000
                }
            })
            .collect()
    }

    fn run_exact(
        k: u32,
        epsilon: f64,
        stream: &[u64],
    ) -> (Cluster<ExactHhSite, HhCoordinator>, ExactOracle) {
        let config = HhConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, &x) in stream.iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
        }
        (cluster, oracle)
    }

    #[test]
    fn continuous_correctness_against_oracle() {
        let k = 4;
        let epsilon = 0.05;
        let phi = 0.2;
        let config = HhConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, x) in skewed_stream(6000, 99).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
            let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
            if let Some(v) = oracle.check_heavy_hitters(&reported, phi, epsilon) {
                panic!("violation at item {i}: {v}");
            }
        }
    }

    #[test]
    fn invariants_2_and_3_hold() {
        let epsilon = 0.1;
        let stream = skewed_stream(20_000, 5);
        let (cluster, oracle) = run_exact(5, epsilon, &stream);
        let coord = cluster.coordinator();
        let m = oracle.total();
        // Invariant (3).
        assert!(coord.global_count() <= m);
        assert!(
            coord.global_count() as f64 >= m as f64 * (1.0 - epsilon / 3.0) - 1.0,
            "C.m = {} vs m = {m}",
            coord.global_count()
        );
        // Invariant (2) for every item the oracle knows.
        for x in 0..8u64 {
            let mx = oracle.frequency(x);
            let cmx = coord.frequency(x);
            assert!(cmx <= mx, "C.m_{x} = {cmx} > m_{x} = {mx}");
            assert!(
                cmx as f64 >= mx as f64 - epsilon * m as f64 / 3.0,
                "C.m_{x} = {cmx} too far below m_{x} = {mx}"
            );
        }
    }

    #[test]
    fn warmup_is_exact() {
        let k = 3;
        let epsilon = 0.1; // warmup_target = 30
        let config = HhConfig::new(k, epsilon).unwrap();
        assert_eq!(config.warmup_target, 30);
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for i in 0..29u64 {
            let x = i % 3;
            oracle.observe(x);
            cluster.feed(SiteId((i % 3) as u32), x).unwrap();
            assert!(cluster.coordinator().in_warmup());
            assert_eq!(cluster.coordinator().global_count(), i + 1);
            // During warm-up classification is exact.
            assert_eq!(
                cluster.coordinator().heavy_hitters(0.3).unwrap(),
                oracle.heavy_hitters(0.3)
            );
        }
        cluster.feed(SiteId(0), 0).unwrap();
        assert!(!cluster.coordinator().in_warmup());
    }

    #[test]
    fn cost_grows_logarithmically_in_n() {
        let epsilon = 0.1;
        let k = 4;
        let w1 = {
            let (c, _) = run_exact(k, epsilon, &skewed_stream(10_000, 1));
            c.meter().total_words()
        };
        let w2 = {
            let (c, _) = run_exact(k, epsilon, &skewed_stream(100_000, 1));
            c.meter().total_words()
        };
        // 10x the stream must cost far less than 10x the words.
        assert!(w2 < w1 * 4, "cost not logarithmic: {w1} -> {w2}");
        assert!(w2 > w1);
    }

    #[test]
    fn resync_count_matches_round_bound() {
        let epsilon = 0.1;
        let k = 4;
        let n = 50_000u64;
        let (c, _) = run_exact(k, epsilon, &skewed_stream(n, 77));
        let rounds = c.coordinator().resyncs();
        // Rounds are bounded by log_{1+ε/3}(n / warmup_target).
        let warm = (k as f64) / epsilon;
        let bound = ((n as f64) / warm).ln() / (1.0 + epsilon / 3.0).ln();
        assert!(
            (rounds as f64) <= bound * 1.5 + 4.0,
            "{rounds} rounds exceeds bound {bound}"
        );
        assert!(rounds > 0);
    }

    #[test]
    fn sketched_sites_no_false_positives_and_good_recall() {
        let k = 4;
        let epsilon = 0.08;
        let phi = 0.25;
        let config = HhConfig::new(k, epsilon).unwrap();
        let mut cluster = sketched_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, x) in skewed_stream(30_000, 13).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
        }
        let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
        let n = oracle.total() as f64;
        // No false positives below (φ−ε)n: the sketch only deepens the
        // underestimate, so rule (1) stays safe on that side.
        for &x in &reported {
            assert!(
                oracle.frequency(x) as f64 >= (phi - epsilon) * n,
                "sketched false positive {x}"
            );
        }
        // Recall with the doubled slack the sketch introduces.
        for x in oracle.heavy_hitters(phi + epsilon) {
            assert!(
                reported.contains(&x),
                "sketched variant missed a (φ+ε)-heavy item {x}"
            );
        }
        // Space: the site stores Θ(1/ε) counters, far fewer than the
        // distinct-item count.
        for s in cluster.sites() {
            assert!(s.store().entries() <= (6.0 / epsilon).ceil() as usize + 1);
        }
    }

    #[test]
    fn threshold_introspection_counts_down() {
        let k = 2;
        let config = HhConfig::new(k, 0.2).unwrap().with_warmup_target(1);
        let mut site = HhSite::exact(config);
        let mut out = Vec::new();
        // Enter tracking with a large sm so the threshold is > 1.
        site.on_message(&HhDown::Start { m: 1000 }, &mut out);
        let t = site.threshold();
        assert!(t > 1);
        let r0 = site.remaining_until_message(42);
        assert_eq!(r0, t);
        site.on_item(42, &mut out);
        assert_eq!(site.remaining_until_message(42), t - 1);
    }

    #[test]
    fn phi_validation_on_query() {
        let config = HhConfig::new(2, 0.1).unwrap();
        let coord = HhCoordinator::new(config);
        assert!(coord.heavy_hitters(1.5).is_err());
        assert!(coord.heavy_hitters(0.5).unwrap().is_empty());
    }

    #[test]
    fn ablation_resync_after_changes_cost() {
        let epsilon = 0.1;
        let k = 8;
        let stream = skewed_stream(40_000, 3);
        let base = HhConfig::new(k, epsilon).unwrap();
        let eager = base.with_resync_after(k / 2);
        let lazy = base.with_resync_after(k * 2);
        let run = |cfg: HhConfig| {
            let mut cluster = exact_cluster(cfg).unwrap();
            for (i, &x) in stream.iter().enumerate() {
                cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
            }
            cluster.meter().total_words()
        };
        let w_eager = run(eager);
        let w_base = run(base);
        let w_lazy = run(lazy);
        // Eager re-syncing costs more sync traffic.
        assert!(w_eager > w_base, "eager {w_eager} <= base {w_base}");
        // Lazy re-syncing costs less.
        assert!(w_lazy < w_base, "lazy {w_lazy} >= base {w_base}");
    }
}
