//! §4 — Tracking all quantiles simultaneously with
//! O(k/ε · log n · log²(1/ε)) communication (Theorem 4.1).
//!
//! ## The data structure (the paper's Figure 1)
//!
//! A binary tree `T` over the universe with Θ(1/ε) leaves:
//!
//! * each internal node `u` stores a **splitting element** `x_u` dividing
//!   its interval `I_u` such that each side holds a constant fraction of
//!   the items (built at 3/8..5/8, maintained within 1/4..3/4 — the
//!   paper's conditions (5) and (6));
//! * each node carries `s_u`, an underestimate of `|A ∩ I_u|` with error
//!   at most `θm`, where `θ = ε/2h` and `h = Θ(log 1/ε)` bounds the tree
//!   height;
//! * each leaf holds at most `εm/2` items.
//!
//! Any rank query descends root-to-leaf, summing left-sibling counts: `h`
//! partial sums each off by ≤ θm plus one leaf, totalling ≤ εm. This makes
//! the structure an ε-approximate rank oracle — equivalently an equi-depth
//! histogram — from which any φ-quantile and (per the paper's reference to
//! Cormode et al. [7]) the 2ε-approximate heavy hitters can be read off
//! with **zero** additional communication.
//!
//! ## Maintenance
//!
//! * Sites report per-node increments every `θm/k` local arrivals in the
//!   node's interval (each arrival lies in ≤ h intervals).
//! * When a node pair violates condition (6) (`s_u/4 ≤ s_v ≤ 3s_u/4`),
//!   the coordinator rebuilds the subtree at the *highest* violated node
//!   from range-restricted per-site summaries — cost O(k·|A ∩ I_u| / εm),
//!   amortized against the Ω(|A ∩ I_u|) growth since the node was built.
//! * A leaf exceeding `(ε/2 − θ)m` is split the same way.
//! * When the tracked total doubles, the round restarts with a fresh tree.

use dtrack_hash::FxHashSet;

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId, PROBE_PHIS,
};
use dtrack_sketch::{EquiDepthSummary, ExactOrdered, GreenwaldKhanna, MergedSummary, OrderStore};
use dtrack_wire::{
    put_bool, put_u32, put_u64, put_u8, put_vec_u64, DecodeError, WireMessage, WireReader,
};

use crate::common::{check_epsilon, check_phi, check_sites, CoreError, KCollector, ValueRange};

/// Parameters of the all-quantiles protocol.
#[derive(Debug, Clone, Copy)]
pub struct AllQConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
    /// Stream size at which tracking starts (raw forwarding before).
    /// Defaults to ⌈2hk/ε⌉ so per-node thresholds are at least one item.
    pub warmup_target: u64,
}

impl AllQConfig {
    /// Standard configuration.
    pub fn new(k: u32, epsilon: f64) -> Result<Self, CoreError> {
        check_sites(k)?;
        check_epsilon(epsilon)?;
        let h = h_bound(epsilon) as f64;
        Ok(AllQConfig {
            k,
            epsilon,
            warmup_target: (2.0 * h * k as f64 / epsilon).ceil() as u64,
        })
    }

    /// Override the warm-up length.
    pub fn with_warmup_target(mut self, warmup_target: u64) -> Self {
        self.warmup_target = warmup_target.max(4);
        self
    }

    /// The height bound h = Θ(log 1/ε) used for θ.
    pub fn height_bound(&self) -> u32 {
        h_bound(self.epsilon)
    }

    /// θ = ε / 2h.
    pub fn theta(&self) -> f64 {
        self.epsilon / (2.0 * self.height_bound() as f64)
    }

    /// Per-site, per-node reporting threshold `θm/k`.
    fn node_site_threshold(&self, m: u64) -> u64 {
        ((self.theta() * m as f64 / self.k as f64).floor() as u64).max(1)
    }

    /// Leaf-split trigger `(ε/2 − θ)m`.
    fn leaf_split_threshold(&self, m: u64) -> u64 {
        (((self.epsilon / 2.0 - self.theta()) * m as f64).floor() as u64).max(2)
    }

    /// Target leaf size at builds: `3εm/8` (the paper's initialization
    /// guarantees leaves in [εm/8, 3εm/8]).
    fn build_leaf_limit(&self, m: u64) -> u64 {
        ((3.0 * self.epsilon * m as f64 / 8.0).floor() as u64).max(1)
    }
}

/// Height bound: builds split at worst 3/8–5/8, so depth until a leaf of
/// εm/2 items is at most log_{8/5}(2/ε); within-round leaf splits can add
/// up to log2(4/ε) more levels. This bound covers both with slack.
pub fn h_bound(epsilon: f64) -> u32 {
    let build = (2.0 / epsilon).log2() / (8.0f64 / 5.0).log2();
    let splits = (4.0 / epsilon).log2();
    (build + splits).ceil() as u32 + 4
}

// ---------------------------------------------------------------------
// The tree
// ---------------------------------------------------------------------

/// A node of the quantile tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The value interval `I_u`.
    pub range: ValueRange,
    /// Splitting element (internal nodes only).
    pub split: Option<u64>,
    /// Left child index (valid when `split` is `Some`).
    pub left: u32,
    /// Right child index (valid when `split` is `Some`).
    pub right: u32,
    /// Parent index (`None` at the root).
    pub parent: Option<u32>,
}

impl TreeNode {
    fn leaf(range: ValueRange) -> Self {
        TreeNode {
            range,
            split: None,
            left: 0,
            right: 0,
            parent: None,
        }
    }
}

/// The binary tree shared (structurally) by the coordinator and all sites.
///
/// Nodes are stored in an append-only arena; subtree replacement orphans
/// the old nodes rather than reusing indices, so in-flight count reports
/// for replaced nodes land in dead slots instead of corrupting live ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    nodes: Vec<TreeNode>,
    root: u32,
}

impl Tree {
    /// Number of node slots (including orphaned ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: u32) -> &TreeNode {
        &self.nodes[id as usize]
    }

    /// Wire size: three words per node plus the root pointer.
    pub fn wire_words(&self) -> u64 {
        3 * self.nodes.len() as u64 + 1
    }

    /// Walk the root-to-leaf path of `x`, invoking `f` on every node index
    /// along it (root first). Returns the leaf index.
    pub fn visit_path(&self, x: u64, mut f: impl FnMut(u32)) -> u32 {
        let mut cur = self.root;
        loop {
            f(cur);
            let n = &self.nodes[cur as usize];
            match n.split {
                Some(s) => cur = if x < s { n.left } else { n.right },
                None => return cur,
            }
        }
    }

    /// Indices of nodes reachable from the root.
    pub fn live_nodes(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            let n = &self.nodes[id as usize];
            if n.split.is_some() {
                stack.push(n.left);
                stack.push(n.right);
            }
        }
        out
    }

    /// Indices of live leaves.
    pub fn leaves(&self) -> Vec<u32> {
        self.live_nodes()
            .into_iter()
            .filter(|&id| self.nodes[id as usize].split.is_none())
            .collect()
    }

    /// Height of the live tree (a single leaf has height 1).
    pub fn height(&self) -> u32 {
        fn depth(t: &Tree, id: u32) -> u32 {
            let n = &t.nodes[id as usize];
            match n.split {
                None => 1,
                Some(_) => 1 + depth(t, n.left).max(depth(t, n.right)),
            }
        }
        depth(self, self.root)
    }

    /// Build a tree over `range` from a merged range-local summary,
    /// splitting at estimated medians until nodes hold at most
    /// `leaf_limit` items (or cannot be split further).
    pub fn build(merged: &MergedSummary, range: ValueRange, leaf_limit: u64) -> Tree {
        let mut nodes = Vec::new();
        let total = merged.total();
        let root = build_rec(merged, range, 0, total, leaf_limit.max(1), &mut nodes, None);
        Tree { nodes, root }
    }

    /// Graft `sub` in place of node `at`: appends all of `sub`'s nodes,
    /// repoints `at`'s parent (or the root) to the new subtree root, and
    /// returns the appended indices in order. `at` and its old descendants
    /// become orphans.
    pub fn graft(&mut self, at: u32, sub: &Tree) -> Vec<u32> {
        let offset = self.nodes.len() as u32;
        let mut appended = Vec::with_capacity(sub.nodes.len());
        for n in &sub.nodes {
            let mut n = n.clone();
            if n.split.is_some() {
                n.left += offset;
                n.right += offset;
            }
            n.parent = n.parent.map(|p| p + offset);
            appended.push(offset + appended.len() as u32);
            self.nodes.push(n);
        }
        let new_root = offset + sub.root;
        let old_parent = self.nodes[at as usize].parent;
        self.nodes[new_root as usize].parent = old_parent;
        match old_parent {
            None => self.root = new_root,
            Some(p) => {
                let pn = &mut self.nodes[p as usize];
                if pn.left == at {
                    pn.left = new_root;
                } else {
                    debug_assert_eq!(pn.right, at, "grafted node is not its parent's child");
                    pn.right = new_root;
                }
            }
        }
        appended
    }
}

impl WireMessage for TreeNode {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.range.wire_encode(out);
        put_bool(out, self.split.is_some());
        if let Some(split) = self.split {
            put_u64(out, split);
        }
        put_u32(out, self.left);
        put_u32(out, self.right);
        put_bool(out, self.parent.is_some());
        if let Some(parent) = self.parent {
            put_u32(out, parent);
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let range = ValueRange::wire_decode(r)?;
        let split = if r.bool()? { Some(r.u64()?) } else { None };
        let left = r.u32()?;
        let right = r.u32()?;
        let parent = if r.bool()? { Some(r.u32()?) } else { None };
        Ok(TreeNode {
            range,
            split,
            left,
            right,
            parent,
        })
    }
}

impl WireMessage for Tree {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.nodes.len() as u32);
        for n in &self.nodes {
            n.wire_encode(out);
        }
        put_u32(out, self.root);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        // Minimum node footprint: 9 bytes of range + 1 split tag + 8 of
        // child indices + 1 parent tag.
        let len = r.vec_len(19)?;
        let mut nodes = Vec::with_capacity(len);
        for _ in 0..len {
            nodes.push(TreeNode::wire_decode(r)?);
        }
        let root = r.u32()?;
        Ok(Tree { nodes, root })
    }
}

#[allow(clippy::too_many_arguments)]
fn build_rec(
    merged: &MergedSummary,
    range: ValueRange,
    rank_lo: u64,
    rank_hi: u64,
    leaf_limit: u64,
    nodes: &mut Vec<TreeNode>,
    parent: Option<u32>,
) -> u32 {
    let id = nodes.len() as u32;
    let count = rank_hi.saturating_sub(rank_lo);
    let width_one = range.hi.is_some_and(|h| h == range.lo + 1);
    let mut node = TreeNode::leaf(range);
    node.parent = parent;
    nodes.push(node);
    if count <= leaf_limit || width_one {
        return id;
    }
    let target = rank_lo + count / 2;
    let split = merged.select(target).and_then(|v| {
        // Must be strictly inside the range; for duplicate-saturated
        // ranges fall back to isolating the heavy value at lo into its
        // own unit leaf.
        if v > range.lo && range.hi.is_none_or(|h| v < h) {
            Some(v)
        } else if v <= range.lo && range.hi.is_none_or(|h| range.lo + 1 < h) {
            Some(range.lo + 1)
        } else {
            None
        }
    });
    let Some(split) = split else {
        return id; // unsplittable; stays a (possibly oversized) leaf
    };
    let rank_split = merged.rank_estimate(split).clamp(rank_lo, rank_hi);
    let left = build_rec(
        merged,
        ValueRange::new(range.lo, Some(split)),
        rank_lo,
        rank_split,
        leaf_limit,
        nodes,
        Some(id),
    );
    let right = build_rec(
        merged,
        ValueRange {
            lo: split,
            hi: range.hi,
        },
        rank_split,
        rank_hi,
        leaf_limit,
        nodes,
        Some(id),
    );
    let n = &mut nodes[id as usize];
    n.split = Some(split);
    n.left = left;
    n.right = right;
    id
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Upstream messages (site → coordinator).
#[derive(Debug, Clone, PartialEq)]
pub enum AqUp {
    /// Warm-up: forward the raw item.
    Raw { item: u64 },
    /// Node `node` gained `delta` items at this site (tagged with the
    /// round so reports against a stale tree are discarded).
    NodeDelta { round: u32, node: u32, delta: u64 },
    /// Reply to [`AqDown::SummaryPoll`].
    FullSummary(EquiDepthSummary),
    /// Reply to [`AqDown::InstallTree`]: exact count per node index.
    NodeCounts(Vec<u64>),
    /// Reply to [`AqDown::RangeSummaryPoll`].
    RangeSummary(EquiDepthSummary),
    /// Reply to [`AqDown::ReplaceSubtree`]: exact counts for the appended
    /// nodes, in append order.
    SubtreeCounts(Vec<u64>),
}

impl MessageSize for AqUp {
    fn size_words(&self) -> u64 {
        match self {
            AqUp::Raw { .. } => 2,
            AqUp::NodeDelta { .. } => 4,
            AqUp::FullSummary(s) => s.wire_words(),
            AqUp::NodeCounts(v) => v.len() as u64 + 1,
            AqUp::RangeSummary(s) => s.wire_words(),
            AqUp::SubtreeCounts(v) => v.len() as u64 + 1,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            AqUp::Raw { .. } => "aq/raw",
            AqUp::NodeDelta { .. } => "aq/node-delta",
            AqUp::FullSummary(_) => "aq/full-summary",
            AqUp::NodeCounts(_) => "aq/node-counts",
            AqUp::RangeSummary(_) => "aq/range-summary",
            AqUp::SubtreeCounts(_) => "aq/subtree-counts",
        }
    }
}

/// Downstream messages (coordinator → site).
#[derive(Debug, Clone, PartialEq)]
pub enum AqDown {
    /// Request an equi-depth summary of the whole local stream.
    SummaryPoll,
    /// Install a fresh tree for a new round.
    InstallTree {
        /// Round number after this install.
        round: u32,
        /// The tree.
        tree: Tree,
        /// Round-start cardinality, for threshold computation.
        m: u64,
    },
    /// Request an equi-depth summary of the items in `range`.
    RangeSummaryPoll {
        /// The range to summarize.
        range: ValueRange,
    },
    /// Replace the subtree at node `at` with `sub`.
    ReplaceSubtree {
        /// Node index being replaced.
        at: u32,
        /// Replacement subtree (indices local to `sub`).
        sub: Tree,
    },
}

impl MessageSize for AqDown {
    fn size_words(&self) -> u64 {
        match self {
            AqDown::SummaryPoll => 1,
            AqDown::InstallTree { tree, .. } => tree.wire_words() + 2,
            AqDown::RangeSummaryPoll { range } => 1 + range.words(),
            AqDown::ReplaceSubtree { sub, .. } => sub.wire_words() + 2,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            AqDown::SummaryPoll => "aq/summary-poll",
            AqDown::InstallTree { .. } => "aq/install-tree",
            AqDown::RangeSummaryPoll { .. } => "aq/range-summary-poll",
            AqDown::ReplaceSubtree { .. } => "aq/replace-subtree",
        }
    }
}

impl WireMessage for AqUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            AqUp::Raw { item } => {
                put_u8(out, 0);
                put_u64(out, *item);
            }
            AqUp::NodeDelta { round, node, delta } => {
                put_u8(out, 1);
                put_u32(out, *round);
                put_u32(out, *node);
                put_u64(out, *delta);
            }
            AqUp::FullSummary(s) => {
                put_u8(out, 2);
                s.wire_encode(out);
            }
            AqUp::NodeCounts(v) => {
                put_u8(out, 3);
                put_vec_u64(out, v);
            }
            AqUp::RangeSummary(s) => {
                put_u8(out, 4);
                s.wire_encode(out);
            }
            AqUp::SubtreeCounts(v) => {
                put_u8(out, 5);
                put_vec_u64(out, v);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("AqUp")?;
        match tag {
            0 => Ok(AqUp::Raw { item: r.u64()? }),
            1 => Ok(AqUp::NodeDelta {
                round: r.u32()?,
                node: r.u32()?,
                delta: r.u64()?,
            }),
            2 => Ok(AqUp::FullSummary(EquiDepthSummary::wire_decode(r)?)),
            3 => Ok(AqUp::NodeCounts(r.vec_u64()?)),
            4 => Ok(AqUp::RangeSummary(EquiDepthSummary::wire_decode(r)?)),
            5 => Ok(AqUp::SubtreeCounts(r.vec_u64()?)),
            tag => Err(DecodeError::BadTag {
                context: "AqUp",
                tag,
                offset,
            }),
        }
    }
}

impl WireMessage for AqDown {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            AqDown::SummaryPoll => put_u8(out, 0),
            AqDown::InstallTree { round, tree, m } => {
                put_u8(out, 1);
                put_u32(out, *round);
                tree.wire_encode(out);
                put_u64(out, *m);
            }
            AqDown::RangeSummaryPoll { range } => {
                put_u8(out, 2);
                range.wire_encode(out);
            }
            AqDown::ReplaceSubtree { at, sub } => {
                put_u8(out, 3);
                put_u32(out, *at);
                sub.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("AqDown")?;
        match tag {
            0 => Ok(AqDown::SummaryPoll),
            1 => Ok(AqDown::InstallTree {
                round: r.u32()?,
                tree: Tree::wire_decode(r)?,
                m: r.u64()?,
            }),
            2 => Ok(AqDown::RangeSummaryPoll {
                range: ValueRange::wire_decode(r)?,
            }),
            3 => Ok(AqDown::ReplaceSubtree {
                at: r.u32()?,
                sub: Tree::wire_decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "AqDown",
                tag,
                offset,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Site
// ---------------------------------------------------------------------

/// Per-round site state.
#[derive(Debug, Clone)]
struct AqSiteTracking {
    tree: Tree,
    round: u32,
    unrep: Vec<u64>,
    threshold: u64,
}

/// An all-quantiles site, generic over its local ordered store.
#[derive(Debug, Clone)]
pub struct AllQSite<S = ExactOrdered> {
    config: AllQConfig,
    store: S,
    tracking: Option<AqSiteTracking>,
    path_buf: Vec<u32>,
}

/// Exact-store site.
pub type ExactAllQSite = AllQSite<ExactOrdered>;
/// Greenwald–Khanna-backed small-space site.
pub type SketchAllQSite = AllQSite<GreenwaldKhanna>;

impl AllQSite<ExactOrdered> {
    /// Site with exact local state.
    pub fn exact(config: AllQConfig) -> Self {
        AllQSite::with_store(config, ExactOrdered::new())
    }
}

impl AllQSite<GreenwaldKhanna> {
    /// Site with a Greenwald–Khanna store of error θ/4 — the
    /// O(1/θ · log(θn)) = O(1/ε · log(1/ε) · log(εn))-space variant.
    pub fn sketched(config: AllQConfig) -> Self {
        let store = GreenwaldKhanna::new((config.theta() / 4.0).max(1e-6));
        AllQSite::with_store(config, store)
    }
}

impl<S: OrderStore> AllQSite<S> {
    /// Site with a caller-provided store.
    pub fn with_store(config: AllQConfig, store: S) -> Self {
        AllQSite {
            config,
            store,
            tracking: None,
            path_buf: Vec::new(),
        }
    }

    /// The local store (oracle access).
    pub fn store(&self) -> &S {
        &self.store
    }

    fn range_count(&self, range: &ValueRange) -> u64 {
        let hi_rank = range
            .hi
            .map_or(self.store.total(), |h| self.store.rank_lt(h));
        hi_rank.saturating_sub(self.store.rank_lt(range.lo))
    }
}

impl<S: OrderStore> Site for AllQSite<S> {
    type Item = u64;
    type Up = AqUp;
    type Down = AqDown;

    fn on_item(&mut self, item: u64, out: &mut Vec<AqUp>) {
        self.store.insert(item);
        let t = match self.tracking.as_mut() {
            None => {
                out.push(AqUp::Raw { item });
                return;
            }
            Some(t) => t,
        };
        self.path_buf.clear();
        let path = &mut self.path_buf;
        t.tree.visit_path(item, |id| path.push(id));
        for &id in path.iter() {
            let slot = &mut t.unrep[id as usize];
            *slot += 1;
            if *slot >= t.threshold {
                out.push(AqUp::NodeDelta {
                    round: t.round,
                    node: id,
                    delta: *slot,
                });
                *slot = 0;
            }
        }
    }

    fn on_message(&mut self, msg: &AqDown, out: &mut Vec<AqUp>) {
        match msg {
            AqDown::SummaryPoll => {
                let step = ((self.config.epsilon * self.store.total() as f64 / 32.0).floor()
                    as u64)
                    .max(1);
                out.push(AqUp::FullSummary(self.store.summary(step)));
            }
            AqDown::InstallTree { round, tree, m } => {
                let counts: Vec<u64> = tree
                    .nodes
                    .iter()
                    .map(|n| self.range_count(&n.range))
                    .collect();
                self.tracking = Some(AqSiteTracking {
                    tree: tree.clone(),
                    round: *round,
                    unrep: vec![0; counts.len()],
                    threshold: self.config.node_site_threshold(*m),
                });
                out.push(AqUp::NodeCounts(counts));
            }
            AqDown::RangeSummaryPoll { range } => {
                let cnt = self.range_count(range);
                let step = (cnt / 32).max(1);
                out.push(AqUp::RangeSummary(
                    self.store.summary_range(range.lo, range.hi, step),
                ));
            }
            AqDown::ReplaceSubtree { at, sub } => {
                let ranges: Option<Vec<ValueRange>> = self.tracking.as_mut().map(|t| {
                    let appended = t.tree.graft(*at, sub);
                    t.unrep.resize(t.tree.len(), 0);
                    appended.iter().map(|&id| t.tree.node(id).range).collect()
                });
                if let Some(ranges) = ranges {
                    let counts: Vec<u64> = ranges.iter().map(|r| self.range_count(r)).collect();
                    out.push(AqUp::SubtreeCounts(counts));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Structural operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllQStats {
    /// Full rebuilds (round restarts), O(log n).
    pub rebuilds: u64,
    /// Partial subtree rebuilds from condition-(6) violations.
    pub partial_rebuilds: u64,
    /// Leaf splits.
    pub leaf_splits: u64,
}

#[derive(Debug, Clone)]
enum AqPending {
    Rebuild(KCollector<EquiDepthSummary>),
    InstallWait {
        tree: Tree,
        collector: KCollector<Vec<u64>>,
    },
    PartialSummaries {
        at: u32,
        is_leaf_split: bool,
        collector: KCollector<EquiDepthSummary>,
    },
    PartialWait {
        appended: Vec<u32>,
        collector: KCollector<Vec<u64>>,
    },
}

/// The all-quantiles coordinator: maintains the tree of Figure 1 and
/// answers rank, quantile, and heavy-hitter queries locally.
#[derive(Debug, Clone)]
pub struct AllQCoordinator {
    config: AllQConfig,
    warmup: Option<ExactOrdered>,
    pending: Option<AqPending>,
    tree: Tree,
    /// `s_u` estimates, indexed like the tree arena.
    s: Vec<u64>,
    round: u32,
    m_round: u64,
    no_split: FxHashSet<u32>,
    stats: AllQStats,
}

impl AllQCoordinator {
    /// Fresh coordinator.
    pub fn new(config: AllQConfig) -> Self {
        AllQCoordinator {
            config,
            warmup: Some(ExactOrdered::new()),
            pending: None,
            tree: Tree {
                nodes: vec![TreeNode::leaf(ValueRange::all())],
                root: 0,
            },
            s: vec![0],
            round: 0,
            m_round: 0,
            no_split: FxHashSet::default(),
            stats: AllQStats::default(),
        }
    }

    /// True while the protocol is still forwarding raw items.
    pub fn in_warmup(&self) -> bool {
        self.warmup.is_some()
    }

    /// Structural operation counters.
    pub fn stats(&self) -> AllQStats {
        self.stats
    }

    /// The live tree (introspection for the Figure 1 experiment).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The tracked count of node `id`.
    pub fn node_count(&self, id: u32) -> u64 {
        self.s[id as usize]
    }

    /// Estimated total stream size n̂ (= s at the root).
    pub fn n_estimate(&self) -> u64 {
        match &self.warmup {
            Some(store) => store.len(),
            None => self.s[self.tree.root() as usize],
        }
    }

    /// Estimate of `rank_lt(x)` with error at most ε·n.
    pub fn rank_lt(&self, x: u64) -> u64 {
        if let Some(store) = &self.warmup {
            return store.rank_lt(x);
        }
        let mut acc = 0u64;
        let mut cur = self.tree.root();
        loop {
            let n = self.tree.node(cur);
            match n.split {
                Some(split) => {
                    if x < split {
                        cur = n.left;
                    } else {
                        acc += self.s[n.left as usize];
                        cur = n.right;
                    }
                }
                None => {
                    if x > n.range.lo {
                        acc += self.s[cur as usize] / 2;
                    }
                    return acc;
                }
            }
        }
    }

    /// An ε-approximate φ-quantile.
    pub fn quantile(&self, phi: f64) -> Result<Option<u64>, CoreError> {
        check_phi(phi)?;
        if let Some(store) = &self.warmup {
            let n = store.len();
            if n == 0 {
                return Ok(None);
            }
            let target = ((phi * n as f64).ceil() as u64).clamp(1, n);
            return Ok(store.select(target - 1));
        }
        let mut target = (phi * self.s[self.tree.root() as usize] as f64).round() as u64;
        let mut cur = self.tree.root();
        loop {
            let n = self.tree.node(cur);
            match n.split {
                Some(_) => {
                    let left = self.s[n.left as usize];
                    if target <= left {
                        cur = n.left;
                    } else {
                        target -= left;
                        cur = n.right;
                    }
                }
                None => return Ok(Some(n.range.lo)),
            }
        }
    }

    /// The 2ε-approximate φ-heavy hitters extracted from the structure
    /// (the paper's observation via [7]): report `x` when the tracked
    /// frequency `rank(x+1) − rank(x)` is at least `(φ − ε)·n̂`. Candidate
    /// items are the live leaf boundaries — any item heavier than εm/2
    /// ends up isolated in its own unit-width leaf by the split rule.
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<u64>, CoreError> {
        check_phi(phi)?;
        let n_hat = self.n_estimate();
        if n_hat == 0 {
            return Ok(Vec::new());
        }
        let thresh = (phi - self.config.epsilon) * n_hat as f64;
        let mut candidates: Vec<u64> = Vec::new();
        if let Some(store) = &self.warmup {
            candidates.extend(store.iter().map(|(v, _)| v));
        } else {
            for leaf in self.tree.leaves() {
                candidates.push(self.tree.node(leaf).range.lo);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut out = Vec::new();
        for x in candidates {
            let hi = if x == u64::MAX {
                n_hat
            } else {
                self.rank_lt(x + 1)
            };
            let f = hi.saturating_sub(self.rank_lt(x));
            if f as f64 >= thresh {
                out.push(x);
            }
        }
        Ok(out)
    }

    /// Upper bound θm on any single node-count error (experiment E12).
    pub fn node_error_bound(&self) -> u64 {
        (self.config.theta() * self.m_round as f64).ceil() as u64 + self.config.k as u64
    }

    /// Leaf-size ceiling εm/2 for the current round (experiment E12).
    pub fn leaf_bound(&self) -> u64 {
        (self.config.epsilon * self.m_round as f64 / 2.0).ceil() as u64
    }

    fn violates(&self, parent: u32, child: u32) -> bool {
        let pn = self.tree.node(parent);
        // A unit-width child is duplicate-saturated: no choice of splitting
        // element can move its mass, so condition (6) is unenforceable for
        // this pair (the paper assumes distinct items). Its count is still
        // tracked exactly for rank queries, and it is already a leaf, so
        // exempting it does not affect the height bound.
        let unit = |id: u32| {
            let r = self.tree.node(id).range;
            r.hi.is_some_and(|h| h == r.lo + 1)
        };
        if unit(pn.left) || unit(pn.right) {
            return false;
        }
        let su = self.s[parent as usize];
        let sv = self.s[child as usize];
        if su < 8 {
            return false;
        }
        4 * sv < su || 4 * sv > 3 * su
    }

    /// Highest node whose child pair violates condition (6) along the
    /// ancestor path of `w` (including `w` itself as a parent).
    fn find_violation(&self, w: u32) -> Option<u32> {
        let mut hit = None;
        let n = self.tree.node(w);
        if n.split.is_some() && (self.violates(w, n.left) || self.violates(w, n.right)) {
            hit = Some(w);
        }
        let mut cur = w;
        while let Some(p) = self.tree.node(cur).parent {
            let pn = self.tree.node(p);
            if self.violates(p, pn.left) || self.violates(p, pn.right) {
                hit = Some(p);
            }
            cur = p;
        }
        hit
    }

    /// Evaluate triggers after a delta landed on node `w`.
    fn maybe_trigger(&mut self, w: u32, out: &mut Outbox<AqDown>) {
        debug_assert!(self.pending.is_none());
        if self.warmup.is_some() {
            return;
        }
        // 1. Round restart when the tracked total doubles.
        if self.s[self.tree.root() as usize] >= 2 * self.m_round {
            self.pending = Some(AqPending::Rebuild(KCollector::new(self.config.k)));
            out.broadcast(AqDown::SummaryPoll);
            return;
        }
        // 2. Balance violation: partial rebuild at the highest violated
        //    node.
        if let Some(at) = self.find_violation(w) {
            if !self.no_split.contains(&at) {
                self.start_partial(at, false, out);
                return;
            }
        }
        // 3. Leaf split.
        let node = self.tree.node(w);
        if node.split.is_none()
            && self.s[w as usize] >= self.config.leaf_split_threshold(self.m_round)
            && !self.no_split.contains(&w)
        {
            self.start_partial(w, true, out);
        }
    }

    fn start_partial(&mut self, at: u32, is_leaf_split: bool, out: &mut Outbox<AqDown>) {
        let range = self.tree.node(at).range;
        self.pending = Some(AqPending::PartialSummaries {
            at,
            is_leaf_split,
            collector: KCollector::new(self.config.k),
        });
        out.broadcast(AqDown::RangeSummaryPoll { range });
    }

    fn begin_install(&mut self, merged: &MergedSummary, m: u64, out: &mut Outbox<AqDown>) {
        let m = m.max(1);
        let tree = Tree::build(merged, ValueRange::all(), self.config.build_leaf_limit(m));
        self.round += 1;
        self.m_round = m;
        self.no_split.clear();
        out.broadcast(AqDown::InstallTree {
            round: self.round,
            tree: tree.clone(),
            m,
        });
        self.pending = Some(AqPending::InstallWait {
            tree,
            collector: KCollector::new(self.config.k),
        });
    }
}

impl Coordinator for AllQCoordinator {
    type Up = AqUp;
    type Down = AqDown;

    fn on_message(&mut self, from: SiteId, msg: AqUp, out: &mut Outbox<AqDown>) {
        match msg {
            AqUp::Raw { item } => {
                if let Some(store) = self.warmup.as_mut() {
                    store.insert(item);
                    if store.len() >= self.config.warmup_target && self.pending.is_none() {
                        let n = store.len();
                        let step =
                            ((self.config.epsilon * n as f64 / 32.0).floor() as u64).clamp(1, 64);
                        let summary = EquiDepthSummary::from_sorted_counts(store.iter(), n, step);
                        let merged = MergedSummary::new(vec![summary]);
                        self.begin_install(&merged, n, out);
                    }
                }
            }
            AqUp::NodeDelta { round, node, delta } => {
                if round == self.round && (node as usize) < self.s.len() {
                    self.s[node as usize] += delta;
                    if self.pending.is_none() {
                        self.maybe_trigger(node, out);
                    }
                }
            }
            AqUp::FullSummary(s) => {
                if let Some(AqPending::Rebuild(c)) = self.pending.as_mut() {
                    if c.put(from.index(), s) {
                        let Some(AqPending::Rebuild(c)) = self.pending.take() else {
                            unreachable!("pending variant checked above");
                        };
                        let merged = MergedSummary::new(c.take());
                        let m = merged.total();
                        self.begin_install(&merged, m, out);
                    }
                }
            }
            AqUp::NodeCounts(v) => {
                if let Some(AqPending::InstallWait { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), v) {
                        let Some(AqPending::InstallWait { tree, collector }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        let per_site = collector.take();
                        let mut s = vec![0u64; tree.len()];
                        for site_counts in &per_site {
                            for (i, c) in site_counts.iter().enumerate().take(s.len()) {
                                s[i] += c;
                            }
                        }
                        self.tree = tree;
                        self.s = s;
                        self.m_round = self.s[self.tree.root() as usize].max(1);
                        self.warmup = None;
                        self.pending = None;
                        self.stats.rebuilds += 1;
                    }
                }
            }
            AqUp::RangeSummary(s) => {
                if let Some(AqPending::PartialSummaries { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), s) {
                        let Some(AqPending::PartialSummaries {
                            at,
                            is_leaf_split,
                            collector,
                        }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        let merged = MergedSummary::new(collector.take());
                        let range = self.tree.node(at).range;
                        let sub =
                            Tree::build(&merged, range, self.config.build_leaf_limit(self.m_round));
                        if sub.len() == 1 {
                            // Could not subdivide (duplicate saturation):
                            // remember and carry on with the old node.
                            self.no_split.insert(at);
                            self.pending = None;
                            return;
                        }
                        let appended = self.tree.graft(at, &sub);
                        self.s.resize(self.tree.len(), 0);
                        if is_leaf_split {
                            self.stats.leaf_splits += 1;
                        } else {
                            self.stats.partial_rebuilds += 1;
                        }
                        out.broadcast(AqDown::ReplaceSubtree { at, sub });
                        self.pending = Some(AqPending::PartialWait {
                            appended,
                            collector: KCollector::new(self.config.k),
                        });
                    }
                }
            }
            AqUp::SubtreeCounts(v) => {
                if let Some(AqPending::PartialWait { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), v) {
                        let Some(AqPending::PartialWait {
                            appended,
                            collector,
                        }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        let per_site = collector.take();
                        for (i, &id) in appended.iter().enumerate() {
                            let total: u64 = per_site
                                .iter()
                                .map(|v| v.get(i).copied().unwrap_or(0))
                                .sum();
                            self.s[id as usize] = total;
                        }
                        self.pending = None;
                        if let Some(&new_root) = appended.first() {
                            // If the freshly rebuilt subtree still violates
                            // (6) at its own root, no rebuild can fix it
                            // (duplicate saturation) — suppress further
                            // attempts until the round restarts.
                            let n = self.tree.node(new_root);
                            if n.split.is_some()
                                && (self.violates(new_root, n.left)
                                    || self.violates(new_root, n.right))
                            {
                                self.no_split.insert(new_root);
                            }
                            // Ancestors may legitimately need maintenance
                            // now that this subtree's count is exact.
                            self.maybe_trigger(new_root, out);
                        }
                    }
                }
            }
        }
    }
}

/// Convenience: build a full exact-store cluster.
pub fn exact_cluster(
    config: AllQConfig,
) -> Result<dtrack_sim::Cluster<ExactAllQSite, AllQCoordinator>, CoreError> {
    let sites = (0..config.k).map(|_| AllQSite::exact(config)).collect();
    dtrack_sim::Cluster::new(sites, AllQCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// Convenience: build a full sketch-store cluster.
pub fn sketched_cluster(
    config: AllQConfig,
) -> Result<dtrack_sim::Cluster<SketchAllQSite, AllQCoordinator>, CoreError> {
    let sites = (0..config.k).map(|_| AllQSite::sketched(config)).collect();
    dtrack_sim::Cluster::new(sites, AllQCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// [`Protocol`] adapter: the §4 all-quantiles tree with exact sites, for
/// the [`dtrack_sim::Tracker`] facade. Answers arbitrary quantile, rank,
/// and (2ε-error) heavy-hitter queries from one structure.
#[derive(Debug, Clone, Copy)]
pub struct AllQExactProtocol {
    config: AllQConfig,
}

impl AllQExactProtocol {
    /// Wrap a validated [`AllQConfig`].
    pub fn new(config: AllQConfig) -> Self {
        AllQExactProtocol { config }
    }
}

impl Protocol for AllQExactProtocol {
    type Site = ExactAllQSite;
    type Up = AqUp;
    type Down = AqDown;
    type Coordinator = AllQCoordinator;

    fn label(&self) -> &'static str {
        "allq-exact"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<ExactAllQSite>, AllQCoordinator), String> {
        let sites = (0..k).map(|_| AllQSite::exact(self.config)).collect();
        Ok((sites, AllQCoordinator::new(self.config)))
    }

    fn query(&self, c: &AllQCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Count => Ok(Answer::LengthEstimate(c.n_estimate())),
            Query::Quantile { phi } => {
                let value = c
                    .quantile(phi)
                    .map_err(|e| QueryError::Protocol(e.to_string()))?;
                Ok(Answer::QuantileAt { phi, value })
            }
            Query::RankLt { x } => Ok(Answer::RankLt {
                x,
                rank: c.rank_lt(x),
            }),
            Query::HeavyHitters { phi } => {
                let mut items = c
                    .heavy_hitters(phi)
                    .map_err(|e| QueryError::Protocol(e.to_string()))?;
                items.sort_unstable();
                Ok(Answer::HeavyHitters { phi, items })
            }
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &AllQCoordinator) -> Result<Vec<Answer>, QueryError> {
        let mut out = vec![Answer::LengthEstimate(c.n_estimate())];
        for phi in PROBE_PHIS {
            let value = c
                .quantile(phi)
                .map_err(|e| QueryError::Protocol(e.to_string()))?;
            out.push(Answer::QuantileAt { phi, value });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn uniform_stream(n: u64, seed: u64, universe: u64) -> Vec<u64> {
        let mut st = seed;
        (0..n).map(|_| xorshift(&mut st) % universe).collect()
    }

    #[test]
    fn h_bound_is_reasonable() {
        assert!(h_bound(0.1) >= 8);
        assert!(h_bound(0.01) > h_bound(0.1));
        assert!(h_bound(0.001) < 64);
    }

    #[test]
    fn tree_build_and_path() {
        // A summary over 0..1000 with uniform mass.
        let vals: Vec<u64> = (0..1000).collect();
        let s = EquiDepthSummary::from_sorted(&vals, 10);
        let merged = MergedSummary::new(vec![s]);
        let tree = Tree::build(&merged, ValueRange::all(), 100);
        assert!(tree.leaves().len() >= 8, "expected ~10 leaves");
        assert!(tree.height() <= 12);
        // Every value lands in exactly one leaf whose range contains it.
        for x in [0u64, 123, 999, 5_000_000] {
            let leaf = tree.visit_path(x, |_| {});
            assert!(tree.node(leaf).range.contains(x));
        }
        // Live leaves partition the universe.
        let mut leaves: Vec<ValueRange> = tree
            .leaves()
            .iter()
            .map(|&id| tree.node(id).range)
            .collect();
        leaves.sort_by_key(|r| r.lo);
        assert_eq!(leaves.first().unwrap().lo, 0);
        assert_eq!(leaves.last().unwrap().hi, None);
        for w in leaves.windows(2) {
            assert_eq!(w[0].hi, Some(w[1].lo), "leaf ranges must tile");
        }
    }

    #[test]
    fn tree_graft_replaces_subtree() {
        let vals: Vec<u64> = (0..1000).collect();
        let merged = MergedSummary::new(vec![EquiDepthSummary::from_sorted(&vals, 10)]);
        let mut tree = Tree::build(&merged, ValueRange::all(), 200);
        let leaf = tree.leaves()[0];
        let range = tree.node(leaf).range;
        // Build a small subtree for that leaf's range.
        let in_range: Vec<u64> = vals
            .iter()
            .copied()
            .filter(|v| range.contains(*v))
            .collect();
        let sub_summary = EquiDepthSummary::from_sorted(&in_range, 5);
        let sub = Tree::build(&MergedSummary::new(vec![sub_summary]), range, 50);
        let before = tree.len();
        let appended = tree.graft(leaf, &sub);
        assert_eq!(appended.len(), sub.len());
        assert_eq!(tree.len(), before + sub.len());
        // The old leaf is orphaned.
        assert!(!tree.live_nodes().contains(&leaf));
        // Ranges still tile.
        let mut leaves: Vec<ValueRange> = tree
            .leaves()
            .iter()
            .map(|&id| tree.node(id).range)
            .collect();
        leaves.sort_by_key(|r| r.lo);
        for w in leaves.windows(2) {
            assert_eq!(w[0].hi, Some(w[1].lo));
        }
    }

    fn check_all_quantiles(
        coord: &AllQCoordinator,
        oracle: &ExactOracle,
        eps_slack: f64,
        ctx: &str,
    ) {
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let q = coord.quantile(phi).unwrap().expect("nonempty");
            assert!(
                oracle.quantile_ok(q, phi, eps_slack),
                "{ctx}: {q} not an ε-approx {phi}-quantile (rank {} of {})",
                oracle.rank_lt(q),
                oracle.total()
            );
        }
    }

    #[test]
    fn all_quantiles_track_uniform_stream() {
        let k = 4;
        let epsilon = 0.1;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, x) in uniform_stream(40_000, 31, 1 << 40).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
            if i % 50 == 0 {
                check_all_quantiles(
                    cluster.coordinator(),
                    &oracle,
                    epsilon,
                    &format!("item {i}"),
                );
            }
        }
        assert!(cluster.coordinator().stats().rebuilds >= 1);
    }

    #[test]
    fn rank_queries_within_epsilon() {
        let k = 3;
        let epsilon = 0.1;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        let universe = 1u64 << 30;
        for (i, x) in uniform_stream(30_000, 77, universe).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
        }
        let n = oracle.total();
        for probe in (0..universe).step_by((universe / 23) as usize) {
            let truth = oracle.rank_lt(probe);
            let est = cluster.coordinator().rank_lt(probe);
            assert!(
                est.abs_diff(truth) as f64 <= epsilon * n as f64,
                "rank({probe}): est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn skewed_stream_forces_partial_rebuilds() {
        // Mass concentrates in a drifting narrow band, imbalancing the
        // tree and forcing condition-(6) rebuilds.
        let k = 4;
        let epsilon = 0.1;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        let mut st = 9u64;
        let n = 60_000u64;
        for i in 0..n {
            let band = (i / 4000) * (1 << 34);
            let x = band + xorshift(&mut st) % (1 << 30);
            oracle.observe(x);
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
            if i % 500 == 0 && i > 0 {
                check_all_quantiles(
                    cluster.coordinator(),
                    &oracle,
                    epsilon,
                    &format!("item {i}"),
                );
            }
        }
        let stats = cluster.coordinator().stats();
        assert!(
            stats.partial_rebuilds + stats.leaf_splits > 0,
            "drifting band must force structural maintenance: {stats:?}"
        );
    }

    #[test]
    fn heavy_hitters_extracted_from_structure() {
        let k = 4;
        let epsilon = 0.05;
        let phi = 0.3;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        let mut st = 3u64;
        for i in 0..50_000u64 {
            // Item 42 gets ~40% of the stream.
            let x = if i % 5 < 2 {
                42
            } else {
                xorshift(&mut st) % (1 << 30)
            };
            oracle.observe(x);
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
        }
        let reported = cluster.coordinator().heavy_hitters(phi).unwrap();
        assert!(reported.contains(&42), "missed the 40% item");
        // No false positives below (φ − 2ε)n — the paper's 2ε guarantee.
        let n = oracle.total() as f64;
        for &x in &reported {
            assert!(
                oracle.frequency(x) as f64 >= (phi - 2.0 * epsilon) * n,
                "false positive {x} at freq {}",
                oracle.frequency(x)
            );
        }
    }

    #[test]
    fn figure1_invariants_hold() {
        // The Figure 1 invariants: bounded height, bounded leaf size,
        // bounded per-node count error.
        let k = 4;
        let epsilon = 0.1;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, x) in uniform_stream(50_000, 55, 1 << 40).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
            if i % 5000 != 4999 {
                continue;
            }
            let coord = cluster.coordinator();
            if coord.in_warmup() {
                continue;
            }
            let tree = coord.tree();
            assert!(
                tree.height() <= config.height_bound(),
                "height {} exceeds bound {}",
                tree.height(),
                config.height_bound()
            );
            let err_bound = coord.node_error_bound();
            let range_truth = |r: &ValueRange| -> u64 {
                let hi_rank = r.hi.map_or(oracle.total(), |h| oracle.rank_lt(h));
                hi_rank - oracle.rank_lt(r.lo)
            };
            for id in tree.live_nodes() {
                let truth = range_truth(&tree.node(id).range);
                let est = coord.node_count(id);
                assert!(est <= truth, "node {id} overestimates: {est} > {truth}");
                assert!(
                    truth - est <= err_bound,
                    "node {id} error {} exceeds θm bound {err_bound}",
                    truth - est
                );
            }
            for leaf in tree.leaves() {
                let r = tree.node(leaf).range;
                if r.hi.is_some_and(|h| h == r.lo + 1) {
                    continue; // unit-width leaves may legitimately saturate
                }
                let truth = range_truth(&r);
                assert!(
                    truth <= coord.leaf_bound() + err_bound,
                    "leaf {leaf} holds {truth} > εm/2 = {}",
                    coord.leaf_bound()
                );
            }
        }
    }

    #[test]
    fn duplicate_heavy_stream_stays_valid() {
        let k = 3;
        let epsilon = 0.1;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        let mut st = 23u64;
        for i in 0..40_000u64 {
            let x = if i % 2 == 0 {
                999
            } else {
                xorshift(&mut st) % (1 << 20)
            };
            oracle.observe(x);
            cluster.feed(SiteId((i % k as u64) as u32), x).unwrap();
            if i % 400 == 0 && i > 0 {
                check_all_quantiles(
                    cluster.coordinator(),
                    &oracle,
                    epsilon,
                    &format!("item {i}"),
                );
            }
        }
    }

    #[test]
    fn cost_grows_logarithmically_in_n() {
        let config = AllQConfig::new(4, 0.1).unwrap();
        let run = |n: u64| {
            let mut cluster = exact_cluster(config).unwrap();
            for (i, x) in uniform_stream(n, 3, 1 << 40).into_iter().enumerate() {
                cluster.feed(SiteId((i % 4) as u32), x).unwrap();
            }
            cluster.meter().total_words()
        };
        let w1 = run(30_000);
        let w2 = run(300_000);
        assert!(w2 < w1 * 5, "cost not logarithmic: {w1} -> {w2}");
        assert!(w2 > w1);
    }

    #[test]
    fn sketched_sites_track_within_doubled_epsilon() {
        let k = 3;
        let epsilon = 0.15;
        let config = AllQConfig::new(k, epsilon).unwrap();
        let mut cluster = sketched_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, x) in uniform_stream(25_000, 41, 1 << 35).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
        }
        check_all_quantiles(cluster.coordinator(), &oracle, 2.0 * epsilon, "final");
    }

    #[test]
    fn config_validation() {
        assert!(AllQConfig::new(1, 0.1).is_err());
        assert!(AllQConfig::new(4, 0.9).is_err());
        let c = AllQConfig::new(4, 0.1).unwrap();
        assert!(c.theta() > 0.0 && c.theta() < c.epsilon);
    }
}
