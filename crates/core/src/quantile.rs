//! §3.1 — Tracking a single φ-quantile (the median is φ = 1/2) with
//! O(k/ε · log n) communication (Theorem 3.1).
//!
//! ## Protocol
//!
//! The tracking period is divided into rounds; a new round starts whenever
//! |A| doubles. Let `m` be |A| at the start of the round. Within a round:
//!
//! * The coordinator maintains a set of **separators** partitioning the
//!   universe into intervals whose true sizes stay in `[~εm/8, εm/2]`:
//!   per-interval counts are tracked as underestimates (each site reports
//!   when an interval gains `εm/4k` local items) and an interval is split
//!   via an O(k)-word poll when its tracked count reaches `εm/4`.
//! * The coordinator keeps the current answer `M` (the **pivot**, always a
//!   separator) plus underestimates `ΔL, ΔR` of the arrivals to the left /
//!   right of `M` since the last recenter (each site reports per `εm/8k`
//!   local arrivals on a side).
//! * When the estimated rank drift `|(r(M) + ΔL) − φ·n̂|` reaches `7εm/8`,
//!   the coordinator **recenters**: it polls exact left/right counts
//!   (O(k)), then probes neighboring separators with exact range-count
//!   polls (O(k) each, O(1) probes since intervals hold ≥ ~εm/8 items)
//!   until it finds a separator within `εm/2` of the target rank, and
//!   makes it the new pivot.
//!
//! Round restarts rebuild the separator set from per-site equi-depth
//! summaries with error `(ε/32)|A_j|` — O(k/ε) words, O(log n) times.
//!
//! The maintained guarantee, verified continuously by tests:
//! `M` is an ε-approximate φ-quantile of A at all times, i.e. the rank
//! interval of `M` intersects `[(φ−ε)|A|, (φ+ε)|A|]`.
//!
//! ## Small space
//!
//! Sites are generic over [`OrderStore`]: [`ExactOrdered`] gives the
//! paper's main protocol; a Greenwald–Khanna store (ε′ = ε/64) gives the
//! O(1/ε·log(εn))-space variant, with the sketch error absorbed into the
//! polls' slack.

use dtrack_hash::{FxHashMap, FxHashSet};

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId,
};
use dtrack_sketch::{EquiDepthSummary, ExactOrdered, GreenwaldKhanna, MergedSummary, OrderStore};
use dtrack_wire::{
    put_bool, put_u32, put_u64, put_u8, put_vec_u32, put_vec_u64, DecodeError, WireMessage,
    WireReader,
};

use crate::common::{check_epsilon, check_phi, check_sites, CoreError, KCollector, ValueRange};

/// Parameters of the quantile-tracking protocol.
#[derive(Debug, Clone, Copy)]
pub struct QuantileConfig {
    /// Number of sites k (>= 2).
    pub k: u32,
    /// Approximation error ε ∈ (0, 0.5].
    pub epsilon: f64,
    /// The tracked quantile φ ∈ [0, 1] (1/2 = median).
    pub phi: f64,
    /// Stream size at which tracking starts; items before that are
    /// forwarded verbatim. Defaults to ⌈8k/ε⌉ so that all thresholds are
    /// at least one item.
    pub warmup_target: u64,
    /// Granularity constant for interval sizing: intervals are built at
    /// `c·εm/16` items and split at `c·εm/8`. The paper uses c = 3
    /// (build at 3εm/16, split at εm/4); experiment E16 ablates it.
    pub granularity: u32,
}

impl QuantileConfig {
    /// Standard configuration from the paper.
    pub fn new(k: u32, epsilon: f64, phi: f64) -> Result<Self, CoreError> {
        check_sites(k)?;
        check_epsilon(epsilon)?;
        check_phi(phi)?;
        Ok(QuantileConfig {
            k,
            epsilon,
            phi,
            warmup_target: (8.0 * k as f64 / epsilon).ceil() as u64,
            granularity: 3,
        })
    }

    /// Median tracking (φ = 1/2).
    pub fn median(k: u32, epsilon: f64) -> Result<Self, CoreError> {
        Self::new(k, epsilon, 0.5)
    }

    /// Override the warm-up length.
    pub fn with_warmup_target(mut self, warmup_target: u64) -> Self {
        self.warmup_target = warmup_target.max(4);
        self
    }

    /// Override the interval granularity constant (2..=6 are sensible).
    pub fn with_granularity(mut self, granularity: u32) -> Self {
        self.granularity = granularity.clamp(1, 7);
        self
    }

    /// Per-site reporting threshold for interval counters: `εm/4k`.
    fn interval_site_threshold(&self, m: u64) -> u64 {
        ((self.epsilon * m as f64 / (4.0 * self.k as f64)).floor() as u64).max(1)
    }

    /// Per-site reporting threshold for side counters: `εm/8k`.
    fn side_site_threshold(&self, m: u64) -> u64 {
        ((self.epsilon * m as f64 / (8.0 * self.k as f64)).floor() as u64).max(1)
    }

    /// Coordinator split trigger: `εm/4` (scaled by granularity/3).
    fn split_threshold(&self, m: u64) -> u64 {
        ((self.granularity as f64 / 3.0) * self.epsilon * m as f64 / 4.0)
            .floor()
            .max(2.0) as u64
    }

    /// Interval size targeted at (re)builds: `granularity·εm/16`
    /// (= 3εm/16 for the paper's constants).
    fn build_gap(&self, m: u64) -> u64 {
        ((self.granularity as f64 * self.epsilon * m as f64 / 16.0).floor() as u64).max(1)
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Upstream messages (site → coordinator).
#[derive(Debug, Clone, PartialEq)]
pub enum QUp {
    /// Warm-up: forward the raw item.
    Raw { item: u64 },
    /// Interval `id` gained `delta` items at this site.
    IntervalDelta { id: u32, delta: u64 },
    /// `delta` items arrived on one side of the pivot (tagged with the
    /// pivot epoch so reports for a stale pivot are discarded).
    SideDelta { epoch: u32, left: bool, delta: u64 },
    /// Reply to [`QDown::SummaryPoll`].
    FullSummary(EquiDepthSummary),
    /// Reply to [`QDown::Install`]: exact count per interval, in order.
    IntervalCounts(Vec<u64>),
    /// Reply to [`QDown::SidePoll`]: exact counts left/right of the pivot.
    SideCounts { left: u64, right: u64 },
    /// Reply to [`QDown::RangePoll`].
    RangeCount { count: u64 },
    /// Reply to [`QDown::RangeSummaryPoll`].
    RangeSummary(EquiDepthSummary),
    /// Reply to [`QDown::SplitInstall`]: exact counts of the two halves.
    SplitCounts { left: u64, right: u64 },
}

impl MessageSize for QUp {
    fn size_words(&self) -> u64 {
        match self {
            QUp::Raw { .. } => 2,
            QUp::IntervalDelta { .. } => 3,
            QUp::SideDelta { .. } => 3,
            QUp::FullSummary(s) => s.wire_words(),
            QUp::IntervalCounts(v) => v.len() as u64 + 1,
            QUp::SideCounts { .. } => 3,
            QUp::RangeCount { .. } => 2,
            QUp::RangeSummary(s) => s.wire_words(),
            QUp::SplitCounts { .. } => 3,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            QUp::Raw { .. } => "q/raw",
            QUp::IntervalDelta { .. } => "q/interval-delta",
            QUp::SideDelta { .. } => "q/side-delta",
            QUp::FullSummary(_) => "q/full-summary",
            QUp::IntervalCounts(_) => "q/interval-counts",
            QUp::SideCounts { .. } => "q/side-counts",
            QUp::RangeCount { .. } => "q/range-count",
            QUp::RangeSummary(_) => "q/range-summary",
            QUp::SplitCounts { .. } => "q/split-counts",
        }
    }
}

/// Downstream messages (coordinator → site).
#[derive(Debug, Clone, PartialEq)]
pub enum QDown {
    /// Request an equi-depth summary of the whole local stream.
    SummaryPoll,
    /// Install a fresh separator set for a new round.
    Install {
        /// Pivot epoch after this install.
        epoch: u32,
        /// The separators, sorted, strictly increasing.
        seps: Vec<u64>,
        /// Stable interval ids, one per interval (`seps.len() + 1`).
        ids: Vec<u32>,
        /// The new pivot (must be one of `seps`).
        pivot: u64,
        /// Round-start cardinality, for threshold computation.
        m: u64,
    },
    /// Request exact counts left/right of the current pivot.
    SidePoll,
    /// Request the exact count of items in `range`.
    RangePoll {
        /// The value range to count.
        range: ValueRange,
    },
    /// Adopt a new pivot and reset side counters.
    SetPivot {
        /// New pivot epoch.
        epoch: u32,
        /// The new pivot.
        pivot: u64,
    },
    /// Request an equi-depth summary of the items in `range`.
    RangeSummaryPoll {
        /// The value range to summarize.
        range: ValueRange,
    },
    /// Split the interval containing `sep` at `sep`.
    SplitInstall {
        /// New separator value.
        sep: u64,
        /// Stable id of the left half.
        left_id: u32,
        /// Stable id of the right half.
        right_id: u32,
    },
}

impl MessageSize for QDown {
    fn size_words(&self) -> u64 {
        match self {
            QDown::SummaryPoll => 1,
            QDown::Install { seps, ids, .. } => seps.len() as u64 + ids.len() as u64 + 4,
            QDown::SidePoll => 1,
            QDown::RangePoll { range } => 1 + range.words(),
            QDown::SetPivot { .. } => 3,
            QDown::RangeSummaryPoll { range } => 1 + range.words(),
            QDown::SplitInstall { .. } => 4,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            QDown::SummaryPoll => "q/summary-poll",
            QDown::Install { .. } => "q/install",
            QDown::SidePoll => "q/side-poll",
            QDown::RangePoll { .. } => "q/range-poll",
            QDown::SetPivot { .. } => "q/set-pivot",
            QDown::RangeSummaryPoll { .. } => "q/range-summary-poll",
            QDown::SplitInstall { .. } => "q/split-install",
        }
    }
}

impl WireMessage for QUp {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            QUp::Raw { item } => {
                put_u8(out, 0);
                put_u64(out, *item);
            }
            QUp::IntervalDelta { id, delta } => {
                put_u8(out, 1);
                put_u32(out, *id);
                put_u64(out, *delta);
            }
            QUp::SideDelta { epoch, left, delta } => {
                put_u8(out, 2);
                put_u32(out, *epoch);
                put_bool(out, *left);
                put_u64(out, *delta);
            }
            QUp::FullSummary(s) => {
                put_u8(out, 3);
                s.wire_encode(out);
            }
            QUp::IntervalCounts(v) => {
                put_u8(out, 4);
                put_vec_u64(out, v);
            }
            QUp::SideCounts { left, right } => {
                put_u8(out, 5);
                put_u64(out, *left);
                put_u64(out, *right);
            }
            QUp::RangeCount { count } => {
                put_u8(out, 6);
                put_u64(out, *count);
            }
            QUp::RangeSummary(s) => {
                put_u8(out, 7);
                s.wire_encode(out);
            }
            QUp::SplitCounts { left, right } => {
                put_u8(out, 8);
                put_u64(out, *left);
                put_u64(out, *right);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("QUp")?;
        match tag {
            0 => Ok(QUp::Raw { item: r.u64()? }),
            1 => Ok(QUp::IntervalDelta {
                id: r.u32()?,
                delta: r.u64()?,
            }),
            2 => Ok(QUp::SideDelta {
                epoch: r.u32()?,
                left: r.bool()?,
                delta: r.u64()?,
            }),
            3 => Ok(QUp::FullSummary(EquiDepthSummary::wire_decode(r)?)),
            4 => Ok(QUp::IntervalCounts(r.vec_u64()?)),
            5 => Ok(QUp::SideCounts {
                left: r.u64()?,
                right: r.u64()?,
            }),
            6 => Ok(QUp::RangeCount { count: r.u64()? }),
            7 => Ok(QUp::RangeSummary(EquiDepthSummary::wire_decode(r)?)),
            8 => Ok(QUp::SplitCounts {
                left: r.u64()?,
                right: r.u64()?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "QUp",
                tag,
                offset,
            }),
        }
    }
}

impl WireMessage for QDown {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            QDown::SummaryPoll => put_u8(out, 0),
            QDown::Install {
                epoch,
                seps,
                ids,
                pivot,
                m,
            } => {
                put_u8(out, 1);
                put_u32(out, *epoch);
                put_vec_u64(out, seps);
                put_vec_u32(out, ids);
                put_u64(out, *pivot);
                put_u64(out, *m);
            }
            QDown::SidePoll => put_u8(out, 2),
            QDown::RangePoll { range } => {
                put_u8(out, 3);
                range.wire_encode(out);
            }
            QDown::SetPivot { epoch, pivot } => {
                put_u8(out, 4);
                put_u32(out, *epoch);
                put_u64(out, *pivot);
            }
            QDown::RangeSummaryPoll { range } => {
                put_u8(out, 5);
                range.wire_encode(out);
            }
            QDown::SplitInstall {
                sep,
                left_id,
                right_id,
            } => {
                put_u8(out, 6);
                put_u64(out, *sep);
                put_u32(out, *left_id);
                put_u32(out, *right_id);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let (tag, offset) = r.tag("QDown")?;
        match tag {
            0 => Ok(QDown::SummaryPoll),
            1 => Ok(QDown::Install {
                epoch: r.u32()?,
                seps: r.vec_u64()?,
                ids: r.vec_u32()?,
                pivot: r.u64()?,
                m: r.u64()?,
            }),
            2 => Ok(QDown::SidePoll),
            3 => Ok(QDown::RangePoll {
                range: ValueRange::wire_decode(r)?,
            }),
            4 => Ok(QDown::SetPivot {
                epoch: r.u32()?,
                pivot: r.u64()?,
            }),
            5 => Ok(QDown::RangeSummaryPoll {
                range: ValueRange::wire_decode(r)?,
            }),
            6 => Ok(QDown::SplitInstall {
                sep: r.u64()?,
                left_id: r.u32()?,
                right_id: r.u32()?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "QDown",
                tag,
                offset,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Site
// ---------------------------------------------------------------------

/// Per-round tracking state at a site.
#[derive(Debug, Clone)]
struct SiteTracking {
    seps: Vec<u64>,
    ids: Vec<u32>,
    unrep: Vec<u64>,
    interval_threshold: u64,
    pivot: u64,
    pivot_epoch: u32,
    left_unrep: u64,
    right_unrep: u64,
    side_threshold: u64,
}

impl SiteTracking {
    /// Interval position of `x`: the number of separators `<= x`.
    fn interval_of(&self, x: u64) -> usize {
        self.seps.partition_point(|&s| s <= x)
    }

    /// Bounds of interval `pos` as a [`ValueRange`].
    fn bounds(&self, pos: usize) -> ValueRange {
        let lo = if pos == 0 { 0 } else { self.seps[pos - 1] };
        let hi = self.seps.get(pos).copied();
        ValueRange { lo, hi }
    }
}

/// A quantile-tracking site, generic over its local ordered store.
#[derive(Debug, Clone)]
pub struct QuantileSite<S = ExactOrdered> {
    config: QuantileConfig,
    store: S,
    tracking: Option<SiteTracking>,
}

/// Exact-store site (the paper's main protocol).
pub type ExactQuantileSite = QuantileSite<ExactOrdered>;
/// Greenwald–Khanna-backed small-space site.
pub type SketchQuantileSite = QuantileSite<GreenwaldKhanna>;

impl QuantileSite<ExactOrdered> {
    /// Site with exact local state.
    pub fn exact(config: QuantileConfig) -> Self {
        QuantileSite::with_store(config, ExactOrdered::new())
    }
}

impl QuantileSite<GreenwaldKhanna> {
    /// Site with a Greenwald–Khanna store of error ε/64 — the
    /// O(1/ε · log(εn))-space variant.
    pub fn sketched(config: QuantileConfig) -> Self {
        let store = GreenwaldKhanna::new(config.epsilon / 64.0);
        QuantileSite::with_store(config, store)
    }
}

impl<S: OrderStore> QuantileSite<S> {
    /// Site with a caller-provided store.
    pub fn with_store(config: QuantileConfig, store: S) -> Self {
        QuantileSite {
            config,
            store,
            tracking: None,
        }
    }

    /// The local store (oracle access).
    pub fn store(&self) -> &S {
        &self.store
    }

    fn range_count(&self, range: &ValueRange) -> u64 {
        let hi_rank = range
            .hi
            .map_or(self.store.total(), |h| self.store.rank_lt(h));
        hi_rank.saturating_sub(self.store.rank_lt(range.lo))
    }
}

impl<S: OrderStore> Site for QuantileSite<S> {
    type Item = u64;
    type Up = QUp;
    type Down = QDown;

    fn on_item(&mut self, item: u64, out: &mut Vec<QUp>) {
        self.store.insert(item);
        let t = match self.tracking.as_mut() {
            None => {
                out.push(QUp::Raw { item });
                return;
            }
            Some(t) => t,
        };
        let pos = t.interval_of(item);
        t.unrep[pos] += 1;
        if t.unrep[pos] >= t.interval_threshold {
            out.push(QUp::IntervalDelta {
                id: t.ids[pos],
                delta: t.unrep[pos],
            });
            t.unrep[pos] = 0;
        }
        if item < t.pivot {
            t.left_unrep += 1;
            if t.left_unrep >= t.side_threshold {
                out.push(QUp::SideDelta {
                    epoch: t.pivot_epoch,
                    left: true,
                    delta: t.left_unrep,
                });
                t.left_unrep = 0;
            }
        } else {
            t.right_unrep += 1;
            if t.right_unrep >= t.side_threshold {
                out.push(QUp::SideDelta {
                    epoch: t.pivot_epoch,
                    left: false,
                    delta: t.right_unrep,
                });
                t.right_unrep = 0;
            }
        }
    }

    fn on_message(&mut self, msg: &QDown, out: &mut Vec<QUp>) {
        match msg {
            QDown::SummaryPoll => {
                let step = ((self.config.epsilon * self.store.total() as f64 / 32.0).floor()
                    as u64)
                    .max(1);
                out.push(QUp::FullSummary(self.store.summary(step)));
            }
            QDown::Install {
                epoch,
                seps,
                ids,
                pivot,
                m,
            } => {
                let tracking = SiteTracking {
                    seps: seps.clone(),
                    ids: ids.clone(),
                    unrep: vec![0; ids.len()],
                    interval_threshold: self.config.interval_site_threshold(*m),
                    pivot: *pivot,
                    pivot_epoch: *epoch,
                    left_unrep: 0,
                    right_unrep: 0,
                    side_threshold: self.config.side_site_threshold(*m),
                };
                // Exact per-interval counts: consecutive rank differences.
                let mut counts = Vec::with_capacity(ids.len());
                let mut prev = 0u64;
                for &s in seps {
                    let r = self.store.rank_lt(s);
                    counts.push(r.saturating_sub(prev));
                    prev = r;
                }
                counts.push(self.store.total().saturating_sub(prev));
                self.tracking = Some(tracking);
                out.push(QUp::IntervalCounts(counts));
            }
            QDown::SidePoll => {
                let pivot = self.tracking.as_ref().map_or(0, |t| t.pivot);
                let left = self.store.rank_lt(pivot);
                out.push(QUp::SideCounts {
                    left,
                    right: self.store.total().saturating_sub(left),
                });
            }
            QDown::RangePoll { range } => {
                out.push(QUp::RangeCount {
                    count: self.range_count(range),
                });
            }
            QDown::SetPivot { epoch, pivot } => {
                if let Some(t) = self.tracking.as_mut() {
                    t.pivot = *pivot;
                    t.pivot_epoch = *epoch;
                    t.left_unrep = 0;
                    t.right_unrep = 0;
                }
            }
            QDown::RangeSummaryPoll { range } => {
                let cnt = self.range_count(range);
                let step = (cnt / 32).max(1);
                out.push(QUp::RangeSummary(
                    self.store.summary_range(range.lo, range.hi, step),
                ));
            }
            QDown::SplitInstall {
                sep,
                left_id,
                right_id,
            } => {
                if let Some(t) = self.tracking.as_mut() {
                    let pos = t.interval_of(*sep);
                    let old = t.bounds(pos);
                    let left_range = ValueRange::new(old.lo, Some(*sep));
                    let right_range = ValueRange {
                        lo: *sep,
                        hi: old.hi,
                    };
                    t.seps.insert(pos, *sep);
                    t.ids[pos] = *left_id;
                    t.ids.insert(pos + 1, *right_id);
                    t.unrep[pos] = 0;
                    t.unrep.insert(pos + 1, 0);
                    let left = self.range_count(&left_range);
                    let right = self.range_count(&right_range);
                    out.push(QUp::SplitCounts { left, right });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Running statistics of the coordinator's structural operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantileStats {
    /// Full rebuilds (round restarts), bounded by O(log n).
    pub rebuilds: u64,
    /// Pivot recenters, bounded by O(1/ε) per round.
    pub recenters: u64,
    /// Interval splits, bounded by O(1/ε) per round.
    pub splits: u64,
    /// Total probe polls across all recenters (O(1) each per the paper).
    pub probes: u64,
}

/// In-flight multi-message exchange at the coordinator.
#[derive(Debug, Clone)]
enum Pending {
    /// Awaiting whole-stream summaries for a round rebuild.
    Rebuild(KCollector<EquiDepthSummary>),
    /// Awaiting per-interval counts after an install.
    InstallWait {
        seps: Vec<u64>,
        ids: Vec<u32>,
        pivot: u64,
        collector: KCollector<Vec<u64>>,
    },
    /// Awaiting exact side counts at the start of a recenter.
    RecenterSides(KCollector<(u64, u64)>),
    /// Awaiting a range-count probe during a recenter walk.
    RecenterProbe {
        /// Exact rank of the current pivot.
        l: u64,
        /// Exact stream size.
        n: u64,
        /// Target rank φ·n.
        target: f64,
        /// Separator index of the current pivot.
        pivot_idx: usize,
        /// Separator index being probed.
        cand_idx: usize,
        /// Best candidate seen so far: (separator index, exact rank, |diff|).
        best: (usize, u64, f64),
        collector: KCollector<u64>,
    },
    /// Awaiting range summaries for an interval split.
    SplitSummaries {
        pos: usize,
        collector: KCollector<EquiDepthSummary>,
    },
    /// Awaiting exact half counts after a split install.
    SplitWait {
        pos: usize,
        sep: u64,
        left_id: u32,
        right_id: u32,
        collector: KCollector<(u64, u64)>,
    },
}

/// The quantile-tracking coordinator.
#[derive(Debug, Clone)]
pub struct QuantileCoordinator {
    config: QuantileConfig,
    /// Warm-up store; `None` once tracking has started.
    warmup: Option<ExactOrdered>,
    pending: Option<Pending>,
    // --- round state ---
    m_round: u64,
    seps: Vec<u64>,
    ids: Vec<u32>,
    counts: Vec<u64>,
    id_pos: FxHashMap<u32, usize>,
    next_id: u32,
    no_split: FxHashSet<u32>,
    // --- pivot state ---
    pivot: u64,
    pivot_epoch: u32,
    r_base: u64,
    n_base: u64,
    base_drift: f64,
    dl: u64,
    dr: u64,
    stats: QuantileStats,
}

impl QuantileCoordinator {
    /// Fresh coordinator.
    pub fn new(config: QuantileConfig) -> Self {
        QuantileCoordinator {
            config,
            warmup: Some(ExactOrdered::new()),
            pending: None,
            m_round: 0,
            seps: Vec::new(),
            ids: Vec::new(),
            counts: Vec::new(),
            id_pos: FxHashMap::default(),
            next_id: 0,
            no_split: FxHashSet::default(),
            pivot: 0,
            pivot_epoch: 0,
            r_base: 0,
            n_base: 0,
            base_drift: 0.0,
            dl: 0,
            dr: 0,
            stats: QuantileStats::default(),
        }
    }

    /// True while the protocol is still forwarding raw items.
    pub fn in_warmup(&self) -> bool {
        self.warmup.is_some()
    }

    /// The tracked ε-approximate φ-quantile. During warm-up this is the
    /// exact quantile of the forwarded items.
    pub fn quantile(&self) -> Option<u64> {
        match &self.warmup {
            Some(store) => {
                let n = store.len();
                if n == 0 {
                    return None;
                }
                let target = ((self.config.phi * n as f64).ceil() as u64).clamp(1, n);
                store.select(target - 1)
            }
            None => Some(self.pivot),
        }
    }

    /// Estimated current stream size n̂ (an underestimate within εm/4).
    pub fn n_estimate(&self) -> u64 {
        match &self.warmup {
            Some(store) => store.len(),
            None => self.n_base + self.dl + self.dr,
        }
    }

    /// Estimated rank of the tracked pivot.
    pub fn pivot_rank_estimate(&self) -> u64 {
        self.r_base + self.dl
    }

    /// Structural operation counters.
    pub fn stats(&self) -> QuantileStats {
        self.stats
    }

    /// Number of separators currently maintained (Θ(1/ε)).
    pub fn separator_count(&self) -> usize {
        self.seps.len()
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn interval_bounds(&self, pos: usize) -> ValueRange {
        let lo = if pos == 0 { 0 } else { self.seps[pos - 1] };
        let hi = self.seps.get(pos).copied();
        ValueRange { lo, hi }
    }

    /// Build separators from a merged summary and broadcast the install.
    fn begin_install(&mut self, merged: &MergedSummary, m: u64, out: &mut Outbox<QDown>) {
        let gap = self.config.build_gap(m);
        let mut seps = Vec::new();
        let mut r = gap;
        while r < m {
            if let Some(v) = merged.select(r) {
                if seps.last().is_none_or(|&last| v > last) {
                    seps.push(v);
                }
            }
            r += gap;
        }
        if seps.is_empty() {
            // Degenerate stream (e.g. a single distinct value): fall back
            // to one separator so the pivot is well defined. The answer is
            // still a valid quantile by the rank-interval criterion.
            if let Some(v) = merged.select(m / 2) {
                seps.push(v);
            } else {
                seps.push(0);
            }
        }
        // Pivot: separator whose estimated rank is closest to φ·m.
        let target = self.config.phi * m as f64;
        let pivot = *seps
            .iter()
            .min_by(|&&a, &&b| {
                let da = (merged.rank_estimate(a) as f64 - target).abs();
                let db = (merged.rank_estimate(b) as f64 - target).abs();
                da.partial_cmp(&db).expect("finite rank estimates")
            })
            .expect("separators are nonempty");
        let ids: Vec<u32> = (0..=seps.len()).map(|_| self.fresh_id()).collect();
        self.pivot_epoch += 1;
        out.broadcast(QDown::Install {
            epoch: self.pivot_epoch,
            seps: seps.clone(),
            ids: ids.clone(),
            pivot,
            m,
        });
        self.no_split.clear();
        self.pending = Some(Pending::InstallWait {
            seps,
            ids,
            pivot,
            collector: KCollector::new(self.config.k),
        });
    }

    /// Finish an install once all interval counts are in.
    fn finish_install(
        &mut self,
        seps: Vec<u64>,
        ids: Vec<u32>,
        pivot: u64,
        per_site: Vec<Vec<u64>>,
    ) {
        let intervals = ids.len();
        let mut counts = vec![0u64; intervals];
        for site_counts in &per_site {
            for (i, c) in site_counts.iter().enumerate().take(intervals) {
                counts[i] += c;
            }
        }
        let n: u64 = counts.iter().sum();
        let pivot_idx = seps.binary_search(&pivot).unwrap_or_else(|i| i);
        let r: u64 = counts.iter().take(pivot_idx + 1).sum();
        self.id_pos = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        self.seps = seps;
        self.ids = ids;
        self.counts = counts;
        self.pivot = pivot;
        self.r_base = r;
        self.n_base = n;
        self.base_drift = r as f64 - self.config.phi * n as f64;
        self.dl = 0;
        self.dr = 0;
        self.m_round = n.max(1);
        self.warmup = None;
        self.pending = None;
        self.stats.rebuilds += 1;
    }

    /// Evaluate rebuild / split / recenter triggers; start at most one
    /// exchange. Called only when no exchange is pending.
    fn maybe_trigger(&mut self, out: &mut Outbox<QDown>) {
        debug_assert!(self.pending.is_none());
        if self.warmup.is_some() {
            return;
        }
        let m = self.m_round;
        let n_hat = self.n_base + self.dl + self.dr;
        // 1. Round restart when the stream has doubled.
        if n_hat >= 2 * m {
            self.pending = Some(Pending::Rebuild(KCollector::new(self.config.k)));
            out.broadcast(QDown::SummaryPoll);
            return;
        }
        // 2. Interval split when a tracked count reaches the threshold.
        let split_at = self.config.split_threshold(m);
        if let Some(pos) = self
            .counts
            .iter()
            .enumerate()
            .position(|(i, &c)| c >= split_at && !self.no_split.contains(&self.ids[i]))
        {
            let range = self.interval_bounds(pos);
            self.pending = Some(Pending::SplitSummaries {
                pos,
                collector: KCollector::new(self.config.k),
            });
            out.broadcast(QDown::RangeSummaryPoll { range });
            return;
        }
        // 3. Pivot recenter when the estimated rank drift is too large.
        let eps_m = self.config.epsilon * m as f64;
        let new_drift = (1.0 - self.config.phi) * self.dl as f64 - self.config.phi * self.dr as f64;
        let total_drift = self.base_drift + new_drift;
        if total_drift.abs() >= 7.0 * eps_m / 8.0 && new_drift.abs() >= eps_m / 8.0 {
            self.pending = Some(Pending::RecenterSides(KCollector::new(self.config.k)));
            out.broadcast(QDown::SidePoll);
        }
    }

    /// Commit a recenter: new pivot with exact rank `r` out of `n` items.
    fn finalize_recenter(&mut self, pivot: u64, r: u64, n: u64, out: &mut Outbox<QDown>) {
        self.pivot = pivot;
        self.pivot_epoch += 1;
        self.r_base = r;
        self.n_base = n;
        self.base_drift = r as f64 - self.config.phi * n as f64;
        self.dl = 0;
        self.dr = 0;
        self.pending = None;
        self.stats.recenters += 1;
        out.broadcast(QDown::SetPivot {
            epoch: self.pivot_epoch,
            pivot,
        });
    }

    /// Launch the probe of `cand_idx` during a recenter walk.
    #[allow(clippy::too_many_arguments)] // walk state is one logical tuple
    fn probe(
        &mut self,
        l: u64,
        n: u64,
        target: f64,
        pivot_idx: usize,
        cand_idx: usize,
        best: (usize, u64, f64),
        out: &mut Outbox<QDown>,
    ) {
        let (lo_idx, hi_idx) = if cand_idx < pivot_idx {
            (cand_idx, pivot_idx)
        } else {
            (pivot_idx, cand_idx)
        };
        let range = ValueRange::new(self.seps[lo_idx], Some(self.seps[hi_idx]));
        self.pending = Some(Pending::RecenterProbe {
            l,
            n,
            target,
            pivot_idx,
            cand_idx,
            best,
            collector: KCollector::new(self.config.k),
        });
        self.stats.probes += 1;
        out.broadcast(QDown::RangePoll { range });
    }

    /// Step the recenter walk after exact side counts (or a probe) are in.
    #[allow(clippy::too_many_arguments)] // walk state is one logical tuple
    fn recenter_step(
        &mut self,
        l: u64,
        n: u64,
        target: f64,
        pivot_idx: usize,
        prev_cand: Option<(usize, u64)>,
        best: (usize, u64, f64),
        out: &mut Outbox<QDown>,
    ) {
        let eps_m = self.config.epsilon * self.m_round as f64;
        let accept = eps_m / 2.0;
        let (cur_idx, cur_rank) = prev_cand.unwrap_or((pivot_idx, l));
        let diff = cur_rank as f64 - target;
        let best = if diff.abs() < best.2 {
            (cur_idx, cur_rank, diff.abs())
        } else {
            best
        };
        if diff.abs() <= accept {
            let pivot = self.seps[cur_idx];
            self.finalize_recenter(pivot, cur_rank, n, out);
            return;
        }
        // Walk one separator toward the target.
        let next = if diff > 0.0 {
            cur_idx.checked_sub(1)
        } else if cur_idx + 1 < self.seps.len() {
            Some(cur_idx + 1)
        } else {
            None
        };
        // Detect overshoot: once the walk crosses the target, no further
        // candidate can improve, so commit the best seen.
        let crossed = {
            let start_diff = l as f64 - target;
            diff.signum() != start_diff.signum() && diff != 0.0
        };
        match next {
            Some(next_idx) if !crossed => {
                self.probe(l, n, target, pivot_idx, next_idx, best, out);
            }
            _ => {
                let pivot = self.seps[best.0];
                let r = best.1;
                self.finalize_recenter(pivot, r, n, out);
            }
        }
    }
}

impl Coordinator for QuantileCoordinator {
    type Up = QUp;
    type Down = QDown;

    fn on_message(&mut self, from: SiteId, msg: QUp, out: &mut Outbox<QDown>) {
        match msg {
            QUp::Raw { item } => {
                if let Some(store) = self.warmup.as_mut() {
                    store.insert(item);
                    if store.len() >= self.config.warmup_target && self.pending.is_none() {
                        // Build the first round directly from the exact
                        // warm-up store (zero polling cost).
                        let n = store.len();
                        let step = self.config.build_gap(n).min(n).max(1);
                        let summary =
                            EquiDepthSummary::from_sorted_counts(store.iter(), n, step.min(64));
                        let merged = MergedSummary::new(vec![summary]);
                        self.begin_install(&merged, n, out);
                    }
                }
            }
            QUp::IntervalDelta { id, delta } => {
                if let Some(&pos) = self.id_pos.get(&id) {
                    self.counts[pos] += delta;
                }
                if self.pending.is_none() {
                    self.maybe_trigger(out);
                }
            }
            QUp::SideDelta { epoch, left, delta } => {
                if epoch == self.pivot_epoch && self.warmup.is_none() {
                    if left {
                        self.dl += delta;
                    } else {
                        self.dr += delta;
                    }
                }
                if self.pending.is_none() {
                    self.maybe_trigger(out);
                }
            }
            QUp::FullSummary(s) => {
                if let Some(Pending::Rebuild(c)) = self.pending.as_mut() {
                    if c.put(from.index(), s) {
                        let Some(Pending::Rebuild(c)) = self.pending.take() else {
                            unreachable!("pending variant checked above");
                        };
                        let parts = c.take();
                        let merged = MergedSummary::new(parts);
                        let m = merged.total();
                        self.begin_install(&merged, m, out);
                    }
                }
            }
            QUp::IntervalCounts(v) => {
                if let Some(Pending::InstallWait { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), v) {
                        let Some(Pending::InstallWait {
                            seps,
                            ids,
                            pivot,
                            collector,
                        }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        self.finish_install(seps, ids, pivot, collector.take());
                        self.maybe_trigger(out);
                    }
                }
            }
            QUp::SideCounts { left, right } => {
                if let Some(Pending::RecenterSides(c)) = self.pending.as_mut() {
                    if c.put(from.index(), (left, right)) {
                        let Some(Pending::RecenterSides(c)) = self.pending.take() else {
                            unreachable!("pending variant checked above");
                        };
                        let sides = c.take();
                        let l: u64 = sides.iter().map(|&(a, _)| a).sum();
                        let r: u64 = sides.iter().map(|&(_, b)| b).sum();
                        let n = l + r;
                        let target = self.config.phi * n as f64;
                        let pivot_idx = self
                            .seps
                            .binary_search(&self.pivot)
                            .unwrap_or_else(|i| i.min(self.seps.len().saturating_sub(1)));
                        self.recenter_step(
                            l,
                            n,
                            target,
                            pivot_idx,
                            None,
                            (pivot_idx, l, f64::INFINITY),
                            out,
                        );
                        if self.pending.is_none() {
                            self.maybe_trigger(out);
                        }
                    }
                }
            }
            QUp::RangeCount { count } => {
                if let Some(Pending::RecenterProbe { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), count) {
                        let Some(Pending::RecenterProbe {
                            l,
                            n,
                            target,
                            pivot_idx,
                            cand_idx,
                            best,
                            collector,
                        }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        let cnt: u64 = collector.take().iter().sum();
                        let cand_rank = if cand_idx < pivot_idx {
                            l.saturating_sub(cnt)
                        } else {
                            l + cnt
                        };
                        self.recenter_step(
                            l,
                            n,
                            target,
                            pivot_idx,
                            Some((cand_idx, cand_rank)),
                            best,
                            out,
                        );
                        if self.pending.is_none() {
                            self.maybe_trigger(out);
                        }
                    }
                }
            }
            QUp::RangeSummary(s) => {
                if let Some(Pending::SplitSummaries { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), s) {
                        let Some(Pending::SplitSummaries { pos, collector }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        let merged = MergedSummary::new(collector.take());
                        let total = merged.total();
                        let range = self.interval_bounds(pos);
                        let sep = merged
                            .select(total / 2)
                            .filter(|&v| v > range.lo && range.hi.is_none_or(|h| v < h));
                        match sep {
                            Some(sep) => {
                                let left_id = self.fresh_id();
                                let right_id = self.fresh_id();
                                self.pending = Some(Pending::SplitWait {
                                    pos,
                                    sep,
                                    left_id,
                                    right_id,
                                    collector: KCollector::new(self.config.k),
                                });
                                out.broadcast(QDown::SplitInstall {
                                    sep,
                                    left_id,
                                    right_id,
                                });
                            }
                            None => {
                                // Unsplittable (duplicate-saturated)
                                // interval; remember and move on.
                                self.no_split.insert(self.ids[pos]);
                                self.pending = None;
                                self.maybe_trigger(out);
                            }
                        }
                    }
                }
            }
            QUp::SplitCounts { left, right } => {
                if let Some(Pending::SplitWait { collector, .. }) = self.pending.as_mut() {
                    if collector.put(from.index(), (left, right)) {
                        let Some(Pending::SplitWait {
                            pos,
                            sep,
                            left_id,
                            right_id,
                            collector,
                        }) = self.pending.take()
                        else {
                            unreachable!("pending variant checked above");
                        };
                        let halves = collector.take();
                        let l: u64 = halves.iter().map(|&(a, _)| a).sum();
                        let r: u64 = halves.iter().map(|&(_, b)| b).sum();
                        let old_id = self.ids[pos];
                        self.seps.insert(pos, sep);
                        self.ids[pos] = left_id;
                        self.ids.insert(pos + 1, right_id);
                        self.counts[pos] = l;
                        self.counts.insert(pos + 1, r);
                        self.no_split.remove(&old_id);
                        self.id_pos = self
                            .ids
                            .iter()
                            .enumerate()
                            .map(|(i, &id)| (id, i))
                            .collect();
                        self.stats.splits += 1;
                        self.pending = None;
                        self.maybe_trigger(out);
                    }
                }
            }
        }
    }
}

/// Convenience: build a full exact-store cluster.
pub fn exact_cluster(
    config: QuantileConfig,
) -> Result<dtrack_sim::Cluster<ExactQuantileSite, QuantileCoordinator>, CoreError> {
    let sites = (0..config.k).map(|_| QuantileSite::exact(config)).collect();
    dtrack_sim::Cluster::new(sites, QuantileCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// Convenience: build a full sketch-store cluster.
pub fn sketched_cluster(
    config: QuantileConfig,
) -> Result<dtrack_sim::Cluster<SketchQuantileSite, QuantileCoordinator>, CoreError> {
    let sites = (0..config.k)
        .map(|_| QuantileSite::sketched(config))
        .collect();
    dtrack_sim::Cluster::new(sites, QuantileCoordinator::new(config))
        .map_err(|_| CoreError::BadSiteCount(config.k))
}

/// Shared query dispatch for both single-quantile facade adapters.
fn quantile_query(
    label: &'static str,
    c: &QuantileCoordinator,
    query: Query,
) -> Result<Answer, QueryError> {
    match query {
        Query::TrackedQuantile => Ok(Answer::Quantile(c.quantile())),
        Query::Count => Ok(Answer::LengthEstimate(c.n_estimate())),
        other => Err(QueryError::Unsupported {
            protocol: label,
            query: other,
        }),
    }
}

/// Canonical answer set: the tracked quantile, then the n estimate.
fn quantile_answers(c: &QuantileCoordinator) -> Vec<Answer> {
    vec![
        Answer::Quantile(c.quantile()),
        Answer::LengthEstimate(c.n_estimate()),
    ]
}

/// [`Protocol`] adapter: the §3.1 single-quantile tracker with exact
/// (treap) sites, for the [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct QuantileExactProtocol {
    config: QuantileConfig,
}

impl QuantileExactProtocol {
    /// Wrap a validated [`QuantileConfig`].
    pub fn new(config: QuantileConfig) -> Self {
        QuantileExactProtocol { config }
    }
}

impl Protocol for QuantileExactProtocol {
    type Site = ExactQuantileSite;
    type Up = QUp;
    type Down = QDown;
    type Coordinator = QuantileCoordinator;

    fn label(&self) -> &'static str {
        "quantile-exact"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<ExactQuantileSite>, QuantileCoordinator), String> {
        let sites = (0..k).map(|_| QuantileSite::exact(self.config)).collect();
        Ok((sites, QuantileCoordinator::new(self.config)))
    }

    fn query(&self, c: &QuantileCoordinator, query: Query) -> Result<Answer, QueryError> {
        quantile_query(self.label(), c, query)
    }

    fn answers(&self, c: &QuantileCoordinator) -> Result<Vec<Answer>, QueryError> {
        Ok(quantile_answers(c))
    }
}

/// [`Protocol`] adapter: the §3.1 single-quantile tracker with
/// Greenwald–Khanna sites, for the [`dtrack_sim::Tracker`] facade.
#[derive(Debug, Clone, Copy)]
pub struct QuantileSketchedProtocol {
    config: QuantileConfig,
}

impl QuantileSketchedProtocol {
    /// Wrap a validated [`QuantileConfig`].
    pub fn new(config: QuantileConfig) -> Self {
        QuantileSketchedProtocol { config }
    }
}

impl Protocol for QuantileSketchedProtocol {
    type Site = SketchQuantileSite;
    type Up = QUp;
    type Down = QDown;
    type Coordinator = QuantileCoordinator;

    fn label(&self) -> &'static str {
        "quantile-sketched"
    }

    fn sites_hint(&self) -> Option<u32> {
        Some(self.config.k)
    }

    fn build(&self, k: u32) -> Result<(Vec<SketchQuantileSite>, QuantileCoordinator), String> {
        let sites = (0..k)
            .map(|_| QuantileSite::sketched(self.config))
            .collect();
        Ok((sites, QuantileCoordinator::new(self.config)))
    }

    fn query(&self, c: &QuantileCoordinator, query: Query) -> Result<Answer, QueryError> {
        quantile_query(self.label(), c, query)
    }

    fn answers(&self, c: &QuantileCoordinator) -> Result<Vec<Answer>, QueryError> {
        Ok(quantile_answers(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn uniform_stream(n: u64, seed: u64, universe: u64) -> Vec<u64> {
        let mut st = seed;
        (0..n).map(|_| xorshift(&mut st) % universe).collect()
    }

    fn run_and_check_continuously(
        k: u32,
        epsilon: f64,
        phi: f64,
        stream: &[u64],
        check_every: usize,
    ) -> dtrack_sim::Cluster<ExactQuantileSite, QuantileCoordinator> {
        let config = QuantileConfig::new(k, epsilon, phi).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, &x) in stream.iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
            if i % check_every == 0 {
                let q = cluster.coordinator().quantile().expect("nonempty");
                assert!(
                    oracle.quantile_ok(q, phi, epsilon),
                    "item {i}: {q} is not an ε-approx {phi}-quantile \
                     (rank {} of {})",
                    oracle.rank_lt(q),
                    oracle.total()
                );
            }
        }
        cluster
    }

    #[test]
    fn median_tracks_uniform_stream() {
        let stream = uniform_stream(30_000, 42, 1 << 40);
        run_and_check_continuously(4, 0.05, 0.5, &stream, 1);
    }

    #[test]
    fn extreme_quantiles_track() {
        let stream = uniform_stream(20_000, 7, 1 << 30);
        run_and_check_continuously(3, 0.1, 0.05, &stream, 7);
        run_and_check_continuously(3, 0.1, 0.95, &stream, 7);
    }

    #[test]
    fn sorted_ramp_forces_recenters_and_stays_correct() {
        // Ascending values constantly push the median right — the
        // recentering worst case.
        let stream: Vec<u64> = (0..25_000u64).map(|i| i * 3).collect();
        let cluster = run_and_check_continuously(4, 0.08, 0.5, &stream, 1);
        let stats = cluster.coordinator().stats();
        assert!(stats.recenters > 0, "ramp must force recenters");
    }

    #[test]
    fn duplicate_heavy_stream_stays_valid() {
        // Half the stream is a single value; rank intervals do the work.
        let mut stream = Vec::new();
        let mut st = 11u64;
        for i in 0..20_000u64 {
            stream.push(if i % 2 == 0 {
                1 << 20
            } else {
                xorshift(&mut st) % (1 << 30)
            });
        }
        run_and_check_continuously(4, 0.1, 0.5, &stream, 13);
    }

    #[test]
    fn cost_grows_logarithmically_in_n() {
        let config = QuantileConfig::median(4, 0.1).unwrap();
        let run = |n: u64| {
            let mut cluster = exact_cluster(config).unwrap();
            for (i, x) in uniform_stream(n, 3, 1 << 40).into_iter().enumerate() {
                cluster.feed(SiteId((i % 4) as u32), x).unwrap();
            }
            cluster.meter().total_words()
        };
        let w1 = run(20_000);
        let w2 = run(200_000);
        assert!(w2 < w1 * 4, "cost not logarithmic: {w1} -> {w2}");
        assert!(w2 > w1);
    }

    #[test]
    fn rounds_and_splits_bounded() {
        let config = QuantileConfig::median(4, 0.1).unwrap();
        let n = 100_000u64;
        let mut cluster = exact_cluster(config).unwrap();
        for (i, x) in uniform_stream(n, 9, 1 << 40).into_iter().enumerate() {
            cluster.feed(SiteId((i % 4) as u32), x).unwrap();
        }
        let stats = cluster.coordinator().stats();
        // O(log n) rounds.
        let max_rounds = ((n as f64) / 320.0).log2() + 3.0;
        assert!(
            (stats.rebuilds as f64) <= max_rounds,
            "{} rebuilds > {max_rounds}",
            stats.rebuilds
        );
        // O(1/ε) splits and recenters per round.
        let per_round = 4.0 / 0.1;
        assert!(
            (stats.splits as f64) <= (stats.rebuilds as f64 + 1.0) * per_round,
            "{} splits too many",
            stats.splits
        );
        // O(1) probes per recenter on average.
        if stats.recenters > 0 {
            assert!(
                stats.probes <= stats.recenters * 8,
                "{} probes for {} recenters",
                stats.probes,
                stats.recenters
            );
        }
    }

    #[test]
    fn sketched_sites_track_within_doubled_epsilon() {
        let k = 4;
        let epsilon = 0.1;
        let config = QuantileConfig::median(k, epsilon).unwrap();
        let mut cluster = sketched_cluster(config).unwrap();
        let mut oracle = ExactOracle::new();
        for (i, x) in uniform_stream(30_000, 21, 1 << 35).into_iter().enumerate() {
            oracle.observe(x);
            cluster.feed(SiteId((i % k as usize) as u32), x).unwrap();
            if i % 25 == 0 {
                let q = cluster.coordinator().quantile().expect("nonempty");
                assert!(
                    oracle.quantile_ok(q, 0.5, 2.0 * epsilon),
                    "item {i}: sketched quantile {q} outside 2ε"
                );
            }
        }
        // Space: GK store, not the full stream.
        for s in cluster.sites() {
            assert!(s.store().entries() < 7_500, "site store too large");
        }
    }

    #[test]
    fn n_estimate_is_close_underestimate() {
        let config = QuantileConfig::median(3, 0.1).unwrap();
        let mut cluster = exact_cluster(config).unwrap();
        let n = 20_000u64;
        for (i, x) in uniform_stream(n, 5, 1 << 30).into_iter().enumerate() {
            cluster.feed(SiteId((i % 3) as u32), x).unwrap();
        }
        let est = cluster.coordinator().n_estimate();
        assert!(est <= n);
        assert!(
            est as f64 >= n as f64 * 0.9,
            "estimate {est} too low for {n}"
        );
    }

    #[test]
    fn config_validation() {
        assert!(QuantileConfig::new(1, 0.1, 0.5).is_err());
        assert!(QuantileConfig::new(4, 0.0, 0.5).is_err());
        assert!(QuantileConfig::new(4, 0.1, 1.5).is_err());
        let c = QuantileConfig::new(4, 0.1, 0.5)
            .unwrap()
            .with_granularity(99);
        assert_eq!(c.granularity, 7);
    }

    #[test]
    fn granularity_ablation_changes_structure() {
        let stream = uniform_stream(60_000, 17, 1 << 40);
        let run = |g: u32| {
            let config = QuantileConfig::median(4, 0.1).unwrap().with_granularity(g);
            let mut cluster = exact_cluster(config).unwrap();
            for (i, &x) in stream.iter().enumerate() {
                cluster.feed(SiteId((i % 4) as u32), x).unwrap();
            }
            (
                cluster.meter().total_words(),
                cluster.coordinator().separator_count(),
            )
        };
        let (_, seps_fine) = run(1);
        let (_, seps_coarse) = run(6);
        assert!(
            seps_fine > seps_coarse,
            "finer granularity must mean more separators: {seps_fine} vs {seps_coarse}"
        );
    }
}
