//! Tracking |A|: the (1+ε)-factor counting protocol.
//!
//! From the paper's introduction: "The simplest case f(A) = |A| just counts
//! the total number of items received so far across all the sites. This
//! problem can be easily solved with O(k/ε · log n) communication where
//! each site simply reports to the coordinator whenever its local count
//! increases by a 1 + ε factor."
//!
//! The coordinator's estimate is a (1−ε)-underestimate of the true total:
//! each site's unreported backlog is less than ε times its last report,
//! hence less than ε times its local count, and the deficits sum to less
//! than ε·n.
//!
//! Each site sends O(log_{1+ε} n_j) = O(log n / ε) messages of one word,
//! totaling O(k/ε · log n) words — the protocol's cost bound, verified by
//! this module's scaling tests and exercised by every protocol that
//! embeds count tracking (the window trackers' epoch detection).

use dtrack_sim::{
    Answer, Coordinator, MessageSize, Outbox, Protocol, Query, QueryError, Site, SiteId,
};

use dtrack_wire::{put_u64, DecodeError, WireMessage, WireReader};

use crate::common::{check_epsilon, CoreError};

/// Upstream message: the increment since the site's last report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountDelta(pub u64);

impl MessageSize for CountDelta {
    fn size_words(&self) -> u64 {
        1
    }
    fn kind(&self) -> &'static str {
        "count/delta"
    }
}

/// The counter protocol never sends downstream messages; this uninhabited
/// type records that in the type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoDown {}

impl MessageSize for NoDown {
    fn size_words(&self) -> u64 {
        match *self {}
    }
    fn kind(&self) -> &'static str {
        match *self {}
    }
}

impl WireMessage for CountDelta {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(CountDelta(r.u64()?))
    }
}

impl WireMessage for NoDown {
    fn wire_encode(&self, _out: &mut Vec<u8>) {
        match *self {}
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Err(DecodeError::Uninhabited {
            kind: "count/no-down",
            offset: r.offset(),
        })
    }
}

/// Site state: local count and the value last reported.
#[derive(Debug, Clone)]
pub struct CounterSite {
    epsilon: f64,
    local: u64,
    reported: u64,
}

impl CounterSite {
    /// A site with error parameter ε.
    pub fn new(epsilon: f64) -> Result<Self, CoreError> {
        check_epsilon(epsilon)?;
        Ok(CounterSite {
            epsilon,
            local: 0,
            reported: 0,
        })
    }

    /// The exact local count (oracle access for tests).
    pub fn local_count(&self) -> u64 {
        self.local
    }
}

impl Site for CounterSite {
    type Item = u64;
    type Up = CountDelta;
    type Down = NoDown;

    fn on_item(&mut self, _item: u64, out: &mut Vec<CountDelta>) {
        self.local += 1;
        // Report when the local count reaches (1+ε) times the last report
        // (and immediately on the first item, so the estimate is exact
        // while counts are tiny).
        let threshold = ((self.reported as f64) * (1.0 + self.epsilon)).floor() as u64;
        if self.reported == 0 || self.local > threshold.max(self.reported) {
            out.push(CountDelta(self.local - self.reported));
            self.reported = self.local;
        }
    }

    /// Batched fast path: between reports the site is a pure counter, so a
    /// quiet stretch of arrivals collapses to one addition. The next report
    /// fires at `local > max(threshold, reported)`, which depends only on
    /// `reported` — constant across the stretch — so the transcript is
    /// identical to replaying [`Site::on_item`] per arrival.
    fn on_items(&mut self, items: &[u64], out: &mut Vec<CountDelta>) -> usize {
        if self.reported == 0 {
            // First-ever arrival reports immediately; fall back to the
            // per-item step for it.
            if let Some(&first) = items.first() {
                self.on_item(first, out);
                return 1;
            }
            return 0;
        }
        let threshold = ((self.reported as f64) * (1.0 + self.epsilon)).floor() as u64;
        let trigger_at = threshold.max(self.reported) + 1;
        // Arrivals consumable without reaching the trigger count.
        let quiet = (trigger_at - 1).saturating_sub(self.local);
        if quiet as usize >= items.len() {
            self.local += items.len() as u64;
            return items.len();
        }
        self.local += quiet + 1;
        debug_assert_eq!(self.local, trigger_at);
        out.push(CountDelta(self.local - self.reported));
        self.reported = self.local;
        quiet as usize + 1
    }

    fn on_message(&mut self, msg: &NoDown, _out: &mut Vec<CountDelta>) {
        match *msg {}
    }
}

/// Coordinator state: the sum of all reported increments.
#[derive(Debug, Clone, Default)]
pub struct CounterCoordinator {
    estimate: u64,
}

impl CounterCoordinator {
    /// Fresh coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tracked estimate of |A|; always satisfies
    /// `(1 − ε) · |A| < estimate <= |A|`.
    pub fn estimate(&self) -> u64 {
        self.estimate
    }
}

impl Coordinator for CounterCoordinator {
    type Up = CountDelta;
    type Down = NoDown;

    fn on_message(&mut self, _from: SiteId, msg: CountDelta, _out: &mut Outbox<NoDown>) {
        self.estimate += msg.0;
    }
}

/// [`Protocol`] adapter: the §1 counter on the [`dtrack_sim::Tracker`]
/// facade. Answers [`Query::Count`] with the (1−ε)-approximate total.
#[derive(Debug, Clone, Copy)]
pub struct CounterProtocol {
    epsilon: f64,
}

impl CounterProtocol {
    /// A counter tracker with error parameter ε (validated).
    pub fn new(epsilon: f64) -> Result<Self, CoreError> {
        check_epsilon(epsilon)?;
        Ok(CounterProtocol { epsilon })
    }
}

impl Protocol for CounterProtocol {
    type Site = CounterSite;
    type Up = CountDelta;
    type Down = NoDown;
    type Coordinator = CounterCoordinator;

    fn label(&self) -> &'static str {
        "counter"
    }

    fn build(&self, k: u32) -> Result<(Vec<CounterSite>, CounterCoordinator), String> {
        let sites = (0..k)
            .map(|_| CounterSite::new(self.epsilon))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?;
        Ok((sites, CounterCoordinator::new()))
    }

    fn query(&self, c: &CounterCoordinator, query: Query) -> Result<Answer, QueryError> {
        match query {
            Query::Count => Ok(Answer::Count(c.estimate())),
            other => Err(self.unsupported(other)),
        }
    }

    fn answers(&self, c: &CounterCoordinator) -> Result<Vec<Answer>, QueryError> {
        Ok(vec![Answer::Count(c.estimate())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtrack_sim::Cluster;

    fn run(k: u32, epsilon: f64, n: u64) -> Cluster<CounterSite, CounterCoordinator> {
        let sites = (0..k).map(|_| CounterSite::new(epsilon).unwrap()).collect();
        let mut cluster = Cluster::new(sites, CounterCoordinator::new()).unwrap();
        for i in 0..n {
            cluster.feed(SiteId((i % k as u64) as u32), i).unwrap();
        }
        cluster
    }

    #[test]
    fn estimate_within_epsilon_at_all_times() {
        let k = 5;
        let epsilon = 0.1;
        let sites = (0..k).map(|_| CounterSite::new(epsilon).unwrap()).collect();
        let mut cluster = Cluster::new(sites, CounterCoordinator::new()).unwrap();
        for i in 0..10_000u64 {
            cluster.feed(SiteId((i % k as u64) as u32), i).unwrap();
            let n = i + 1;
            let est = cluster.coordinator().estimate();
            assert!(est <= n, "estimate {est} exceeds true {n}");
            assert!(
                (est as f64) > (1.0 - epsilon) * n as f64 - k as f64,
                "estimate {est} too low for n={n}"
            );
        }
    }

    #[test]
    fn cost_scales_logarithmically() {
        let eps = 0.05;
        let c_small = run(4, eps, 1_000);
        let c_big = run(4, eps, 100_000);
        let w_small = c_small.meter().total_words();
        let w_big = c_big.meter().total_words();
        // 100x the items must cost far less than 100x the words: the bound
        // is k/ε·log n, so the ratio should be close to log(1e5)/log(1e3)
        // with warm-up noise. Assert well under 10x.
        assert!(
            w_big < w_small * 10,
            "words grew too fast: {w_small} -> {w_big}"
        );
        assert!(w_big > w_small, "more items must cost something");
    }

    #[test]
    fn cost_scales_inversely_with_epsilon() {
        let coarse = run(4, 0.2, 50_000).meter().total_words();
        let fine = run(4, 0.02, 50_000).meter().total_words();
        // 10x smaller ε must cost roughly 10x more (within a loose band).
        let ratio = fine as f64 / coarse as f64;
        assert!(
            (4.0..25.0).contains(&ratio),
            "1/ε scaling off: ratio {ratio}"
        );
    }

    #[test]
    fn skewed_assignment_still_within_bound() {
        // All items at one site: per-site log bound still applies.
        let epsilon = 0.1;
        let sites = (0..3).map(|_| CounterSite::new(epsilon).unwrap()).collect();
        let mut cluster = Cluster::new(sites, CounterCoordinator::new()).unwrap();
        let n = 20_000u64;
        for i in 0..n {
            cluster.feed(SiteId(0), i).unwrap();
        }
        let est = cluster.coordinator().estimate();
        assert!(est <= n && (est as f64) > (1.0 - epsilon) * n as f64 - 3.0);
        let msgs = cluster.meter().total_messages();
        let bound = (1.0 / epsilon) * (n as f64).ln() * 4.0 + 16.0;
        assert!(
            (msgs as f64) < bound,
            "{msgs} messages exceeds O(1/ε log n) bound {bound}"
        );
    }

    #[test]
    fn batched_fast_path_matches_per_item() {
        // Drive one site both ways through every regime (first report,
        // small counts, large counts) and with many different run shapes.
        for chunk in [1usize, 2, 3, 7, 64, 1000] {
            let mut a = CounterSite::new(0.1).unwrap();
            let mut b = CounterSite::new(0.1).unwrap();
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            let items = vec![0u64; 5000];
            for item in &items {
                a.on_item(*item, &mut out_a);
            }
            let mut rest: &[u64] = &items;
            while !rest.is_empty() {
                let take = rest.len().min(chunk);
                let mut off = 0;
                while off < take {
                    let before = out_b.len();
                    let consumed = b.on_items(&rest[off..take], &mut out_b);
                    assert!(consumed > 0);
                    // At most one report per on_items call.
                    assert!(out_b.len() - before <= 1);
                    off += consumed;
                }
                rest = &rest[take..];
            }
            assert_eq!(out_a, out_b, "chunk={chunk}");
            assert_eq!(a.local, b.local);
            assert_eq!(a.reported, b.reported);
        }
    }

    #[test]
    fn bad_epsilon_rejected() {
        assert!(CounterSite::new(0.0).is_err());
        assert!(CounterSite::new(0.7).is_err());
    }
}
