//! # dtrack-core — the tracking protocols of Yi & Zhang (PODS 2009)
//!
//! This crate implements the paper's primary contribution: deterministic,
//! communication-optimal protocols by which `k` remote sites and one
//! coordinator continuously track statistics of the union stream
//! `A = A_1 ∪ … ∪ A_k`:
//!
//! * [`counter`] — total count |A| within a (1+ε) factor, at cost
//!   O(k/ε · log n). The simplest protocol in the model (§1), used as a
//!   building block and a harness smoke test.
//! * [`hh`] — §2.1: the φ-heavy hitters for *every* φ simultaneously, at
//!   cost O(k/ε · log n) (Theorem 2.1, matching the Theorem 2.4 lower
//!   bound).
//! * [`quantile`] — §3.1: any single φ-quantile (the median is φ = 1/2) at
//!   cost O(k/ε · log n) (Theorem 3.1, matching Theorem 3.2).
//! * [`allq`] — §4: all quantiles simultaneously — equivalently an
//!   ε-approximate rank oracle / equi-depth histogram — at cost
//!   O(k/ε · log n · log²(1/ε)) (Theorem 4.1).
//! * [`sampling`] — §5 remark: the randomized level-sampling tracker at
//!   cost O((k + 1/ε²) · polylog n), which beats the deterministic lower
//!   bound when ε ≫ 1/k.
//!
//! Every protocol is a pair of [`dtrack_sim::Site`] / [`dtrack_sim::Coordinator`]
//! state machines and can run under either the deterministic or the
//! threaded runtime. Sites are generic over their local store
//! ([`dtrack_sketch::FreqStore`] / [`dtrack_sketch::OrderStore`]), giving both the
//! exact-state protocol of the paper's main exposition and the small-space
//! variants of the "Implementing with small space" paragraphs.
//!
//! [`oracle`] holds exact reference implementations used by tests and the
//! experiment harness to verify the ε-guarantees continuously.

pub mod allq;
pub mod common;
pub mod counter;
pub mod hh;
pub mod oracle;
pub mod quantile;
pub mod sampling;
pub mod window;

pub use common::{CoreError, ValueRange};
pub use oracle::ExactOracle;
