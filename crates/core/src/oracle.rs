//! Exact reference oracle for verifying the ε-guarantees.
//!
//! The oracle ingests the same item stream as the cluster (ignoring site
//! assignment — the guarantees are about the union multiset A) and answers
//! exact heavy-hitter, rank, and quantile queries. Tests and the experiment
//! harness compare the tracked answers against it, either after every
//! arrival (small streams) or at sampled checkpoints (large streams).
//!
//! ## Lazy ingestion
//!
//! The differential harness feeds the oracle every item but queries it only
//! at ~16 checkpoints, so [`ExactOracle::observe`] is just a `Vec` push; the
//! buffered arrivals are folded into the frequency map and the arena treap
//! the first time any query needs them (interior mutability keeps the query
//! methods `&self`). Folding the same arrivals in the same order as eager
//! ingestion would, the oracle's answers are identical at every point where
//! it is actually consulted — only the *timing* of the index maintenance
//! moves, off the per-item hot path and into cache-friendly bulk runs.

use std::cell::RefCell;

use dtrack_sketch::{ExactFrequencies, ExactOrdered};

/// The materialized (queryable) multiset state.
#[derive(Debug, Clone, Default)]
struct OracleIndex {
    freqs: ExactFrequencies,
    ordered: ExactOrdered,
}

impl OracleIndex {
    fn absorb(&mut self, pending: &mut Vec<u64>) {
        for &x in pending.iter() {
            self.freqs.observe(x);
            self.ordered.insert(x);
        }
        pending.clear();
    }
}

/// Exact multiset state of the whole stream.
#[derive(Debug, Clone, Default)]
pub struct ExactOracle {
    index: RefCell<OracleIndex>,
    pending: RefCell<Vec<u64>>,
    /// Arrivals observed so far (maintained eagerly: `total()` must not
    /// force a flush).
    total: u64,
}

impl ExactOracle {
    /// Empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one arrival.
    #[inline]
    pub fn observe(&mut self, x: u64) {
        self.total += 1;
        self.pending.get_mut().push(x);
    }

    /// Fold buffered arrivals into the queryable index.
    fn flush(&self) {
        let mut pending = self.pending.borrow_mut();
        if !pending.is_empty() {
            self.index.borrow_mut().absorb(&mut pending);
        }
    }

    /// Total number of items n = |A|.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact frequency of `x`.
    pub fn frequency(&self, x: u64) -> u64 {
        self.flush();
        self.index.borrow().freqs.count(x)
    }

    /// The exact φ-heavy hitters: `{x : m_x >= φ|A|}`, sorted.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<u64> {
        self.flush();
        let thresh = phi * self.total() as f64;
        let mut out: Vec<u64> = self
            .index
            .borrow()
            .freqs
            .iter()
            .filter(|&(_, c)| c as f64 >= thresh)
            .map(|(x, _)| x)
            .collect();
        out.sort_unstable();
        out
    }

    /// Verify an approximate heavy-hitter answer per the paper's
    /// definition: the reported set must contain every x with
    /// `m_x >= φ|A|` and no x with `m_x < (φ−ε)|A|`. Returns a
    /// description of the first violation, if any.
    pub fn check_heavy_hitters(&self, reported: &[u64], phi: f64, epsilon: f64) -> Option<String> {
        let n = self.total() as f64;
        for &x in reported {
            if (self.frequency(x) as f64) < (phi - epsilon) * n {
                return Some(format!(
                    "false positive: {x} has frequency {} < (φ−ε)n = {}",
                    self.frequency(x),
                    (phi - epsilon) * n
                ));
            }
        }
        for x in self.heavy_hitters(phi) {
            if !reported.contains(&x) {
                return Some(format!(
                    "false negative: {x} has frequency {} >= φn = {}",
                    self.frequency(x),
                    phi * n
                ));
            }
        }
        None
    }

    /// Exact `rank_lt(x) = |{a ∈ A : a < x}|`.
    pub fn rank_lt(&self, x: u64) -> u64 {
        self.flush();
        self.index.borrow().ordered.rank_lt(x)
    }

    /// Exact `rank_le(x) = |{a ∈ A : a <= x}|`.
    pub fn rank_le(&self, x: u64) -> u64 {
        self.flush();
        self.index.borrow().ordered.rank_le(x)
    }

    /// Is `q` a valid ε-approximate φ-quantile? Per the paper, a valid
    /// answer is a φ′-quantile for some φ′ ∈ [φ−ε, φ+ε]; with ties this
    /// means the interval `[rank_lt(q), rank_le(q)]` must intersect
    /// `[(φ−ε)n, (φ+ε)n]`.
    pub fn quantile_ok(&self, q: u64, phi: f64, epsilon: f64) -> bool {
        let n = self.total() as f64;
        let lo_ok = (phi - epsilon) * n;
        let hi_ok = (phi + epsilon) * n;
        let r_lo = self.rank_lt(q) as f64;
        let r_hi = self.rank_le(q) as f64;
        r_lo <= hi_ok && r_hi >= lo_ok
    }

    /// Distance (in items) from `q` to being a valid φ-quantile: 0 when
    /// `q`'s rank interval contains φn, otherwise the gap. Used by
    /// experiments to report observed error vs. the ε·n budget.
    pub fn quantile_rank_error(&self, q: u64, phi: f64) -> u64 {
        let target = (phi * self.total() as f64).round() as u64;
        let r_lo = self.rank_lt(q);
        let r_hi = self.rank_le(q);
        if target < r_lo {
            r_lo - target
        } else {
            target.saturating_sub(r_hi)
        }
    }

    /// The exact φ-quantile by the `rank_lt` convention: the smallest value
    /// q with `rank_le(q) >= ceil(φ n)`.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        let n = self.total();
        if n == 0 {
            return None;
        }
        let target = ((phi * n as f64).ceil() as u64).clamp(1, n);
        self.flush();
        self.index.borrow().ordered.select(target - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_of(items: &[u64]) -> ExactOracle {
        let mut o = ExactOracle::new();
        for &x in items {
            o.observe(x);
        }
        o
    }

    #[test]
    fn heavy_hitters_by_definition() {
        // 10 items: five 1s, three 2s, two 3s.
        let o = oracle_of(&[1, 1, 1, 1, 1, 2, 2, 2, 3, 3]);
        assert_eq!(o.heavy_hitters(0.5), vec![1]);
        assert_eq!(o.heavy_hitters(0.3), vec![1, 2]);
        assert_eq!(o.heavy_hitters(0.2), vec![1, 2, 3]);
        assert_eq!(o.heavy_hitters(0.51), Vec::<u64>::new());
    }

    #[test]
    fn check_heavy_hitters_finds_violations() {
        let o = oracle_of(&[1, 1, 1, 1, 1, 2, 2, 2, 3, 3]);
        // Valid: contains the 0.5-HH {1}; extra item 2 has freq 0.3 >= φ−ε.
        assert!(o.check_heavy_hitters(&[1, 2], 0.5, 0.25).is_none());
        // False negative: misses 1.
        let v = o.check_heavy_hitters(&[2], 0.5, 0.25).unwrap();
        assert!(v.contains("false negative"));
        // False positive: 3 has frequency 0.2 < (0.5-0.25).
        let v = o.check_heavy_hitters(&[1, 3], 0.5, 0.25).unwrap();
        assert!(v.contains("false positive"));
    }

    #[test]
    fn ranks_and_quantiles() {
        let o = oracle_of(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(o.rank_lt(50), 4);
        assert_eq!(o.rank_le(50), 5);
        assert_eq!(o.quantile(0.5), Some(50));
        assert_eq!(o.quantile(0.0), Some(10));
        assert_eq!(o.quantile(1.0), Some(100));
        assert!(o.quantile_ok(50, 0.5, 0.0));
        assert!(o.quantile_ok(60, 0.5, 0.1));
        assert!(!o.quantile_ok(90, 0.5, 0.1));
        assert_eq!(o.quantile_rank_error(50, 0.5), 0);
        assert_eq!(o.quantile_rank_error(90, 0.5), 3); // rank_lt(90)=8 vs 5
    }

    #[test]
    fn quantile_with_ties_uses_rank_interval() {
        // 100 copies of 7 surrounded by singletons.
        let mut items = vec![1u64, 2, 3];
        items.extend(std::iter::repeat_n(7, 100));
        items.extend([1000, 1001]);
        let o = oracle_of(&items);
        // 7 spans ranks [3, 103]; it is a valid φ-quantile for a wide
        // range of φ even with ε = 0.
        assert!(o.quantile_ok(7, 0.5, 0.0));
        assert!(o.quantile_ok(7, 0.1, 0.0));
        assert!(!o.quantile_ok(7, 0.995, 0.0));
        assert_eq!(o.quantile(0.5), Some(7));
    }

    #[test]
    fn lazy_buffering_is_transparent() {
        // Interleave observes and queries arbitrarily: answers must match
        // an eagerly-queried oracle at every step.
        let mut lazy = ExactOracle::new();
        let mut seen: Vec<u64> = Vec::new();
        let mut st = 7u64;
        for round in 0..50u64 {
            for _ in 0..=(round % 7) {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (st >> 33) % 100;
                lazy.observe(x);
                seen.push(x);
            }
            let fresh = oracle_of(&seen);
            assert_eq!(lazy.total(), fresh.total());
            assert_eq!(lazy.quantile(0.5), fresh.quantile(0.5));
            assert_eq!(lazy.rank_lt(50), fresh.rank_lt(50));
            assert_eq!(lazy.frequency(seen[0]), fresh.frequency(seen[0]));
            assert_eq!(lazy.heavy_hitters(0.1), fresh.heavy_hitters(0.1));
        }
    }

    #[test]
    fn total_does_not_force_a_flush() {
        let mut o = ExactOracle::new();
        for x in 0..100u64 {
            o.observe(x);
        }
        assert_eq!(o.total(), 100);
        assert_eq!(o.pending.borrow().len(), 100, "total() must stay lazy");
        assert_eq!(o.rank_lt(10), 10);
        assert!(o.pending.borrow().is_empty(), "queries flush the buffer");
    }

    #[test]
    fn empty_oracle() {
        let o = ExactOracle::new();
        assert_eq!(o.total(), 0);
        assert_eq!(o.quantile(0.5), None);
        assert!(o.heavy_hitters(0.1).is_empty());
    }
}
