//! `dtrack-trace` — deterministic structured-event tracing for the sim
//! runtimes.
//!
//! Every backend records [`TraceEvent`]s into per-site bounded ring
//! buffers ([`SiteTracer`]) stamped from one shared logical clock
//! ([`TraceShared`]). The design contract, in order of importance:
//!
//! - **Off means off.** With tracing disabled the hot path pays exactly
//!   one relaxed load and branch per would-be event ([`SiteTracer::record`]);
//!   no clock tick, no allocation, no ring write. Answers and metered
//!   words are byte-identical with tracing on or off — tracing observes,
//!   it never participates.
//! - **Deterministic where the runtime is.** Event clocks come from a
//!   single `fetch_add` counter. On the single-threaded deterministic
//!   backend the resulting stream is bit-identical for a given scenario
//!   seed; on the parallel backends clocks are racy by nature and only
//!   per-site subsequences are meaningful.
//! - **Bounded.** Rings overwrite oldest on overflow and count what they
//!   dropped ([`TraceSummary::dropped`]); a runaway scenario can never
//!   OOM the tracer.
//!
//! Two sinks consume the merged stream: the Chrome `trace_event` JSON
//! exporter ([`export_chrome`] / [`write_chrome_file`]) and the in-memory
//! [`TraceSummary`] (per-kind counts plus per-phase wall-time histograms
//! on the timed backends). [`canonical_kind_order`] is the one label
//! ordering both the summary and `MessageMeter::report()` sort with, so
//! meter and trace breakdowns can never disagree on label order.

use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default per-site ring capacity: deep enough to hold every hop of a
/// matrix-sized scenario, small enough that 4096 sites stay cheap.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Tracing configuration carried by `Tracker::set_trace` and the
/// `DTRACK_TRACE` env knob. Off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false every [`SiteTracer::record`] call is a
    /// single relaxed load and branch.
    pub enabled: bool,
    /// Per-site ring capacity (events). Overflow overwrites oldest.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Tracing enabled at the default ring capacity.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Override the per-site ring capacity (clamped to ≥ 16).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(16);
        self
    }
}

/// Which actor recorded an event. Sites record their own hops and runs;
/// the coordinator lane exists only on the deterministic backend (the
/// only place a broadcast is visible pre-expansion); the driver lane
/// carries control-plane events (settle, faults, flow control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLane {
    /// A site, by id.
    Site(u32),
    /// The coordinator (deterministic backend only).
    Coordinator,
    /// The driving thread: settle, fault injection, flow control.
    Driver,
}

/// The event vocabulary. Message kinds are the meter's interned
/// `&'static str` labels, so trace and meter always agree on names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A site processed a run of items.
    ItemRun {
        /// Items in the run.
        items: u64,
    },
    /// A site sent an Up message to the coordinator.
    UpHop {
        /// Interned message kind label.
        kind: &'static str,
        /// Metered size in words.
        words: u64,
    },
    /// A site received a Down message from the coordinator.
    DownHop {
        /// Interned message kind label.
        kind: &'static str,
        /// Metered size in words.
        words: u64,
    },
    /// The coordinator broadcast a Down to all live sites (visible
    /// pre-expansion only on the deterministic backend).
    Broadcast {
        /// Interned message kind label.
        kind: &'static str,
        /// Live sites the broadcast expanded to.
        fanout: u32,
    },
    /// Fault injection killed a site.
    SiteKilled {
        /// The killed site.
        site: u32,
    },
    /// Fault injection stalled a site.
    SiteStalled {
        /// The stalled site.
        site: u32,
        /// Stall duration in microseconds.
        micros: u64,
    },
    /// The AIMD controller changed a site's window.
    WindowChange {
        /// The site whose window moved.
        site: u32,
        /// The new window (items).
        window: u32,
    },
    /// Free-running ingest blocked on the backlog budget.
    BackpressureWait {
        /// The site that was refused a ticket.
        site: u32,
    },
    /// A settle (quiescence wait) began.
    SettleBegin,
    /// A settle completed. `micros` is wall time on the timed backends
    /// and always 0 on the deterministic backend, keeping its stream
    /// bit-identical.
    SettleEnd {
        /// Settle wall time in microseconds (0 when untimed).
        micros: u64,
    },
    /// Queue-depth high-water mark observed by the driver.
    QueueDepth {
        /// Backlog depth in items.
        depth: u64,
    },
    /// A message crossed the wire codec as a framed byte sequence.
    WireFrame {
        /// Encoded frame length in bytes.
        bytes: u64,
    },
}

impl TraceEventKind {
    /// Canonical label for per-kind grouping (sorted with
    /// [`canonical_kind_order`] everywhere).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::ItemRun { .. } => "item-run",
            TraceEventKind::UpHop { .. } => "up-hop",
            TraceEventKind::DownHop { .. } => "down-hop",
            TraceEventKind::Broadcast { .. } => "broadcast",
            TraceEventKind::SiteKilled { .. } => "site-killed",
            TraceEventKind::SiteStalled { .. } => "site-stalled",
            TraceEventKind::WindowChange { .. } => "window-change",
            TraceEventKind::BackpressureWait { .. } => "backpressure-wait",
            TraceEventKind::SettleBegin => "settle-begin",
            TraceEventKind::SettleEnd { .. } => "settle-end",
            TraceEventKind::QueueDepth { .. } => "queue-depth",
            TraceEventKind::WireFrame { .. } => "wire-frame",
        }
    }
}

/// One recorded event: a logical clock tick, the lane that recorded it,
/// and the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical clock stamp from the backend-wide counter.
    pub clock: u64,
    /// The recording actor.
    pub lane: TraceLane,
    /// The payload.
    pub kind: TraceEventKind,
}

/// Backend-wide shared trace state: the enable flag, the ring capacity,
/// and the logical clock. Created unconditionally at spawn and handed to
/// every worker as an `Arc`, so `set_trace` works after spawn without
/// re-plumbing a single channel.
#[derive(Debug)]
pub struct TraceShared {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    clock: AtomicU64,
}

impl Default for TraceShared {
    fn default() -> Self {
        TraceShared::new()
    }
}

impl TraceShared {
    /// Fresh shared state: disabled, default capacity, clock at zero.
    pub fn new() -> Self {
        TraceShared {
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
            clock: AtomicU64::new(0),
        }
    }

    /// Apply a config. Cold path: SeqCst stores, so a subsequent settle
    /// round-trip guarantees every worker observes the switch.
    pub fn configure(&self, config: TraceConfig) {
        self.capacity
            .store(config.ring_capacity.max(16), Ordering::SeqCst);
        self.enabled.store(config.enabled, Ordering::SeqCst);
    }

    /// Whether tracing is currently enabled (cold-path read).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }
}

/// One lane's bounded event ring. Owned by exactly one worker at a time
/// (site thread, pool exec slot, or the driver); the write cursor is a
/// relaxed atomic published as a progress hint, mirroring the runtimes'
/// `words_shared` idiom.
#[derive(Debug)]
pub struct SiteTracer {
    shared: Arc<TraceShared>,
    lane: TraceLane,
    ring: Vec<TraceEvent>,
    cursor: AtomicU64,
}

impl SiteTracer {
    /// A tracer for `lane` drawing clocks and config from `shared`.
    pub fn new(shared: Arc<TraceShared>, lane: TraceLane) -> Self {
        SiteTracer {
            shared,
            lane,
            ring: Vec::new(),
            cursor: AtomicU64::new(0),
        }
    }

    /// The lane this tracer records for.
    pub fn lane(&self) -> TraceLane {
        self.lane
    }

    /// Whether tracing is currently enabled (cold-path read; the hot path
    /// is the relaxed check inside [`SiteTracer::record`]). Drivers use
    /// this to skip wall-clock reads entirely when untraced.
    pub fn is_on(&self) -> bool {
        self.shared.is_enabled()
    }

    /// Record an event. With tracing off this is one relaxed load and a
    /// branch — the entire per-event cost the untraced hot path pays.
    #[inline]
    pub fn record(&mut self, kind: TraceEventKind) {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.push(kind);
    }

    /// Slow path: stamp a clock and write into the ring, overwriting
    /// oldest on overflow.
    fn push(&mut self, kind: TraceEventKind) {
        let clock = self.shared.clock.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            clock,
            lane: self.lane,
            kind,
        };
        let capacity = self.shared.capacity.load(Ordering::Relaxed).max(16);
        let written = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        if self.ring.len() < capacity {
            // Ring capacity can only shrink between runs (configure is
            // driver-side and cold), so len < capacity means append.
            self.ring.push(event);
        } else {
            self.ring[written % capacity] = event;
        }
    }

    /// Events recorded so far (including any overwritten by overflow).
    pub fn written(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Snapshot the ring, oldest first. Non-destructive: `cost()`-style
    /// probes and the final `finish()` merge both call this.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let written = self.cursor.load(Ordering::Relaxed) as usize;
        let len = self.ring.len();
        if len == 0 {
            return Vec::new();
        }
        if written <= len {
            return self.ring.clone();
        }
        // Overflowed: the slot the next write would land on is the oldest.
        let start = written % len;
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.ring[start..]);
        out.extend_from_slice(&self.ring[..start]);
        out
    }

    /// Events lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.ring.len() as u64)
    }
}

/// The one canonical ordering for message/event kind labels. Both
/// `MessageMeter::report()` and [`TraceSummary`] sort with this, so the
/// meter breakdown and the trace breakdown can never disagree on order.
pub fn canonical_kind_order(a: &str, b: &str) -> CmpOrdering {
    a.cmp(b)
}

/// Sort `(label, payload)` rows into the canonical kind-label order.
pub fn sort_by_kind_label<T>(rows: &mut [(&'static str, T)]) {
    rows.sort_unstable_by(|a, b| canonical_kind_order(a.0, b.0));
}

/// Per-phase wall-time stats with a log2-bucket histogram, built from
/// `SettleEnd`-style duration events. All zeros on the deterministic
/// backend, whose durations are logical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Phase label (canonical kind order applies).
    pub phase: &'static str,
    /// Completed phase instances.
    pub count: u64,
    /// Sum of wall durations, microseconds.
    pub total_micros: u64,
    /// Worst single instance, microseconds.
    pub max_micros: u64,
    /// Sparse log2 histogram: `(floor(log2(micros+1)), count)`, sorted.
    pub log2_buckets: Vec<(u8, u64)>,
}

impl PhaseStats {
    fn new(phase: &'static str) -> Self {
        PhaseStats {
            phase,
            ..PhaseStats::default()
        }
    }

    fn add(&mut self, micros: u64) {
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
        let bucket = (64 - (micros + 1).leading_zeros() - 1) as u8;
        match self.log2_buckets.binary_search_by_key(&bucket, |b| b.0) {
            Ok(i) => self.log2_buckets[i].1 += 1,
            Err(i) => self.log2_buckets.insert(i, (bucket, 1)),
        }
    }
}

/// In-memory sink: per-kind counts (canonically ordered), hop word
/// totals, drop accounting, and per-phase wall-time histograms. This is
/// what `Query::Trace` answers with.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Events in the merged snapshot (post-overflow).
    pub events: u64,
    /// Events lost to ring overflow across all lanes.
    pub dropped: u64,
    /// `(kind label, count)` rows in canonical kind order.
    pub by_kind: Vec<(&'static str, u64)>,
    /// Total metered words seen on Up hops.
    pub up_words: u64,
    /// Total metered words seen on Down hops.
    pub down_words: u64,
    /// Per-phase wall stats (currently: settle). Empty on untimed runs.
    pub phases: Vec<PhaseStats>,
}

impl TraceSummary {
    /// Build a summary from a merged event snapshot plus the lanes' drop
    /// count.
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> Self {
        let mut by_kind: Vec<(&'static str, u64)> = Vec::new();
        let mut up_words = 0;
        let mut down_words = 0;
        let mut settle = PhaseStats::new("settle");
        for event in events {
            let label = event.kind.label();
            match by_kind.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => by_kind.push((label, 1)),
            }
            match event.kind {
                TraceEventKind::UpHop { words, .. } => up_words += words,
                TraceEventKind::DownHop { words, .. } => down_words += words,
                TraceEventKind::SettleEnd { micros } => settle.add(micros),
                _ => {}
            }
        }
        sort_by_kind_label(&mut by_kind);
        let phases = if settle.count > 0 && settle.total_micros > 0 {
            vec![settle]
        } else {
            Vec::new()
        };
        TraceSummary {
            events: events.len() as u64,
            dropped,
            by_kind,
            up_words,
            down_words,
            phases,
        }
    }

    /// Count for one kind label, 0 if absent.
    pub fn count(&self, label: &str) -> u64 {
        self.by_kind
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace(events={}, dropped={}", self.events, self.dropped)?;
        if !self.by_kind.is_empty() {
            write!(f, ", kinds[")?;
            for (i, (label, n)) in self.by_kind.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{label}={n}")?;
            }
            write!(f, "]")?;
        }
        for p in &self.phases {
            write!(
                f,
                ", {}[count={} total_us={} max_us={}]",
                p.phase, p.count, p.total_micros, p.max_micros
            )?;
        }
        write!(f, ")")
    }
}

/// Merge per-lane snapshots into one clock-ordered stream. Stable on
/// equal clocks (cannot happen on the deterministic backend; on racy
/// backends lane order breaks ties deterministically).
pub fn merge_snapshots(mut lanes: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let total = lanes.iter().map(Vec::len).sum();
    let mut out: Vec<TraceEvent> = Vec::with_capacity(total);
    for lane in &mut lanes {
        out.append(lane);
    }
    out.sort_by(|a, b| a.clock.cmp(&b.clock).then(a.lane.cmp(&b.lane)));
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn lane_tid(lane: TraceLane) -> u64 {
    match lane {
        TraceLane::Site(i) => i as u64,
        TraceLane::Coordinator => 1_000_000,
        TraceLane::Driver => 1_000_001,
    }
}

/// Serialize one event as a Chrome `trace_event` instant record. Logical
/// clocks map to the `ts` microsecond axis, so event spacing is ordinal,
/// not wall time.
fn chrome_record(event: &TraceEvent, out: &mut String) {
    let mut name = String::from(event.kind.label());
    let mut args = String::new();
    match event.kind {
        TraceEventKind::ItemRun { items } => args = format!("\"items\":{items}"),
        TraceEventKind::UpHop { kind, words } | TraceEventKind::DownHop { kind, words } => {
            name.push(':');
            json_escape(kind, &mut name);
            args = format!("\"words\":{words}");
        }
        TraceEventKind::Broadcast { kind, fanout } => {
            name.push(':');
            json_escape(kind, &mut name);
            args = format!("\"fanout\":{fanout}");
        }
        TraceEventKind::SiteKilled { site } => args = format!("\"site\":{site}"),
        TraceEventKind::SiteStalled { site, micros } => {
            args = format!("\"site\":{site},\"micros\":{micros}")
        }
        TraceEventKind::WindowChange { site, window } => {
            args = format!("\"site\":{site},\"window\":{window}")
        }
        TraceEventKind::BackpressureWait { site } => args = format!("\"site\":{site}"),
        TraceEventKind::SettleBegin => {}
        TraceEventKind::SettleEnd { micros } => args = format!("\"micros\":{micros}"),
        TraceEventKind::QueueDepth { depth } => args = format!("\"depth\":{depth}"),
        TraceEventKind::WireFrame { bytes } => args = format!("\"bytes\":{bytes}"),
    }
    let mut escaped = String::new();
    json_escape(&name, &mut escaped);
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"dtrack\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
        escaped,
        event.clock,
        lane_tid(event.lane),
        args
    ));
}

/// Write a merged event stream as Chrome `trace_event` JSON (load via
/// `chrome://tracing` or Perfetto).
pub fn export_chrome<W: Write>(events: &[TraceEvent], mut w: W) -> io::Result<()> {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        chrome_record(event, &mut out);
    }
    out.push_str("\n]}\n");
    w.write_all(out.as_bytes())
}

/// [`export_chrome`] to a file path, creating parent directories.
pub fn write_chrome_file<P: AsRef<Path>>(events: &[TraceEvent], path: P) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    export_chrome(events, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(shared: &Arc<TraceShared>) -> SiteTracer {
        SiteTracer::new(Arc::clone(shared), TraceLane::Site(0))
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let shared = Arc::new(TraceShared::new());
        let mut t = tracer(&shared);
        t.record(TraceEventKind::SettleBegin);
        assert_eq!(t.written(), 0);
        assert!(t.snapshot().is_empty());
        // The clock never ticked either — enabling later starts at 0.
        shared.configure(TraceConfig::on());
        t.record(TraceEventKind::SettleBegin);
        assert_eq!(t.snapshot()[0].clock, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let shared = Arc::new(TraceShared::new());
        shared.configure(TraceConfig::on().with_ring_capacity(16));
        let mut t = tracer(&shared);
        for i in 0..20u64 {
            t.record(TraceEventKind::ItemRun { items: i });
        }
        assert_eq!(t.written(), 20);
        assert_eq!(t.dropped(), 4);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 16);
        // Oldest first: runs 4..20 survive, in order.
        for (i, ev) in snap.iter().enumerate() {
            assert_eq!(
                ev.kind,
                TraceEventKind::ItemRun {
                    items: 4 + i as u64
                }
            );
        }
        let clocks: Vec<u64> = snap.iter().map(|e| e.clock).collect();
        let mut sorted = clocks.clone();
        sorted.sort_unstable();
        assert_eq!(clocks, sorted);
    }

    #[test]
    fn summary_counts_sorted_canonically() {
        let shared = Arc::new(TraceShared::new());
        shared.configure(TraceConfig::on());
        let mut t = tracer(&shared);
        t.record(TraceEventKind::UpHop {
            kind: "Update",
            words: 2,
        });
        t.record(TraceEventKind::DownHop {
            kind: "Sync",
            words: 3,
        });
        t.record(TraceEventKind::UpHop {
            kind: "Update",
            words: 5,
        });
        t.record(TraceEventKind::SettleEnd { micros: 100 });
        let snap = t.snapshot();
        let summary = TraceSummary::from_events(&snap, t.dropped());
        assert_eq!(summary.events, 4);
        assert_eq!(summary.up_words, 7);
        assert_eq!(summary.down_words, 3);
        assert_eq!(summary.count("up-hop"), 2);
        assert_eq!(summary.count("down-hop"), 1);
        let labels: Vec<&str> = summary.by_kind.iter().map(|(l, _)| *l).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable_by(|a, b| canonical_kind_order(a, b));
        assert_eq!(labels, sorted);
        assert_eq!(summary.phases.len(), 1);
        assert_eq!(summary.phases[0].count, 1);
        assert_eq!(summary.phases[0].max_micros, 100);
    }

    #[test]
    fn merge_orders_by_clock_then_lane() {
        let shared = Arc::new(TraceShared::new());
        shared.configure(TraceConfig::on());
        let mut a = SiteTracer::new(Arc::clone(&shared), TraceLane::Site(0));
        let mut b = SiteTracer::new(Arc::clone(&shared), TraceLane::Site(1));
        a.record(TraceEventKind::SettleBegin);
        b.record(TraceEventKind::SettleBegin);
        a.record(TraceEventKind::SettleEnd { micros: 0 });
        let merged = merge_snapshots(vec![a.snapshot(), b.snapshot()]);
        let clocks: Vec<u64> = merged.iter().map(|e| e.clock).collect();
        assert_eq!(clocks, vec![0, 1, 2]);
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let shared = Arc::new(TraceShared::new());
        shared.configure(TraceConfig::on());
        let mut t = tracer(&shared);
        t.record(TraceEventKind::Broadcast {
            kind: "Start",
            fanout: 64,
        });
        t.record(TraceEventKind::WireFrame { bytes: 40 });
        let mut buf = Vec::new();
        export_chrome(&t.snapshot(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("broadcast:Start"));
        assert!(s.contains("\"fanout\":64"));
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes);
        let brackets = s.matches('[').count();
        assert_eq!(brackets, s.matches(']').count());
    }

    #[test]
    fn phase_histogram_buckets_by_log2() {
        let mut p = PhaseStats::new("settle");
        p.add(0); // bucket 0
        p.add(1); // bucket 1
        p.add(1000); // bucket 9
        p.add(1500); // bucket 10
        assert_eq!(p.count, 4);
        assert_eq!(p.max_micros, 1500);
        assert_eq!(p.log2_buckets, vec![(0, 1), (1, 1), (9, 1), (10, 1)]);
    }
}
