//! Workspace file collection and the flattened token model rules run on.
//!
//! `syn::parse_file` (the offline token-level stub — see `stubs/README.md`)
//! gives us balanced token trees. Rules want linear scans with just
//! enough structure recovered: the enclosing `fn`/`mod` chain of every
//! token (allow-list entries match by item name), whether the token is
//! test-only code (`#[cfg(test)]` / `#[test]` items, `tests/` /
//! `examples/` / `benches/` files — the invariants protect *runtime*
//! semantics, so test scaffolding is structurally exempt), whether it
//! sits inside a `use` statement, and matched-bracket indices so rule D4
//! can reason about guard liveness within a brace block.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Rule;

/// Token kind in the flattened stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (text in [`Tok::text`]).
    Ident,
    /// Literal (string/char/number); contents never inspected.
    Lit,
    /// Single punctuation char ([`Tok::ch`]).
    Punct,
    /// Group open: `(`, `{`, or `[` ([`Tok::ch`]).
    Open,
    /// Group close: `)`, `}`, or `]` ([`Tok::ch`]).
    Close,
}

/// One flattened token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token.
    pub kind: Kind,
    /// Ident text (empty for non-idents).
    pub text: String,
    /// Punct/delimiter char (`\0` for idents/literals).
    pub ch: char,
    /// 1-based source line.
    pub line: u32,
    /// Index into [`Unit::ctxs`].
    pub ctx: u32,
    /// Inside a `use` statement (import paths are not constructions).
    pub in_use: bool,
}

/// An item context: the chain of enclosing `mod`/`fn` names.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Names from outermost to innermost (mods and fns interleaved).
    pub chain: Vec<String>,
    /// Token belongs to test-only code.
    pub test: bool,
}

impl Ctx {
    /// Innermost item name, for reports ( `<file>` at file level).
    pub fn item(&self) -> &str {
        self.chain.last().map(|s| s.as_str()).unwrap_or("<file>")
    }
}

/// A parsed source file ready for linting.
#[derive(Debug)]
pub struct Unit {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Flattened tokens.
    pub toks: Vec<Tok>,
    /// Context table referenced by [`Tok::ctx`].
    pub ctxs: Vec<Ctx>,
    /// For each `Open` token, the index of its matching `Close` (and
    /// vice versa); `usize::MAX` elsewhere.
    pub matched: Vec<usize>,
}

impl Unit {
    /// Parse and flatten one file. `test_file` marks the whole file as
    /// test scaffolding (integration tests, examples, benches).
    pub fn parse(path: String, src: &str, test_file: bool) -> Result<Unit, String> {
        let file = syn::parse_file(src).map_err(|e| format!("{}: parse error: {}", path, e))?;
        let mut unit = Unit {
            path,
            toks: Vec::new(),
            ctxs: vec![Ctx {
                chain: Vec::new(),
                test: test_file,
            }],
            matched: Vec::new(),
        };
        flatten(&file.tokens.trees, 0, false, &mut unit);
        unit.matched = vec![usize::MAX; unit.toks.len()];
        let mut stack = Vec::new();
        for i in 0..unit.toks.len() {
            match unit.toks[i].kind {
                Kind::Open => stack.push(i),
                Kind::Close => {
                    if let Some(open) = stack.pop() {
                        unit.matched[open] = i;
                        unit.matched[i] = open;
                    }
                }
                _ => {}
            }
        }
        Ok(unit)
    }

    /// Ident text at `i`, or `""`.
    pub fn ident(&self, i: usize) -> &str {
        match self.toks.get(i) {
            Some(t) if t.kind == Kind::Ident => &t.text,
            _ => "",
        }
    }

    /// Is there a `::` starting at token `i`?
    pub fn colons(&self, i: usize) -> bool {
        self.punct(i) == ':' && self.punct(i + 1) == ':'
    }

    /// Punct char at `i`, or `\0`.
    pub fn punct(&self, i: usize) -> char {
        match self.toks.get(i) {
            Some(t) if t.kind == Kind::Punct => t.ch,
            _ => '\0',
        }
    }

    /// Is token `i` an `Open` with char `ch`?
    pub fn open(&self, i: usize, ch: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == Kind::Open && t.ch == ch)
    }

    /// The context of token `i`.
    pub fn ctx(&self, i: usize) -> &Ctx {
        &self.ctxs[self.toks[i].ctx as usize]
    }
}

/// Recursive flatten with item-context recovery. `ctx` is the current
/// context index, `in_use` marks tokens inside a `use` statement.
fn flatten(trees: &[syn::TokenTree], ctx: u32, in_use_inherit: bool, unit: &mut Unit) {
    let mut pending_name: Option<String> = None;
    let mut pending_test_attr = false;
    let mut in_use = in_use_inherit;
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            syn::TokenTree::Ident(id) => {
                match id.text.as_str() {
                    // `use` is keyword-only in import position (incl.
                    // `pub use`), so no statement-start check is needed.
                    "use" => in_use = true,
                    "fn" | "mod" => {
                        if let Some(syn::TokenTree::Ident(name)) = trees.get(i + 1) {
                            pending_name = Some(name.text.clone());
                        }
                    }
                    _ => {}
                }
                unit.toks.push(Tok {
                    kind: Kind::Ident,
                    text: id.text.clone(),
                    ch: '\0',
                    line: id.span.line,
                    ctx,
                    in_use,
                });
            }
            syn::TokenTree::Punct(p) => {
                // Attribute: `#` followed by a bracket group. `test`
                // anywhere inside (without `not`) marks the next item as
                // test-only — covers `#[test]`, `#[cfg(test)]`, and
                // `#[cfg_attr(test, ...)]`, while leaving
                // `#[cfg(not(test))]` as production code.
                if p.ch == '#' {
                    if let Some(syn::TokenTree::Group(g)) = trees.get(i + 1) {
                        if g.delimiter == syn::Delimiter::Bracket {
                            let mut has_test = false;
                            let mut has_not = false;
                            scan_idents(&g.stream.trees, &mut |t| {
                                has_test |= t == "test";
                                has_not |= t == "not";
                            });
                            if has_test && !has_not {
                                pending_test_attr = true;
                            }
                        }
                    }
                }
                if p.ch == ';' {
                    pending_name = None;
                    pending_test_attr = false;
                    in_use = false;
                }
                unit.toks.push(Tok {
                    kind: Kind::Punct,
                    text: String::new(),
                    ch: p.ch,
                    line: p.span.line,
                    ctx,
                    in_use,
                });
            }
            syn::TokenTree::Literal(l) => {
                unit.toks.push(Tok {
                    kind: Kind::Lit,
                    text: String::new(),
                    ch: '\0',
                    line: l.span.line,
                    ctx,
                    in_use,
                });
            }
            syn::TokenTree::Group(g) => {
                let (open, close) = match g.delimiter {
                    syn::Delimiter::Parenthesis => ('(', ')'),
                    syn::Delimiter::Brace => ('{', '}'),
                    syn::Delimiter::Bracket => ('[', ']'),
                };
                let is_body = g.delimiter == syn::Delimiter::Brace && pending_name.is_some();
                let inner_ctx = if is_body {
                    let parent = &unit.ctxs[ctx as usize];
                    let mut chain = parent.chain.clone();
                    chain.push(pending_name.take().expect("checked is_some"));
                    let test = parent.test || pending_test_attr;
                    unit.ctxs.push(Ctx { chain, test });
                    pending_test_attr = false;
                    (unit.ctxs.len() - 1) as u32
                } else {
                    ctx
                };
                unit.toks.push(Tok {
                    kind: Kind::Open,
                    text: String::new(),
                    ch: open,
                    line: g.span.line,
                    ctx: inner_ctx,
                    in_use,
                });
                flatten(&g.stream.trees, inner_ctx, in_use, unit);
                unit.toks.push(Tok {
                    kind: Kind::Close,
                    text: String::new(),
                    ch: close,
                    line: g.span.line,
                    ctx: inner_ctx,
                    in_use,
                });
                if g.delimiter == syn::Delimiter::Brace && !in_use {
                    // A brace group terminates an item, consuming any
                    // pending name/attribute.
                    pending_name = None;
                    pending_test_attr = false;
                }
            }
        }
        i += 1;
    }
}

fn scan_idents(trees: &[syn::TokenTree], f: &mut impl FnMut(&str)) {
    for t in trees {
        match t {
            syn::TokenTree::Ident(i) => f(&i.text),
            syn::TokenTree::Group(g) => scan_idents(&g.stream.trees, f),
            _ => {}
        }
    }
}

/// Whether a workspace-relative path is test scaffolding by location.
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "examples" || seg == "benches")
        || rel.ends_with("build.rs")
}

/// Collect every lintable `.rs` file under `root`.
///
/// Skipped subtrees: `target/` (build output), `stubs/` (stand-ins for
/// *third-party* crates — they mirror upstream APIs, and e.g. the
/// crossbeam stub legitimately constructs raw channels), `.git/`, and
/// any `tests/ui/` directory (lint fixtures are deliberately-bad code,
/// linted only through their own mini-roots by the ui test suite).
pub fn collect_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {}", dir.display(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {}", dir.display(), e))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "stubs" {
                continue;
            }
            if name == "ui" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Convenience: the rules a unit is subject to under `cfg`.
pub fn rules_for(cfg: &crate::config::Config, path: &str) -> Vec<Rule> {
    Rule::ALL
        .into_iter()
        .filter(|r| cfg.in_scope(*r, path))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(src: &str) -> Unit {
        Unit::parse("crates/x/src/lib.rs".into(), src, false).unwrap()
    }

    #[test]
    fn contexts_track_fns_and_mods() {
        let u = unit(
            "mod outer {\n    fn inner() { let x = 1; }\n    #[cfg(test)]\n    mod tests {\n        fn t() { let y = 2; }\n    }\n}\n",
        );
        let x = u
            .toks
            .iter()
            .position(|t| t.kind == Kind::Ident && t.text == "x")
            .unwrap();
        assert_eq!(
            u.ctx(x).chain,
            vec!["outer".to_string(), "inner".to_string()]
        );
        assert!(!u.ctx(x).test);
        let y = u
            .toks
            .iter()
            .position(|t| t.kind == Kind::Ident && t.text == "y")
            .unwrap();
        assert!(u.ctx(y).test);
        assert_eq!(u.ctx(y).item(), "t");
    }

    #[test]
    fn cfg_not_test_is_production() {
        let u = unit("#[cfg(not(test))]\nfn prod() { let z = 3; }\n");
        let z = u
            .toks
            .iter()
            .position(|t| t.kind == Kind::Ident && t.text == "z")
            .unwrap();
        assert!(!u.ctx(z).test);
    }

    #[test]
    fn use_statements_are_marked() {
        let u =
            unit("use std::collections::{HashMap, HashSet};\nfn f() { let m = HashMap::new(); }\n");
        let first = u.toks.iter().position(|t| t.text == "HashMap").unwrap();
        assert!(u.toks[first].in_use);
        let second = u.toks.iter().rposition(|t| t.text == "HashMap").unwrap();
        assert!(!u.toks[second].in_use);
    }

    #[test]
    fn matched_brackets() {
        let u = unit("fn f() { g(1, [2]); }\n");
        for i in 0..u.toks.len() {
            if u.toks[i].kind == Kind::Open {
                let j = u.matched[i];
                assert_eq!(u.matched[j], i);
                assert_eq!(u.toks[j].kind, Kind::Close);
            }
        }
    }

    #[test]
    fn test_paths() {
        assert!(is_test_path("crates/sim/tests/foo.rs"));
        assert!(is_test_path("tests/threaded_consistency.rs"));
        assert!(is_test_path("crates/sim/examples/api_dump.rs"));
        assert!(!is_test_path("crates/sim/src/threaded.rs"));
    }
}
