//! Lint findings and the text report.

use crate::config::Rule;
use std::fmt;

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file (or `lint.toml` for registry findings).
    pub path: String,
    /// 1-based line, 0 when the finding is not tied to a line.
    pub line: u32,
    /// Enclosing item name.
    pub item: String,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} {}:{} [{}] {}",
                self.rule, self.path, self.line, self.item, self.message
            )
        } else {
            write!(
                f,
                "{} {} [{}] {}",
                self.rule, self.path, self.item, self.message
            )
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule findings, sorted by (path, line).
    pub violations: Vec<Violation>,
    /// Config-level failures: stale allow/channel entries, parse errors.
    pub errors: Vec<String>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// No findings and no config errors.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// Render the full report (one line per finding plus a summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for e in &self.errors {
            out.push_str("config: ");
            out.push_str(e);
            out.push('\n');
        }
        out.push_str(&format!(
            "dtrack-lint: {} file(s) scanned, {} violation(s), {} config error(s)\n",
            self.files,
            self.violations.len(),
            self.errors.len()
        ));
        out
    }

    /// Stable ordering for deterministic output.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
    }
}
