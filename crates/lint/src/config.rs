//! `lint.toml` — the deny-by-default configuration and allow-list.
//!
//! The file has three kinds of entries:
//!
//! - `[rules.dN] paths = [...]` — which path prefixes each rule scans.
//!   When the file (or a table) is absent, [`Config::default_paths`]
//!   supplies the workspace defaults, so a missing config never means
//!   "nothing is checked".
//! - `[[allow]]` — a single exemption: rule, file, enclosing item, and a
//!   mandatory written reason. Entries are matched by *item name* (the
//!   enclosing `fn` or `mod`), not line number, so they survive edits —
//!   and an entry whose item no longer matches anything fails the run
//!   loudly as stale (see `stale_entries` in `lib.rs`).
//! - `[[channel]]` — the channel registry for rule D3: every channel
//!   construction in scope must be declared here with its boundedness
//!   and its endpoints in the wait-for graph (see `graph.rs`).
//!
//! Parsing is a deliberately small TOML subset (tables, arrays of
//! tables, string/bool/integer/string-array values, `#` comments): the
//! workspace has no TOML dependency and the lint must stay hermetic.
//! Unknown keys and malformed values are hard errors — a typo in an
//! allow-list entry must never silently widen an exemption.

use std::collections::BTreeMap;
use std::fmt;

/// The six mechanized invariants. See DESIGN.md "Mechanized invariants".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `std::collections::HashMap`/`HashSet` in protocol code.
    D1,
    /// No wall clocks or ambient randomness outside timing modules.
    D2,
    /// Channel constructions must be declared in the registry, and the
    /// wait-for graph must stay deadlock-free.
    D3,
    /// No lock guard live across a blocking `send`/`recv`/`wait`.
    D4,
    /// `Ordering::Relaxed` only on registered hint counters.
    D5,
    /// No `unwrap()`/`expect()` where a panic means "site death".
    D6,
}

impl Rule {
    /// All rules, in order.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5, Rule::D6];

    /// Stable identifier used in `lint.toml` and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
        }
    }

    /// Parse a rule id (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.to_ascii_uppercase().as_str() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            Rule::D1 => 0,
            Rule::D2 => 1,
            Rule::D3 => 2,
            Rule::D4 => 3,
            Rule::D5 => 4,
            Rule::D6 => 5,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One `[[allow]]` exemption.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Which rule is exempted.
    pub rule: Rule,
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// Enclosing `fn` or `mod` name the exemption applies to, or
    /// `"<file>"` for the whole file.
    pub item: String,
    /// Mandatory human-written justification.
    pub reason: String,
}

/// One `[[channel]]` registry entry (rule D3).
#[derive(Debug, Clone)]
pub struct Channel {
    /// Workspace-relative file path of the construction site(s).
    pub path: String,
    /// Enclosing functions the construction may appear in.
    pub fns: Vec<String>,
    /// `"bounded"` or `"unbounded"` — must match the constructor called.
    pub construct: String,
    /// Short channel name for reports and the wait-for graph.
    pub name: String,
    /// Sender roles (graph nodes). A bounded channel's send can block,
    /// so each `from` node waits on `to`.
    pub from: Vec<String>,
    /// Receiver role (graph node).
    pub to: String,
    /// Marks THE unbounded edge whose unboundedness is what breaks a
    /// wait-for cycle. Only meaningful on unbounded entries; checked
    /// against the actual graph (a `breaks_cycle` edge on no cycle is
    /// stale, an unbounded edge on a cycle without the flag is an
    /// undocumented liveness argument).
    pub breaks_cycle: bool,
    /// Mandatory human-written justification.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Per-rule path-prefix scopes, indexed by [`Rule::index`]. Empty
    /// vector = rule disabled (never the default).
    pub paths: [Vec<String>; 6],
    /// All `[[allow]]` entries, in file order.
    pub allows: Vec<Allow>,
    /// All `[[channel]]` entries, in file order.
    pub channels: Vec<Channel>,
}

impl Config {
    /// The workspace-default scopes, used when `lint.toml` (or one of
    /// its `[rules.*]` tables) is absent. Kept in sync with the
    /// rationale table in DESIGN.md "Mechanized invariants".
    pub fn default_paths(rule: Rule) -> Vec<String> {
        let v: &[&str] = match rule {
            // Determinism: every crate whose state feeds a transcript.
            Rule::D1 => &[
                "crates/core",
                "crates/sketch",
                "crates/sim",
                "crates/baseline",
                "crates/workload",
                "crates/adversary",
                "src",
            ],
            // Seed purity: everything except the bench harness, whose
            // entire output is wall-clock readings.
            Rule::D2 => &[
                "crates/core",
                "crates/sketch",
                "crates/sim",
                "crates/baseline",
                "crates/workload",
                "crates/adversary",
                "crates/hash",
                "crates/testkit",
                "src",
            ],
            // The runtimes own every channel and lock.
            Rule::D3 => &["crates/sim"],
            Rule::D4 => &["crates/sim"],
            // Relaxed atomics: runtime + any crate that might grow one.
            Rule::D5 => &[
                "crates/core",
                "crates/sketch",
                "crates/sim",
                "crates/baseline",
                "crates/workload",
                "crates/hash",
                "crates/testkit",
                "src",
            ],
            // Panic-as-containment is a sim-runtime contract.
            Rule::D6 => &["crates/sim"],
        };
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Build the all-defaults config (used when `lint.toml` is absent,
    /// e.g. for bad-fixture mini-roots).
    pub fn with_default_paths() -> Config {
        let mut cfg = Config::default();
        for r in Rule::ALL {
            cfg.paths[r.index()] = Config::default_paths(r);
        }
        cfg
    }

    /// Scope prefixes for `rule`.
    pub fn rule_paths(&self, rule: Rule) -> &[String] {
        &self.paths[rule.index()]
    }

    /// Whether `rule` scans `path` at all.
    pub fn in_scope(&self, rule: Rule, path: &str) -> bool {
        self.rule_paths(rule)
            .iter()
            .any(|p| path == p || path.starts_with(&format!("{}/", p)))
    }

    /// Parse a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = parse_toml(text)?;
        let mut cfg = Config::with_default_paths();
        for table in &doc.tables {
            match table.header.as_str() {
                "" => {
                    if let Some(k) = table.values.keys().next() {
                        return Err(format!("lint.toml: unknown top-level key `{}`", k));
                    }
                }
                h if h.starts_with("rules.") => {
                    let rule = Rule::parse(&h["rules.".len()..])
                        .ok_or_else(|| format!("lint.toml: unknown rule table `[{}]`", h))?;
                    let mut paths = None;
                    for (k, v) in &table.values {
                        match k.as_str() {
                            "paths" => paths = Some(v.as_list(h, k)?),
                            _ => {
                                return Err(format!("lint.toml: unknown key `{}` in `[{}]`", k, h))
                            }
                        }
                    }
                    if let Some(p) = paths {
                        cfg.paths[rule.index()] = p;
                    }
                }
                "allow" => {
                    let mut rule = None;
                    let mut path = None;
                    let mut item = None;
                    let mut reason = None;
                    for (k, v) in &table.values {
                        match k.as_str() {
                            "rule" => {
                                let s = v.as_str("allow", k)?;
                                rule = Some(Rule::parse(&s).ok_or_else(|| {
                                    format!("lint.toml: `[[allow]]` has unknown rule `{}`", s)
                                })?);
                            }
                            "path" => path = Some(v.as_str("allow", k)?),
                            "item" => item = Some(v.as_str("allow", k)?),
                            "reason" => reason = Some(v.as_str("allow", k)?),
                            _ => {
                                return Err(format!(
                                    "lint.toml: unknown key `{}` in `[[allow]]`",
                                    k
                                ))
                            }
                        }
                    }
                    let entry = Allow {
                        rule: rule.ok_or("lint.toml: `[[allow]]` missing `rule`")?,
                        path: path.ok_or("lint.toml: `[[allow]]` missing `path`")?,
                        item: item.ok_or("lint.toml: `[[allow]]` missing `item`")?,
                        reason: reason.ok_or("lint.toml: `[[allow]]` missing `reason`")?,
                    };
                    if entry.reason.trim().is_empty() {
                        return Err(format!(
                            "lint.toml: `[[allow]]` for {} {} has an empty reason — every \
                             exemption requires a written justification",
                            entry.rule, entry.path
                        ));
                    }
                    cfg.allows.push(entry);
                }
                "channel" => {
                    let mut path = None;
                    let mut fns = None;
                    let mut construct = None;
                    let mut name = None;
                    let mut from = None;
                    let mut to = None;
                    let mut breaks_cycle = false;
                    let mut reason = None;
                    for (k, v) in &table.values {
                        match k.as_str() {
                            "path" => path = Some(v.as_str("channel", k)?),
                            "fns" => fns = Some(v.as_list("channel", k)?),
                            "construct" => construct = Some(v.as_str("channel", k)?),
                            "name" => name = Some(v.as_str("channel", k)?),
                            "from" => from = Some(v.as_list("channel", k)?),
                            "to" => to = Some(v.as_str("channel", k)?),
                            "breaks_cycle" => breaks_cycle = v.as_bool("channel", k)?,
                            "reason" => reason = Some(v.as_str("channel", k)?),
                            _ => {
                                return Err(format!(
                                    "lint.toml: unknown key `{}` in `[[channel]]`",
                                    k
                                ))
                            }
                        }
                    }
                    let entry = Channel {
                        path: path.ok_or("lint.toml: `[[channel]]` missing `path`")?,
                        fns: fns.ok_or("lint.toml: `[[channel]]` missing `fns`")?,
                        construct: construct
                            .ok_or("lint.toml: `[[channel]]` missing `construct`")?,
                        name: name.ok_or("lint.toml: `[[channel]]` missing `name`")?,
                        from: from.ok_or("lint.toml: `[[channel]]` missing `from`")?,
                        to: to.ok_or("lint.toml: `[[channel]]` missing `to`")?,
                        breaks_cycle,
                        reason: reason.ok_or("lint.toml: `[[channel]]` missing `reason`")?,
                    };
                    if entry.construct != "bounded" && entry.construct != "unbounded" {
                        return Err(format!(
                            "lint.toml: channel `{}` has construct `{}` (want bounded|unbounded)",
                            entry.name, entry.construct
                        ));
                    }
                    if entry.breaks_cycle && entry.construct != "unbounded" {
                        return Err(format!(
                            "lint.toml: channel `{}` is bounded — a bounded edge cannot be the \
                             cycle-breaking edge",
                            entry.name
                        ));
                    }
                    if entry.reason.trim().is_empty() {
                        return Err(format!(
                            "lint.toml: channel `{}` has an empty reason",
                            entry.name
                        ));
                    }
                    cfg.channels.push(entry);
                }
                other => return Err(format!("lint.toml: unknown table `[{}]`", other)),
            }
        }
        Ok(cfg)
    }
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
}

impl Value {
    fn as_str(&self, table: &str, key: &str) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!(
                "lint.toml: `{}` in `{}` must be a string",
                key, table
            )),
        }
    }
    fn as_bool(&self, table: &str, key: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!(
                "lint.toml: `{}` in `{}` must be a bool",
                key, table
            )),
        }
    }
    fn as_list(&self, table: &str, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::List(l) => Ok(l.clone()),
            _ => Err(format!(
                "lint.toml: `{}` in `{}` must be a string array",
                key, table
            )),
        }
    }
}

#[derive(Debug)]
struct Table {
    header: String,
    values: BTreeMap<String, Value>,
}

#[derive(Debug)]
struct Doc {
    tables: Vec<Table>,
}

/// Strip a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(s: &str) -> Result<(String, &str), String> {
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| format!("lint.toml: expected string at `{}`", s))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => {
                    return Err(format!(
                        "lint.toml: unsupported escape {:?} in string",
                        other.map(|(_, c)| c)
                    ))
                }
            },
            '"' => return Ok((out, &rest[i + c.len_utf8()..])),
            c => out.push(c),
        }
    }
    Err("lint.toml: unterminated string".into())
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("lint.toml: unterminated array")?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (item, after) = parse_string(rest)?;
            items.push(item);
            rest = after
                .trim()
                .strip_prefix(',')
                .unwrap_or(after.trim())
                .trim();
        }
        return Ok(Value::List(items));
    }
    if s.starts_with('"') {
        let (v, rest) = parse_string(s)?;
        if !rest.trim().is_empty() {
            return Err(format!("lint.toml: trailing junk after string: `{}`", rest));
        }
        return Ok(Value::Str(v));
    }
    Err(format!("lint.toml: unsupported value `{}`", s))
}

fn parse_toml(text: &str) -> Result<Doc, String> {
    let mut tables = vec![Table {
        header: String::new(),
        values: BTreeMap::new(),
    }];
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let header = h
                .strip_suffix("]]")
                .ok_or_else(|| format!("lint.toml: malformed table header `{}`", line))?
                .trim()
                .to_string();
            tables.push(Table {
                header,
                values: BTreeMap::new(),
            });
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            let header = h
                .strip_suffix(']')
                .ok_or_else(|| format!("lint.toml: malformed table header `{}`", line))?
                .trim()
                .to_string();
            tables.push(Table {
                header,
                values: BTreeMap::new(),
            });
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("lint.toml: expected `key = value`, got `{}`", line))?;
        let key = line[..eq].trim().to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance
        // (strings in the config never contain brackets).
        while value.starts_with('[') && !value.ends_with(']') {
            let next = lines
                .next()
                .ok_or("lint.toml: unterminated multi-line array")?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let parsed = parse_value(&value)?;
        let table = tables.last_mut().expect("root table always present");
        if table.values.insert(key.clone(), parsed).is_some() {
            return Err(format!(
                "lint.toml: duplicate key `{}` in `[{}]`",
                key, table.header
            ));
        }
    }
    // Drop the implicit empty root table if unused.
    Ok(Doc { tables })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_allow_and_channel() {
        let cfg = Config::parse(
            r#"
            # comment
            [rules.d1]
            paths = ["crates/x"]

            [[allow]]
            rule = "D5"
            path = "crates/x/src/lib.rs"
            item = "hint"
            reason = "monotone counter"

            [[channel]]
            path = "crates/x/src/lib.rs"
            fns = ["spawn"]
            construct = "unbounded"
            name = "inbox"
            from = ["site"]
            to = "coordinator"
            breaks_cycle = true
            reason = "breaks the feedback cycle"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.rule_paths(Rule::D1), &["crates/x".to_string()]);
        // Unconfigured rules keep their defaults.
        assert!(!cfg.rule_paths(Rule::D3).is_empty());
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.channels.len(), 1);
        assert!(cfg.channels[0].breaks_cycle);
        assert!(cfg.in_scope(Rule::D1, "crates/x/src/lib.rs"));
        assert!(!cfg.in_scope(Rule::D1, "crates/xy/src/lib.rs"));
    }

    #[test]
    fn multi_line_arrays() {
        let cfg = Config::parse(
            "[rules.d2]\npaths = [\n  \"crates/a\", # trailing comment\n  \"crates/b\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.rule_paths(Rule::D2),
            &["crates/a".to_string(), "crates/b".to_string()]
        );
    }

    #[test]
    fn rejects_typos_and_empty_reasons() {
        assert!(Config::parse("[rules.d9]\npaths = []\n").is_err());
        assert!(Config::parse("[[allow]]\nrule = \"D1\"\npath = \"a\"\nitem = \"b\"\n").is_err());
        assert!(Config::parse(
            "[[allow]]\nrule = \"D1\"\npath = \"a\"\nitem = \"b\"\nreason = \"  \"\n"
        )
        .is_err());
        assert!(Config::parse("[[allow]]\nrule = \"D1\"\npath = \"a\"\nitm = \"b\"\n").is_err());
        assert!(Config::parse(
            "[[channel]]\npath = \"a\"\nfns = [\"f\"]\nconstruct = \"bounded\"\nname = \"c\"\n\
             from = [\"x\"]\nto = \"y\"\nbreaks_cycle = true\nreason = \"r\"\n"
        )
        .is_err());
    }
}
