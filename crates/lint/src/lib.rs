//! dtrack-lint: the workspace static-analysis pass that mechanizes the
//! DESIGN.md invariants (rules D1–D6).
//!
//! ## Why parse with `syn` directly (and why `syn` here is a stub)
//!
//! The obvious implementations — a rustc lint plugin, a dylint library,
//! or a clippy fork — all need rustc's unstable internals and a network
//! fetch of matching toolchain components. This workspace builds fully
//! offline against vendored stubs (`stubs/README.md`), so the linter
//! instead parses source files *textually*: `stubs/syn` exposes a
//! `syn::parse_file` that lexes real Rust (comments, raw strings,
//! lifetimes-vs-chars, nested delimiters) into balanced token trees, and
//! the rules run over a flattened token stream with item contexts
//! recovered (`source.rs`). No type information, no name resolution —
//! but none of the rules need it: each invariant was deliberately stated
//! in DESIGN.md in terms a lexical pass can check exactly (literal
//! `std::collections::HashMap` paths, `Instant::now` calls,
//! `Ordering::Relaxed` tokens, channel-constructor names, guard-binding
//! shapes). What a lexical pass cannot see (exotic re-imports, macro
//! expansion) is covered by the conventions the same lint enforces plus
//! the ui fixture suite that pins every rule's behaviour.
//!
//! ## Deny-by-default
//!
//! Every hit is a violation unless `lint.toml` carries a matching
//! `[[allow]]`/`[[channel]]` entry with a written reason. Entries match
//! by enclosing item name, not line number, and an entry that matches
//! nothing fails the run loudly — exemptions cannot outlive the code
//! they excused.

pub mod config;
pub mod graph;
pub mod report;
pub mod rules;
pub mod source;

use std::fs;
use std::path::Path;

use config::Config;
use report::Report;
use rules::Usage;
use source::{collect_files, is_test_path, Unit};

/// Run the full pass over the workspace rooted at `root`, using
/// `root/lint.toml` when present (workspace defaults otherwise).
pub fn run(root: &Path) -> Report {
    let cfg_path = root.join("lint.toml");
    let cfg = if cfg_path.is_file() {
        match fs::read_to_string(&cfg_path) {
            Ok(text) => match Config::parse(&text) {
                Ok(cfg) => cfg,
                Err(e) => {
                    return Report {
                        errors: vec![e],
                        ..Report::default()
                    }
                }
            },
            Err(e) => {
                return Report {
                    errors: vec![format!("read {}: {}", cfg_path.display(), e)],
                    ..Report::default()
                }
            }
        }
    } else {
        Config::with_default_paths()
    };
    run_with_config(root, &cfg)
}

/// Run the pass with an explicit configuration (ui fixtures use this to
/// supply mini-root configs).
pub fn run_with_config(root: &Path, cfg: &Config) -> Report {
    let mut report = Report::default();
    let mut usage = Usage::for_config(cfg);

    let files = match collect_files(root) {
        Ok(f) => f,
        Err(e) => {
            report.errors.push(e);
            return report;
        }
    };

    for (rel, abs) in &files {
        // Only parse files some rule will actually scan.
        if !config::Rule::ALL.iter().any(|r| cfg.in_scope(*r, rel)) {
            continue;
        }
        let src = match fs::read_to_string(abs) {
            Ok(s) => s,
            Err(e) => {
                report.errors.push(format!("read {}: {}", rel, e));
                continue;
            }
        };
        report.files += 1;
        let unit = match Unit::parse(rel.clone(), &src, is_test_path(rel)) {
            Ok(u) => u,
            Err(e) => {
                report.errors.push(e);
                continue;
            }
        };
        rules::run_rules(&unit, cfg, &mut usage, &mut report.violations);
    }

    // The wait-for graph over the channel registry (D3's liveness half).
    graph::check(&cfg.channels, &mut report.violations);

    // Stale-entry check: every exemption must still excuse something.
    for (i, used) in usage.allow_used.iter().enumerate() {
        if !used {
            let a = &cfg.allows[i];
            report.errors.push(format!(
                "stale [[allow]] entry: {} {} [{}] matches nothing — the code it excused is \
                 gone or renamed; delete the entry (reason was: {})",
                a.rule, a.path, a.item, a.reason
            ));
        }
    }
    for (i, used) in usage.channel_used.iter().enumerate() {
        if !used {
            let c = &cfg.channels[i];
            report.errors.push(format!(
                "stale [[channel]] entry: `{}` at {} [{}] matches no construction site — \
                 delete it or fix path/fns/construct",
                c.name,
                c.path,
                c.fns.join(", ")
            ));
        }
    }

    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The crate's own sources are in no rule's scope (crates/lint is
    /// not protocol code), so a run rooted here scans nothing and is
    /// clean under defaults.
    #[test]
    fn empty_scope_is_clean() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let report = run_with_config(&dir, &Config::with_default_paths());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.files, 0);
    }
}
