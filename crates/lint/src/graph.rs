//! The wait-for graph over the channel registry (rule D3's liveness
//! half).
//!
//! Model: graph nodes are the *roles* named in `[[channel]]` entries
//! (`feeder`, `site`, `coordinator`, …). A **bounded** channel's send
//! can block until the receiver drains, so it contributes a blocking
//! edge `from → to` for every sender role: "`from` may wait for `to` to
//! make progress". An **unbounded** channel's send never blocks, so it
//! contributes a non-blocking edge — recorded so cycles can be talked
//! about, but unable to wedge anyone by itself.
//!
//! The deadlock-freedom argument in DESIGN.md ("The threaded runtime")
//! is exactly the shape this module checks mechanically:
//!
//! 1. **The bounded subgraph must be acyclic.** A cycle of blocking
//!    edges is a potential deadlock: every role in it can be waiting for
//!    the next with no external way to drain anyone.
//! 2. **Every load-bearing unbounded edge must be flagged
//!    `breaks_cycle`.** An unbounded edge `from → to` is load-bearing
//!    when a *bounded-only* path leads back `to → … → from`: were this
//!    edge bounded too, that cycle would be all-blocking — this edge's
//!    unboundedness is exactly what breaks it. Flagging is a *written
//!    claim* ("unbounded precisely so this cycle cannot block", plus the
//!    memory-bound argument); a load-bearing edge without the flag is an
//!    undocumented liveness argument and fails the lint. Cycles made
//!    entirely of unbounded edges need no flag — no send in them can
//!    block in the first place.
//! 3. **A `breaks_cycle` flag on an edge that is not load-bearing is
//!    stale** and fails the lint, the same way an unused allow-list
//!    entry does.
//!
//! Receive-side blocking (a `recv` waiting for a sender) is deliberately
//! out of the model: every receiver in the runtimes either holds no
//! resources while waiting (the coordinator loop) or waits with a
//! deadline (`settle_deadline`), and rule D4 separately forbids waiting
//! while holding a lock.

use crate::config::Channel;
use crate::config::Rule;
use crate::report::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// One directed edge, expanded from a `[[channel]]` entry.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    bounded: bool,
}

/// Check the registry's wait-for graph; findings land in `out`.
pub fn check(channels: &[Channel], out: &mut Vec<Violation>) {
    let mut edges = Vec::new();
    for c in channels {
        for f in &c.from {
            edges.push(Edge {
                from: f.clone(),
                to: c.to.clone(),
                bounded: c.construct == "bounded",
            });
        }
    }

    // 1. Bounded subgraph acyclicity.
    let bounded: Vec<&Edge> = edges.iter().filter(|e| e.bounded).collect();
    if let Some(cycle) = find_cycle(&bounded) {
        out.push(Violation {
            rule: Rule::D3,
            path: "lint.toml".into(),
            line: 0,
            item: "<registry>".into(),
            message: format!(
                "bounded wait-for edges form a cycle ({}) — every send in it can block on the \
                 next hop; one edge must become the registered unbounded inbox",
                cycle.join(" -> ")
            ),
        });
    }

    // Bounded-only reachability: unbounded edge e is load-bearing iff a
    // path of *blocking* edges leads back e.to -> e.from (so the cycle
    // through e would be all-blocking were e bounded too).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges.iter().filter(|e| e.bounded) {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    // Path of length >= 1 (src == dst needs an actual bounded cycle, so
    // start from src's successors, not src itself).
    let reaches = |src: &str, dst: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<&str> = adj
            .get(src)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(n) = stack.pop() {
            if n == dst {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };

    // Checks 2 & 3 are per *entry*, not per expanded edge: the flag is a
    // claim about the channel, which is load-bearing if any of its
    // sender roles sits on an otherwise-bounded cycle.
    for c in channels {
        if c.construct == "bounded" {
            continue; // bounded-only cycles are handled above.
        }
        let load_bearing = c.from.iter().any(|f| reaches(&c.to, f));
        if load_bearing && !c.breaks_cycle {
            out.push(Violation {
                rule: Rule::D3,
                path: "lint.toml".into(),
                line: 0,
                item: c.name.clone(),
                message: format!(
                    "unbounded channel `{}` ({} -> {}) closes an otherwise-bounded wait-for \
                     cycle but is not flagged breaks_cycle — the liveness argument must be \
                     written down",
                    c.name,
                    c.from.join(","),
                    c.to
                ),
            });
        }
        if !load_bearing && c.breaks_cycle {
            out.push(Violation {
                rule: Rule::D3,
                path: "lint.toml".into(),
                line: 0,
                item: c.name.clone(),
                message: format!(
                    "channel `{}` ({} -> {}) is flagged breaks_cycle but no bounded wait-for \
                     path returns {} -> any sender — stale flag; remove it or fix the \
                     registry's endpoints",
                    c.name,
                    c.from.join(","),
                    c.to,
                    c.to
                ),
            });
        }
    }
}

/// DFS cycle detection; returns the node names of one cycle if any.
fn find_cycle(edges: &[&Edge]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
        nodes.insert(e.from.as_str());
        nodes.insert(e.to.as_str());
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = nodes.iter().map(|n| (*n, Mark::White)).collect();
    fn dfs<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        path: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(n, Mark::Grey);
        path.push(n);
        for next in adj.get(n).into_iter().flatten() {
            match marks.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let start = path.iter().position(|p| p == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[start..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = dfs(next, adj, marks, path) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        path.pop();
        marks.insert(n, Mark::Black);
        None
    }
    for n in nodes.clone() {
        if marks[n] == Mark::White {
            let mut path = Vec::new();
            if let Some(c) = dfs(n, &adj, &mut marks, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(name: &str, from: &[&str], to: &str, construct: &str, breaks: bool) -> Channel {
        Channel {
            path: "crates/sim/src/x.rs".into(),
            fns: vec!["spawn".into()],
            construct: construct.into(),
            name: name.into(),
            from: from.iter().map(|s| s.to_string()).collect(),
            to: to.into(),
            breaks_cycle: breaks,
            reason: "test".into(),
        }
    }

    #[test]
    fn healthy_registry_is_clean() {
        // feeder -> site (bounded), coordinator -> site (bounded),
        // site -> coordinator (unbounded, breaks the cycle).
        let channels = vec![
            chan(
                "site-queue",
                &["feeder", "coordinator"],
                "site",
                "bounded",
                false,
            ),
            chan("coord-inbox", &["site"], "coordinator", "unbounded", true),
        ];
        let mut out = Vec::new();
        check(&channels, &mut out);
        assert!(out.is_empty(), "{:?}", out);
    }

    #[test]
    fn bounded_cycle_is_flagged() {
        let channels = vec![
            chan("a", &["site"], "coordinator", "bounded", false),
            chan("b", &["coordinator"], "site", "bounded", false),
        ];
        let mut out = Vec::new();
        check(&channels, &mut out);
        assert!(out.iter().any(|v| v.message.contains("form a cycle")));
    }

    #[test]
    fn unflagged_unbounded_edge_on_cycle() {
        let channels = vec![
            chan("a", &["site"], "coordinator", "unbounded", false),
            chan("b", &["coordinator"], "site", "bounded", false),
        ];
        let mut out = Vec::new();
        check(&channels, &mut out);
        assert!(out
            .iter()
            .any(|v| v.message.contains("not flagged breaks_cycle")));
    }

    #[test]
    fn stale_breaks_cycle_flag() {
        let channels = vec![chan("reply", &["site"], "feeder", "unbounded", true)];
        let mut out = Vec::new();
        check(&channels, &mut out);
        assert!(out.iter().any(|v| v.message.contains("stale flag")));
    }
}
