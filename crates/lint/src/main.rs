//! `cargo run -p dtrack-lint` — lint the workspace against DESIGN.md's
//! mechanized invariants (rules D1–D6).
//!
//! Exit codes: 0 clean, 1 violations or stale/invalid `lint.toml`
//! entries, 2 usage or I/O failure. The same engine also runs as a
//! workspace test (`crates/lint/tests/workspace.rs`), so `cargo test`
//! gates on it too; the binary exists for fast local iteration and the
//! dedicated CI lint job.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dtrack-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "dtrack-lint: check DESIGN.md invariants (D1-D6) over the workspace\n\
                     \n\
                     usage: dtrack-lint [--root <dir>]\n\
                     \n\
                     Reads <root>/lint.toml for scopes, the allow-list, and the channel\n\
                     registry; workspace defaults apply when absent. Exit 0 = clean,\n\
                     1 = violations or stale config entries, 2 = usage/I/O error."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dtrack-lint: unknown argument `{}` (try --help)", other);
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace containing this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    if !root.is_dir() {
        eprintln!("dtrack-lint: root {} is not a directory", root.display());
        return ExitCode::from(2);
    }

    let report = dtrack_lint::run(&root);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
