//! Rules D1–D6 over the flattened token stream.
//!
//! Each rule is a lexical/structural scan: no type resolution, no
//! import tracking. That buys hermeticity (nothing but `syn` tokens) at
//! the cost of name-level matching — e.g. D1 fires on the literal path
//! `std::collections::HashMap`, not on exotic re-imports. The
//! workspace's own conventions (fully-qualified std paths, `dtrack_hash`
//! aliases) make name-level matching exact in practice, and the ui
//! fixture suite pins each rule's fire/pass behaviour.
//!
//! Test-only code (`#[cfg(test)]`/`#[test]` items, `tests/`,
//! `examples/`, `benches/` files) is structurally exempt from every
//! rule: the invariants protect runtime semantics — transcripts,
//! metering, liveness — which test scaffolding does not ship.

use crate::config::{Config, Rule};
use crate::report::Violation;
use crate::source::{Kind, Unit};

/// Tracks which allow-list / registry entries matched anything, for the
/// stale-entry check at the end of the run.
#[derive(Debug, Default)]
pub struct Usage {
    /// Per-`Config::allows` index: entry exempted at least one finding.
    pub allow_used: Vec<bool>,
    /// Per-`Config::channels` index: entry matched a construction site.
    pub channel_used: Vec<bool>,
}

impl Usage {
    /// Sized for `cfg`.
    pub fn for_config(cfg: &Config) -> Usage {
        Usage {
            allow_used: vec![false; cfg.allows.len()],
            channel_used: vec![false; cfg.channels.len()],
        }
    }
}

/// Run every in-scope rule on one unit.
pub fn run_rules(unit: &Unit, cfg: &Config, usage: &mut Usage, out: &mut Vec<Violation>) {
    if cfg.in_scope(Rule::D1, &unit.path) {
        d1_std_hash(unit, cfg, usage, out);
    }
    if cfg.in_scope(Rule::D2, &unit.path) {
        d2_clocks_randomness(unit, cfg, usage, out);
    }
    if cfg.in_scope(Rule::D3, &unit.path) {
        d3_channel_registry(unit, cfg, usage, out);
    }
    if cfg.in_scope(Rule::D4, &unit.path) {
        d4_guard_across_blocking(unit, cfg, usage, out);
    }
    if cfg.in_scope(Rule::D5, &unit.path) {
        d5_relaxed_ordering(unit, cfg, usage, out);
    }
    if cfg.in_scope(Rule::D6, &unit.path) {
        d6_unwrap_expect(unit, cfg, usage, out);
    }
}

/// Does an allow-list entry cover (rule, unit, ctx of token `i`)?
fn allowed(unit: &Unit, cfg: &Config, usage: &mut Usage, rule: Rule, i: usize) -> bool {
    let ctx = unit.ctx(i);
    let mut hit = false;
    for (idx, a) in cfg.allows.iter().enumerate() {
        if a.rule == rule
            && a.path == unit.path
            && (a.item == "<file>" || ctx.chain.contains(&a.item))
        {
            usage.allow_used[idx] = true;
            hit = true;
            // Keep scanning: several entries may cover the same site and
            // all of them should count as used.
        }
    }
    hit
}

fn violation(unit: &Unit, rule: Rule, i: usize, message: String) -> Violation {
    Violation {
        rule,
        path: unit.path.clone(),
        line: unit.toks[i].line,
        item: unit.ctx(i).item().to_string(),
        message,
    }
}

/// D1: `std::collections::HashMap`/`HashSet` anywhere in protocol code.
/// Iteration order of the std maps is seeded per-process; any map whose
/// contents reach a transcript, a message, or an answer must be the
/// deterministic `dtrack_hash::FxHashMap`/`FxHashSet`.
fn d1_std_hash(unit: &Unit, cfg: &Config, usage: &mut Usage, out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < unit.toks.len() {
        if unit.ident(i) == "std"
            && unit.colons(i + 1)
            && unit.ident(i + 3) == "collections"
            && unit.colons(i + 4)
        {
            // `std::collections::HashMap` directly, or the brace-group
            // import form `std::collections::{HashMap, ...}`.
            let mut flagged: Vec<usize> = Vec::new();
            let next = i + 6;
            match unit.ident(next) {
                "HashMap" | "HashSet" => flagged.push(next),
                _ if unit.open(next, '{') => {
                    let close = unit.matched[next];
                    for j in next + 1..close {
                        if matches!(unit.ident(j), "HashMap" | "HashSet") {
                            flagged.push(j);
                        }
                    }
                }
                _ => {}
            }
            for j in flagged {
                if unit.ctx(j).test || allowed(unit, cfg, usage, Rule::D1, j) {
                    continue;
                }
                out.push(violation(
                    unit,
                    Rule::D1,
                    j,
                    format!(
                        "std::collections::{} has nondeterministic iteration order; use \
                         dtrack_hash::Fx{} (or allow-list with a written reason why order is \
                         never observed)",
                        unit.ident(j),
                        unit.ident(j)
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// D2: wall clocks and ambient randomness. A transcript must be a pure
/// function of (scenario, seed); `Instant::now`, `SystemTime`, and
/// entropy-seeded RNGs smuggle the host into it. Deadline/measurement
/// code is allow-listed per function.
fn d2_clocks_randomness(unit: &Unit, cfg: &Config, usage: &mut Usage, out: &mut Vec<Violation>) {
    for i in 0..unit.toks.len() {
        if unit.ctx(i).test {
            continue;
        }
        let id = unit.ident(i);
        let hit: Option<String> = match id {
            "Instant" if unit.colons(i + 1) && unit.ident(i + 3) == "now" => {
                Some("Instant::now()".into())
            }
            "SystemTime" if !unit.toks[i].in_use => Some("SystemTime".into()),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => Some(id.to_string()),
            "random"
                if unit.ident(i.wrapping_sub(3)) == "rand" && unit.colons(i.wrapping_sub(2)) =>
            {
                Some("rand::random()".into())
            }
            _ => None,
        };
        if let Some(what) = hit {
            if allowed(unit, cfg, usage, Rule::D2, i) {
                continue;
            }
            out.push(violation(
                unit,
                Rule::D2,
                i,
                format!(
                    "{} breaks seed purity — transcripts must be a function of (scenario, seed); \
                     allow-list only genuine timing modules (deadlines, measurement)",
                    what
                ),
            ));
        }
    }
}

const CHANNEL_CTORS: [&str; 5] = [
    "unbounded",
    "bounded",
    "channel",
    "sync_channel",
    "unbounded_channel",
];

/// Index just past an optional turbofish (`::<...>`) following the ident
/// at `i` — i.e. where a call's `(` would sit. Returns `i + 1` when no
/// turbofish is present.
fn past_turbofish(unit: &Unit, i: usize) -> usize {
    if !(unit.colons(i + 1) && unit.punct(i + 3) == '<') {
        return i + 1;
    }
    let mut depth = 1usize;
    let mut j = i + 4;
    while j < unit.toks.len() && depth > 0 {
        match unit.toks[j].kind {
            Kind::Open => j = unit.matched[j],
            Kind::Punct if unit.toks[j].ch == '<' => depth += 1,
            // `->` in a fn-pointer type arg must not close the turbofish.
            Kind::Punct if unit.toks[j].ch == '>' && unit.punct(j - 1) != '-' => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Is token `i` the start of a `VecDeque::new(` / `VecDeque::<T>::new(`
/// / `VecDeque::with_capacity(` construction?
fn deque_ctor(unit: &Unit, i: usize) -> bool {
    if unit.ident(i) != "VecDeque" {
        return false;
    }
    let after = past_turbofish(unit, i);
    let method = if after == i + 1 {
        if !unit.colons(i + 1) {
            return false;
        }
        i + 3
    } else {
        if !unit.colons(after) {
            return false;
        }
        after + 2
    };
    matches!(unit.ident(method), "new" | "with_capacity")
        && unit.open(past_turbofish(unit, method), '(')
}

/// D3 (registry half): every channel *and queue* construction must match
/// a `[[channel]]` entry — same file, an enclosing fn listed in `fns`,
/// and matching declared boundedness. For channel constructors the
/// boundedness is forced by the constructor called; for lock-based
/// `VecDeque` queues it is a written claim about the surrounding condvar
/// protocol (either value accepted, the reason documents it). The
/// wait-for-graph half lives in `graph.rs`.
fn d3_channel_registry(unit: &Unit, cfg: &Config, usage: &mut Usage, out: &mut Vec<Violation>) {
    for i in 0..unit.toks.len() {
        let id = unit.ident(i);
        // `kind` is the forced boundedness, or None when the entry may
        // declare either (lock-based deques).
        let kind: Option<&str> = if CHANNEL_CTORS.contains(&id)
            && unit.open(past_turbofish(unit, i), '(')
            // Skip definitions (`fn unbounded(...)`) — only calls count.
            && unit.ident(i.wrapping_sub(1)) != "fn"
        {
            Some(match id {
                "bounded" | "sync_channel" => "bounded",
                // `channel` is overloaded across ecosystems: std's
                // `channel()` takes no arguments and is unbounded, while
                // the tokio-style `channel(cap)` takes a capacity and is
                // bounded. Call-site arity decides.
                "channel" => {
                    let open = past_turbofish(unit, i);
                    if unit.matched[open] > open + 1 {
                        "bounded"
                    } else {
                        "unbounded"
                    }
                }
                _ => "unbounded",
            })
        } else if deque_ctor(unit, i) {
            None
        } else {
            continue;
        };
        let t = &unit.toks[i];
        if t.in_use || unit.ctx(i).test {
            continue;
        }
        let ctx = unit.ctx(i);
        let mut matched = false;
        for (idx, c) in cfg.channels.iter().enumerate() {
            if c.path == unit.path
                && kind.is_none_or(|k| k == c.construct)
                && c.fns
                    .iter()
                    .any(|f| f == "<file>" || ctx.chain.iter().any(|e| e == f))
            {
                usage.channel_used[idx] = true;
                matched = true;
            }
        }
        if !matched {
            let what = match kind {
                Some(k) => format!("a {} channel", k),
                None => "a lock-based queue".to_string(),
            };
            out.push(violation(
                unit,
                Rule::D3,
                i,
                format!(
                    "`{}(` constructs {} outside the registry — declare it as a [[channel]] \
                     entry in lint.toml (path, fns, endpoints, boundedness, reason) so the \
                     wait-for-graph check sees it",
                    id, what
                ),
            ));
        }
    }
}

const BLOCKING_CALLS: [&str; 5] = ["send", "recv", "recv_timeout", "wait", "wait_timeout"];

/// D4: no lock guard live across a blocking `.send(`/`.recv(`/`.wait(`.
/// A blocked holder wedges every other thread that needs the lock —
/// `settle()`'s termination argument assumes workers park only on their
/// own condvars, never while holding shared state.
///
/// Guard detection is lexical: `let [mut] NAME = <expr containing
/// .lock*(>;` starts liveness, `drop(NAME)` or the end of the enclosing
/// brace block ends it. Condvar handoff (`cv.wait(NAME)` /
/// `cv.wait_timeout(NAME, ..)`) is exempt — the wait atomically releases
/// that guard. `if let`/`while let` scrutinee temporaries are out of
/// lexical reach and stay a code-review concern (documented in
/// DESIGN.md).
fn d4_guard_across_blocking(
    unit: &Unit,
    cfg: &Config,
    usage: &mut Usage,
    out: &mut Vec<Violation>,
) {
    let toks = &unit.toks;
    let mut i = 0;
    while i < toks.len() {
        if unit.ident(i) != "let" || unit.ctx(i).test {
            i += 1;
            continue;
        }
        // Simple binding only: `let NAME =` / `let mut NAME =`.
        let name_idx = if unit.ident(i + 1) == "mut" {
            i + 2
        } else {
            i + 1
        };
        let name = unit.ident(name_idx).to_string();
        if name.is_empty() || unit.punct(name_idx + 1) != '=' {
            i += 1;
            continue;
        }
        // Statement end: next `;` at this nesting level (skip groups).
        let mut j = name_idx + 2;
        let mut stmt_end = None;
        while j < toks.len() {
            match toks[j].kind {
                Kind::Open => j = unit.matched[j],
                Kind::Close => break, // malformed / end of block
                Kind::Punct if toks[j].ch == ';' => {
                    stmt_end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(stmt_end) = stmt_end else {
            i += 1;
            continue;
        };
        // Does the initializer take a lock? `.lock()` or any `.lock_*()`
        // helper that returns a guard by convention. A nested brace block
        // scopes its own guards (`let v = { let g = m.lock(); *g };`
        // binds a plain value), so brace groups are skipped here — their
        // inner `let`s are scanned by the outer loop in their own right.
        let mut takes_lock = false;
        let mut k = name_idx + 2;
        while k < stmt_end {
            if unit.open(k, '{') {
                k = unit.matched[k];
                continue;
            }
            if unit.punct(k) == '.'
                && unit.ident(k + 1).starts_with("lock")
                && unit.open(k + 2, '(')
            {
                takes_lock = true;
                break;
            }
            k += 1;
        }
        if !takes_lock {
            i += 1;
            continue;
        }
        // Liveness range: statement end to the close of the enclosing
        // brace block.
        let block_close = enclosing_brace_close(unit, i);
        let mut k = stmt_end + 1;
        while k < block_close {
            // `drop(NAME)` ends liveness.
            if unit.ident(k) == "drop"
                && unit.open(k + 1, '(')
                && unit.ident(k + 2) == name
                && unit.matched[k + 1] == k + 3
            {
                break;
            }
            if unit.punct(k) == '.'
                && BLOCKING_CALLS.contains(&unit.ident(k + 1))
                && unit.open(k + 2, '(')
            {
                let callee = unit.ident(k + 1).to_string();
                // Condvar handoff: wait(NAME, ...) consumes the guard.
                let handoff = callee.starts_with("wait") && unit.ident(k + 3) == name;
                if !handoff && !allowed(unit, cfg, usage, Rule::D4, k) {
                    out.push(violation(
                        unit,
                        Rule::D4,
                        k + 1,
                        format!(
                            "`.{}(` while lock guard `{}` (taken on line {}) is live — a blocked \
                             holder wedges everyone else needing the lock; drop the guard first \
                             or collect-then-send outside the critical section",
                            callee, name, toks[i].line
                        ),
                    ));
                }
            }
            k += 1;
        }
        i += 1;
    }
}

/// Index of the `Close` of the innermost brace group containing `i`
/// (or `toks.len()` at file level).
fn enclosing_brace_close(unit: &Unit, i: usize) -> usize {
    // Walk outward: scan forward counting depth; the first unmatched
    // Close brace is the enclosing block's end.
    let mut depth = 0usize;
    let mut j = i;
    while j < unit.toks.len() {
        match unit.toks[j].kind {
            Kind::Open => depth += 1,
            Kind::Close => {
                if depth == 0 {
                    if unit.toks[j].ch == '}' {
                        return j;
                    }
                    // Inside a paren/bracket group: its close bounds us.
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    unit.toks.len()
}

/// D5: `Ordering::Relaxed` only on registered hint counters. Relaxed
/// reads/writes are fine for monotone metering hints (`words_hint`,
/// `backlog_hint` family) whose consumers tolerate arbitrary staleness,
/// and wrong for anything that orders memory — every site must carry a
/// written justification.
fn d5_relaxed_ordering(unit: &Unit, cfg: &Config, usage: &mut Usage, out: &mut Vec<Violation>) {
    for i in 0..unit.toks.len() {
        if unit.ident(i) == "Ordering"
            && unit.colons(i + 1)
            && unit.ident(i + 3) == "Relaxed"
            && !unit.ctx(i).test
            && !allowed(unit, cfg, usage, Rule::D5, i)
        {
            out.push(violation(
                unit,
                Rule::D5,
                i,
                "Ordering::Relaxed outside the registered hint-counter allow-list — if this \
                 atomic is a pure monotone hint, register it in lint.toml with the staleness \
                 argument; anything that orders memory needs Acquire/Release or SeqCst"
                    .to_string(),
            ));
        }
    }
}

/// D6: no `.unwrap()` / `.expect(` in the sim runtimes. A panic inside a
/// worker is *load-bearing*: the claim boundary catches it and converts
/// it to per-site death containment. An accidental unwrap panicking on a
/// programming error masquerades as a contained site failure and
/// corrupts the fault-injection semantics — runtime errors must surface
/// as `SimError` instead.
fn d6_unwrap_expect(unit: &Unit, cfg: &Config, usage: &mut Usage, out: &mut Vec<Violation>) {
    for i in 0..unit.toks.len() {
        if unit.punct(i) != '.' {
            continue;
        }
        let callee = unit.ident(i + 1);
        let is_unwrap = callee == "unwrap" && unit.open(i + 2, '(') && unit.matched[i + 2] == i + 3;
        let is_expect = callee == "expect" && unit.open(i + 2, '(');
        if !(is_unwrap || is_expect) {
            continue;
        }
        if unit.ctx(i).test || allowed(unit, cfg, usage, Rule::D6, i + 1) {
            continue;
        }
        out.push(violation(
            unit,
            Rule::D6,
            i + 1,
            format!(
                "`.{}(` in runtime code — a panic here masquerades as per-site death \
                 containment; surface the failure as SimError (or allow-list with the argument \
                 why this panic is genuinely unreachable)",
                callee
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        let cfg = Config::with_default_paths();
        let mut usage = Usage::for_config(&cfg);
        let unit = Unit::parse(path.into(), src, false).unwrap();
        let mut out = Vec::new();
        run_rules(&unit, &cfg, &mut usage, &mut out);
        out
    }

    #[test]
    fn d1_fires_on_std_maps_not_tests() {
        let v = check(
            "crates/sketch/src/lib.rs",
            "use std::collections::HashMap;\nfn f() { let m: std::collections::HashSet<u64> = Default::default(); }\n#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D1).count(), 2);
    }

    #[test]
    fn d2_fires_on_clocks() {
        let v = check(
            "crates/sim/src/x.rs",
            "fn f() { let t = Instant::now(); let r = rand::random::<u64>(); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D2).count(), 2);
    }

    #[test]
    fn d3_fires_on_unregistered_channel() {
        let v = check(
            "crates/sim/src/x.rs",
            "use crossbeam::channel::unbounded;\nfn f() { let (tx, rx) = unbounded(); }\n",
        );
        // The import is exempt; the call fires.
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D3).count(), 1);
    }

    #[test]
    fn d3_sees_through_turbofish() {
        let v = check(
            "crates/sim/src/x.rs",
            "fn f(cap: usize) { let (tx, rx) = bounded::<Cmd<S>>(cap); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D3).count(), 1);
        assert!(v[0].message.contains("bounded channel"));
    }

    #[test]
    fn d3_disambiguates_channel_by_arity() {
        // tokio-style `channel(cap)` is bounded…
        let v = check(
            "crates/sim/src/x.rs",
            "fn f(cap: usize) { let (tx, rx) = mpsc::channel::<Cmd>(cap); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D3).count(), 1);
        assert!(v[0].message.contains("bounded channel"), "{}", v[0].message);
        // …std-style `channel()` is unbounded.
        let v = check(
            "crates/sim/src/x.rs",
            "fn f() { let (tx, rx) = std::sync::mpsc::channel(); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D3).count(), 1);
        assert!(
            v[0].message.contains("unbounded channel"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn d3_recognizes_tokio_unbounded_channel() {
        let v = check(
            "crates/sim/src/x.rs",
            "fn f() { let (tx, rx) = mpsc::unbounded_channel::<Cmd>(); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D3).count(), 1);
        assert!(
            v[0].message.contains("unbounded channel"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn d4_guard_across_send_and_condvar_exemption() {
        let bad = check(
            "crates/sim/src/x.rs",
            "fn f() { let g = m.lock().unwrap_or_else(|e| e.into_inner()); tx.send(1); }\n",
        );
        assert_eq!(bad.iter().filter(|v| v.rule == Rule::D4).count(), 1);
        let ok = check(
            "crates/sim/src/x.rs",
            "fn f() { let g = m.lock().unwrap_or_else(|e| e.into_inner()); let g = cv.wait(g); drop(g); tx.send(1); }\n",
        );
        assert_eq!(ok.iter().filter(|v| v.rule == Rule::D4).count(), 0);
    }

    #[test]
    fn d4_drop_ends_liveness() {
        let v = check(
            "crates/sim/src/x.rs",
            "fn f() { let q = m.lock_queue(0); drop(q); tx.send(1); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D4).count(), 0);
    }

    #[test]
    fn d5_fires_on_unregistered_relaxed() {
        let v = check(
            "crates/sim/src/x.rs",
            "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D5).count(), 1);
    }

    #[test]
    fn d6_fires_on_unwrap_not_unwrap_or_else() {
        let v = check(
            "crates/sim/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"boom\"); c.unwrap_or_else(|e| e.into_inner()); d.unwrap_or(0); }\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == Rule::D6).count(), 2);
    }

    #[test]
    fn allow_list_exempts_and_is_marked_used() {
        let mut cfg = Config::with_default_paths();
        cfg.allows.push(crate::config::Allow {
            rule: Rule::D5,
            path: "crates/sim/src/x.rs".into(),
            item: "hint".into(),
            reason: "monotone hint counter".into(),
        });
        let mut usage = Usage::for_config(&cfg);
        let unit = Unit::parse(
            "crates/sim/src/x.rs".into(),
            "fn hint() { c.load(Ordering::Relaxed); }\n",
            false,
        )
        .unwrap();
        let mut out = Vec::new();
        run_rules(&unit, &cfg, &mut usage, &mut out);
        assert!(out.is_empty(), "{:?}", out);
        assert!(usage.allow_used[0]);
    }
}
