// D5 ok: the same relaxed ring cursor, registered in this fixture's
// lint.toml.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Ring {
    cursor: AtomicU64,
}

impl Ring {
    pub fn record(&self) -> u64 {
        self.cursor.fetch_add(1, Ordering::Relaxed)
    }
}
