// D3 bad: channel construction with no [[channel]] registry entry.
use crossbeam::channel::unbounded;

pub fn spawn() -> usize {
    let (tx, rx) = unbounded();
    tx.send(1u64).ok();
    rx.len()
}
