// D5 ok: the same relaxed access, registered as a hint counter in this
// fixture's lint.toml.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn words_hint(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}
