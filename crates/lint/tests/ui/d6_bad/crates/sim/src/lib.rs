// D6 bad: unwrap/expect in runtime code, where a panic masquerades as
// per-site death containment.
pub fn read(x: Option<u64>, y: Option<u64>) -> u64 {
    x.unwrap() + y.expect("y must be set")
}
