// D2 bad: wall clock and ambient randomness in protocol code.
use std::time::Instant;

pub fn tick() -> u128 {
    Instant::now().elapsed().as_nanos()
}

pub fn roll() -> u64 {
    rand::random::<u64>()
}
