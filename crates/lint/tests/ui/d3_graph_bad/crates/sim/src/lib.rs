// D3 graph bad: both constructions are registered, but the registry's
// bounded edges form a wait-for cycle (see this fixture's lint.toml).
use crossbeam::channel::bounded;

pub fn spawn() -> usize {
    let (atx, arx) = bounded::<u64>(1);
    let (btx, brx) = bounded::<u64>(1);
    atx.send(1).ok();
    btx.send(1).ok();
    arx.len() + brx.len()
}
