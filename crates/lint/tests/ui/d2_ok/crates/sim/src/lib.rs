// D2 ok: the clock read lives in an allow-listed timing function (see
// this fixture's lint.toml).
use std::time::Instant;

pub fn deadline_poll() -> u128 {
    Instant::now().elapsed().as_nanos()
}
