// D1 ok: deterministic FxHashMap in production code; std maps are fine
// inside test-only code.
use dtrack_hash::FxHashMap;

pub fn count(xs: &[u64]) -> FxHashMap<u64, u64> {
    let mut m = FxHashMap::default();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_map_is_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u64, 1u64);
        assert_eq!(m.len(), 1);
    }
}
