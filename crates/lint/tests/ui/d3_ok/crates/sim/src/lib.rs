// D3 ok: the same construction, declared in this fixture's lint.toml.
use crossbeam::channel::unbounded;

pub fn spawn() -> usize {
    let (tx, rx) = unbounded();
    tx.send(1u64).ok();
    rx.len()
}
