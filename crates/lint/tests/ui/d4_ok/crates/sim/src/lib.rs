// D4 ok: copy out under the lock and send outside; condvar `wait(g)`
// hand-off and explicit `drop(g)` both end guard liveness.
use std::sync::{Condvar, Mutex};

pub fn forward(m: &Mutex<u64>, tx: &crossbeam::channel::Sender<u64>) {
    let v = {
        let g = m.lock().unwrap_or_else(|e| e.into_inner());
        *g
    };
    tx.send(v).ok();
}

pub fn wait_drain(m: &Mutex<u64>, cv: &Condvar, tx: &crossbeam::channel::Sender<u64>) {
    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
    while *g > 0 {
        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    drop(g);
    tx.send(0).ok();
}
