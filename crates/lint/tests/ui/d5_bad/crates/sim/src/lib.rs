// D5 bad: Ordering::Relaxed with no registered hint-counter entry.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
