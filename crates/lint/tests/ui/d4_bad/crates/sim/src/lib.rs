// D4 bad: a lock guard held across a blocking `.send(`.
use std::sync::Mutex;

pub fn forward(m: &Mutex<u64>, tx: &crossbeam::channel::Sender<u64>) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    tx.send(*g).ok();
}
