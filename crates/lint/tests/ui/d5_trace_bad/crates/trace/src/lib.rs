// D5 bad: a trace ring's relaxed write cursor with no registered entry.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Ring {
    cursor: AtomicU64,
}

impl Ring {
    pub fn record(&self) -> u64 {
        self.cursor.fetch_add(1, Ordering::Relaxed)
    }
}
