// D1 bad: std hash collections in protocol code, both as an import and
// as a fully-qualified type.
use std::collections::HashMap;

pub fn count(xs: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn distinct(xs: &[u64]) -> usize {
    let mut s = std::collections::HashSet::new();
    for &x in xs {
        s.insert(x);
    }
    s.len()
}
