// Clean code — the failure in this fixture comes from lint.toml: an
// [[allow]] entry and a [[channel]] entry that match nothing are stale
// and must fail the run loudly.
pub fn quiet() -> u64 {
    7
}
