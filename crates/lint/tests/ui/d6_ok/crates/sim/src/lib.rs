// D6 ok: runtime code degrades instead of panicking; unwrap is fine in
// test-only code.
pub fn read(x: Option<u64>, y: Option<u64>) -> u64 {
    x.unwrap_or(0) + y.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(Some(3u64).unwrap(), 3);
    }
}
