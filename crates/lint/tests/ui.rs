//! ui-style self-tests: every rule has a tripping fixture and a passing
//! twin under `tests/ui/`, each a mini workspace root run through the
//! real engine (and, for exit codes, the real binary). The fixtures are
//! what pin the linter's behaviour — the workspace itself is clean, so
//! without them a regression that silently stopped a rule from firing
//! would go unnoticed.

use std::path::PathBuf;
use std::process::Command;

use dtrack_lint::config::Rule;
use dtrack_lint::report::Report;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("ui")
        .join(name)
}

fn run_fixture(name: &str) -> Report {
    let root = fixture_root(name);
    assert!(root.is_dir(), "missing fixture {}", root.display());
    dtrack_lint::run(&root)
}

/// The bad fixture trips `rule` (and the run is dirty); the ok twin is
/// fully clean.
fn assert_twin(rule: Rule, bad: &str, ok: &str) {
    let bad_report = run_fixture(bad);
    assert!(
        bad_report.violations.iter().any(|v| v.rule == rule),
        "{}: expected a {} violation, got:\n{}",
        bad,
        rule,
        bad_report.render()
    );
    let ok_report = run_fixture(ok);
    assert!(
        ok_report.is_clean(),
        "{}: expected clean, got:\n{}",
        ok,
        ok_report.render()
    );
}

#[test]
fn d1_std_hash_fixtures() {
    assert_twin(Rule::D1, "d1_bad", "d1_ok");
    // Both the import and the fully-qualified use fire.
    assert!(run_fixture("d1_bad").violations.len() >= 2);
}

#[test]
fn d2_clock_fixtures() {
    assert_twin(Rule::D2, "d2_bad", "d2_ok");
    // The clock and the ambient randomness both fire.
    assert!(run_fixture("d2_bad").violations.len() >= 2);
}

#[test]
fn d3_registry_fixtures() {
    assert_twin(Rule::D3, "d3_bad", "d3_ok");
}

#[test]
fn d3_graph_cycle_fixture() {
    let report = run_fixture("d3_graph_bad");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == Rule::D3 && v.message.contains("form a cycle")),
        "expected a bounded-cycle violation, got:\n{}",
        report.render()
    );
}

#[test]
fn d4_guard_fixtures() {
    assert_twin(Rule::D4, "d4_bad", "d4_ok");
}

#[test]
fn d5_relaxed_fixtures() {
    assert_twin(Rule::D5, "d5_bad", "d5_ok");
}

/// The trace-crate variant: D5's scope is widened to `crates/trace` (as
/// in the workspace lint.toml), so an unregistered event-ring cursor
/// trips, and registering it with a reason clears it.
#[test]
fn d5_trace_cursor_fixtures() {
    assert_twin(Rule::D5, "d5_trace_bad", "d5_trace_ok");
}

#[test]
fn d6_unwrap_fixtures() {
    assert_twin(Rule::D6, "d6_bad", "d6_ok");
    // unwrap and expect both fire.
    assert!(run_fixture("d6_bad").violations.len() >= 2);
}

/// A lint.toml entry whose code is gone must fail the run loudly, for
/// both [[allow]] and [[channel]] entries.
#[test]
fn stale_entries_fail_loudly() {
    let report = run_fixture("stale_bad");
    assert!(!report.is_clean());
    assert!(
        report.errors.iter().any(|e| e.contains("stale [[allow]]")),
        "missing stale-allow error:\n{}",
        report.render()
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("stale [[channel]]")),
        "missing stale-channel error:\n{}",
        report.render()
    );
}

/// The installed binary exits 0 on clean roots and nonzero on every
/// tripping fixture — this is the contract CI's lint job relies on.
#[test]
fn binary_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_dtrack-lint");
    for bad in [
        "d1_bad",
        "d2_bad",
        "d3_bad",
        "d3_graph_bad",
        "d4_bad",
        "d5_bad",
        "d5_trace_bad",
        "d6_bad",
        "stale_bad",
    ] {
        let out = Command::new(bin)
            .arg("--root")
            .arg(fixture_root(bad))
            .output()
            .expect("run dtrack-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{}: expected exit 1, stdout:\n{}",
            bad,
            String::from_utf8_lossy(&out.stdout)
        );
    }
    for ok in [
        "d1_ok",
        "d2_ok",
        "d3_ok",
        "d4_ok",
        "d5_ok",
        "d5_trace_ok",
        "d6_ok",
    ] {
        let out = Command::new(bin)
            .arg("--root")
            .arg(fixture_root(ok))
            .output()
            .expect("run dtrack-lint");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}: expected exit 0, stdout:\n{}",
            ok,
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
