//! The workspace gate: `cargo test` fails if any DESIGN.md invariant
//! (rules D1–D6) regresses anywhere in the workspace, or if `lint.toml`
//! carries a stale exemption. Same engine and config as
//! `cargo run -p dtrack-lint`; this test just wires it into tier-1.

use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = dtrack_lint::run(&root);
    assert!(
        report.files > 0,
        "lint walked no files — workspace root misdetected at {}",
        root.display()
    );
    assert!(
        report.is_clean(),
        "dtrack-lint found violations; fix them or add a justified lint.toml entry:\n{}",
        report.render()
    );
}
