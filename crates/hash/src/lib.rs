//! # dtrack-hash — deterministic fast hashing for the ingest hot path
//!
//! Every metered arrival touches several hash maps (site frequency stores,
//! the heavy-hitter coordinator's counts, sketch position indices, the
//! oracle's frequency table). `std`'s default SipHash-1-3 is a DoS-hardened
//! keyed hash: great for servers parsing untrusted input, needlessly slow
//! for a simulator hashing its own `u64` item ids — and, because
//! `RandomState` re-seeds per map, it makes iteration order differ from run
//! to run, which differential tests must then paper over.
//!
//! [`FxHasher`] is the FiraFox/rustc "Fx" multiply-xor hash: one wrapping
//! multiply per 8-byte word, no key material, identical across runs and
//! platforms of equal pointer width. The protocols never rely on map
//! iteration order for their *answers* (sorted outputs are part of the API
//! contract, locked by property tests), so the only observable effect of
//! the swap is speed.
//!
//! Use the aliases:
//!
//! ```
//! use dtrack_hash::FxHashMap;
//! let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
//! *counts.entry(42).or_insert(0) += 1;
//! assert_eq!(counts[&42], 1);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// Seed/multiplier from the 64-bit Fx hash (splitmix64's golden-ratio
/// constant), as used by rustc's `FxHasher`.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher: `state = (state rotl 5 ^ word) * K` per
/// 8-byte word. Deterministic (no per-instance key), extremely cheap for
/// the small fixed-width keys (`u64` items, `u32` node ids) that dominate
/// this workspace's maps.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path for composite/byte-string keys: fold whole words,
        // then the ragged tail. Hot-path keys (`u64`, `u32`) never reach
        // this — they use the fixed-width fast paths below.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; `Default` everywhere, no seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// One-shot hash of a `u64` key (for direct table/bucket schemes that
/// bypass `HashMap` entirely).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        for x in [0u64, 1, 42, u64::MAX, 0x9E37_79B9] {
            assert_eq!(hash_of(&x), hash_of(&x));
            assert_eq!(hash_u64(x), hash_u64(x));
        }
        // Two separately-built maps iterate identically (no per-map seed).
        let build = |vals: &[u64]| -> Vec<u64> {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &v in vals {
                m.insert(v, v);
            }
            m.keys().copied().collect()
        };
        let vals: Vec<u64> = (0..500).map(|i| i * 7919).collect();
        assert_eq!(build(&vals), build(&vals));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..100_000u64 {
            seen.insert(hash_u64(x));
        }
        // Sequential keys must spread: all distinct for this range.
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap uses the high bits for bucket selection via multiply;
        // still, check the full hash isn't degenerate on small deltas.
        let a = hash_u64(1);
        let b = hash_u64(2);
        assert_ne!(a, b);
        assert!(
            (a ^ b).count_ones() > 8,
            "neighboring keys differ in too few bits"
        );
    }

    #[test]
    fn byte_string_tail_disambiguated() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&"ab"), hash_of(&"abc"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
    }
}
