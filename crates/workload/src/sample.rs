//! O(1) discrete sampling primitives for the workload generators.
//!
//! Two table samplers with different contracts (see DESIGN.md §"Sampling
//! discrete distributions in O(1)"):
//!
//! * [`IndexedCdf`] — a guide-table-accelerated inverse CDF (Chen & Asau).
//!   For any draw `u` it returns **exactly** the index that
//!   `cdf.partition_point(|&c| c < u)` would, so swapping it under an
//!   existing seeded generator leaves every historical stream byte-for-byte
//!   intact, while the expected probe count drops from Θ(log n) scattered
//!   binary-search reads to ~2 adjacent ones.
//! * [`AliasTable`] — Vose's alias method. True worst-case O(1) (one table
//!   row per draw), but it maps the unit interval to outcomes differently
//!   than the inverse CDF, so the same RNG stream produces a *different*
//!   (equally distributed) item sequence. Use it for workloads without a
//!   replay-compatibility constraint.

/// A cumulative distribution with a guide table for O(1)-expected inverse
/// lookups that are bit-identical to binary search.
///
/// `cdf` must be non-decreasing with a last element ≥ any queried `u`
/// (generators normalize so the last element is exactly 1.0).
#[derive(Debug, Clone)]
pub struct IndexedCdf {
    cdf: Vec<f64>,
    /// `guide[j]` = first index i with `cdf[i] >= j / guide.len()`; a lower
    /// bound for the answer of any `u` in bucket j, so the linear scan
    /// below never starts past its target.
    guide: Vec<u32>,
}

impl IndexedCdf {
    /// Index a finished CDF. O(n) build, one `u32` per entry.
    ///
    /// # Panics
    /// Panics if `cdf` is empty or longer than `u32::MAX` entries.
    pub fn new(cdf: Vec<f64>) -> Self {
        assert!(!cdf.is_empty(), "empty cdf");
        assert!(u32::try_from(cdf.len()).is_ok(), "cdf too long");
        let buckets = cdf.len();
        let mut guide = vec![0u32; buckets];
        let mut i = 0usize;
        for (j, g) in guide.iter_mut().enumerate() {
            let lo = j as f64 / buckets as f64;
            while i < cdf.len() && cdf[i] < lo {
                i += 1;
            }
            *g = i.min(cdf.len() - 1) as u32;
        }
        IndexedCdf { cdf, guide }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table has no outcomes (never: `new` rejects empty).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The index `cdf.partition_point(|&c| c < u)` would return, in O(1)
    /// expected probes (clamped to the last index for `u` beyond the CDF's
    /// top, which seeded `[0,1)` draws never produce).
    #[inline]
    pub fn lookup(&self, u: f64) -> usize {
        // Bucket by truncation; `u` in [0,1) keeps this in range, but clamp
        // anyway so a stray u >= 1.0 cannot index out of bounds.
        let j = ((u * self.guide.len() as f64) as usize).min(self.guide.len() - 1);
        let mut i = self.guide[j] as usize;
        while self.cdf[i] < u {
            i += 1;
            if i == self.cdf.len() {
                return self.cdf.len() - 1;
            }
        }
        // For non-power-of-two lengths, `u * len` can round so that
        // truncation lands one bucket high (u just below j/len with
        // trunc(u*len) == j), starting the scan past the answer; step back
        // to the *first* index with cdf[i] >= u. Almost always 0 steps.
        while i > 0 && self.cdf[i - 1] >= u {
            i -= 1;
        }
        i
    }
}

/// Vose's alias method: worst-case O(1) sampling from a fixed discrete
/// distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Per-column acceptance threshold, pre-scaled to [0, 1).
    prob: Vec<f64>,
    /// Alternative outcome when the column's own outcome is rejected.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (unnormalized) non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, longer than `u32::MAX` entries, or has
    /// a non-finite / negative / all-zero total.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight table");
        assert!(
            u32::try_from(weights.len()).is_ok(),
            "weight table too long"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with a positive finite sum"
        );
        let n = weights.len();
        // Scale so the average weight is exactly 1 column.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (floating-point slack) keep prob = 1.0: self-aliased.
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never: `new` rejects empty).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sample an outcome index from one uniform draw in `[0, 1)`: the
    /// integer part picks the column, the fractional part runs the
    /// accept/alias test. Exactly one table row is touched.
    #[inline]
    pub fn sample(&self, u: f64) -> usize {
        let scaled = u * self.len() as f64;
        let col = (scaled as usize).min(self.len() - 1);
        let frac = scaled - col as f64;
        if frac < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(n);
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        cdf
    }

    #[test]
    fn indexed_cdf_matches_partition_point_exactly() {
        for &(n, s) in &[(1usize, 1.0), (7, 0.5), (1000, 1.2), (50_000, 2.0)] {
            let cdf = zipf_cdf(n, s);
            let idx = IndexedCdf::new(cdf.clone());
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..20_000 {
                let u: f64 = rng.gen();
                assert_eq!(
                    idx.lookup(u),
                    cdf.partition_point(|&c| c < u),
                    "n={n} s={s} u={u}"
                );
            }
            // Boundary probes: exactly-on-a-cdf-value and the extremes.
            for &u in cdf.iter().take(200) {
                assert_eq!(idx.lookup(u), cdf.partition_point(|&c| c < u));
            }
            assert_eq!(idx.lookup(0.0), cdf.partition_point(|&c| c < 0.0));
        }
    }

    #[test]
    fn indexed_cdf_survives_bucket_truncation_rounding() {
        // Regression: with a non-power-of-two length, u = nextafter(j/n, -inf)
        // can truncate into bucket j (trunc(u*n) == j although u < j/n), so
        // the scan would start one entry past the answer without the
        // backward correction. Construct that exact situation: cdf[8] is
        // the double just below 0.9 and u probes it directly.
        let below = |x: f64| f64::from_bits(x.to_bits() - 1);
        let mut cdf: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        cdf[8] = below(0.9);
        cdf.push(1.0);
        let idx = IndexedCdf::new(cdf.clone());
        for &u in cdf
            .iter()
            .chain([below(0.3), 0.9, below(below(0.9))].iter())
        {
            assert_eq!(
                idx.lookup(u),
                cdf.partition_point(|&c| c < u),
                "u = {u:?} ({:#x})",
                u.to_bits()
            );
        }
    }

    #[test]
    fn indexed_cdf_clamps_out_of_range_u() {
        let idx = IndexedCdf::new(zipf_cdf(100, 1.1));
        assert_eq!(idx.lookup(1.0), 99);
        assert_eq!(idx.lookup(2.0), 99);
    }

    #[test]
    fn alias_table_matches_distribution() {
        let weights = [5.0, 1.0, 0.0, 3.0, 1.0];
        let table = AliasTable::new(&weights);
        let total: f64 = weights.iter().sum();
        let mut counts = [0u64; 5];
        let mut rng = StdRng::seed_from_u64(4);
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(rng.gen())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "outcome {i}: got {got}, expected {expect}"
            );
        }
        assert_eq!(counts[2], 0, "zero-weight outcome must never appear");
    }

    #[test]
    fn alias_table_is_deterministic_and_total() {
        let table = AliasTable::new(
            &zipf_cdf(1000, 1.3)
                .windows(2)
                .map(|w| w[1] - w[0])
                .collect::<Vec<_>>(),
        );
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let s = table.sample(a.gen());
            assert_eq!(s, table.sample(b.gen()));
            assert!(s < table.len());
        }
    }

    #[test]
    #[should_panic(expected = "empty weight table")]
    fn alias_rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn alias_rejects_zero_total() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
