//! Site-assignment policies: which of the k sites observes each item.
//!
//! The paper's model lets an adversary choose both values and sites; cost
//! bounds must hold for any assignment. Round-robin is the benign default,
//! uniform-random the typical case, skewed and bursty assignments stress
//! per-site thresholds.

use dtrack_sim::SiteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic sequence of site choices.
pub trait Assignment {
    /// The site observing the next item.
    fn next_site(&mut self) -> SiteId;
}

/// Cycles through sites 0, 1, …, k−1.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    k: u32,
    next: u32,
}

impl RoundRobin {
    /// Round-robin over `k` sites.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "need at least one site");
        RoundRobin { k, next: 0 }
    }
}

impl Assignment for RoundRobin {
    fn next_site(&mut self) -> SiteId {
        let s = SiteId(self.next);
        self.next = (self.next + 1) % self.k;
        s
    }
}

/// Uniformly random site per item.
#[derive(Debug, Clone)]
pub struct UniformSites {
    k: u32,
    rng: StdRng,
}

impl UniformSites {
    /// Uniform over `k` sites with the given seed.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!(k > 0, "need at least one site");
        UniformSites {
            k,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Assignment for UniformSites {
    fn next_site(&mut self) -> SiteId {
        SiteId(self.rng.gen_range(0..self.k))
    }
}

/// Zipf-skewed site choice: site 0 observes the most traffic, site k−1 the
/// least — models a hot front-end server.
#[derive(Debug, Clone)]
pub struct SkewedSites {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl SkewedSites {
    /// Skewed over `k` sites with exponent `s` and the given seed.
    ///
    /// # Panics
    /// Panics if `k` is zero or `s` is not positive and finite.
    pub fn new(k: u32, s: f64, seed: u64) -> Self {
        assert!(k > 0, "need at least one site");
        assert!(s.is_finite() && s > 0.0, "skew must be positive");
        let mut cdf = Vec::with_capacity(k as usize);
        let mut acc = 0.0;
        for r in 1..=k {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        SkewedSites {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Assignment for SkewedSites {
    fn next_site(&mut self) -> SiteId {
        let u: f64 = self.rng.gen();
        SiteId(self.cdf.partition_point(|&c| c < u) as u32)
    }
}

/// One site at a time receives a burst of `burst_len` consecutive items,
/// then the burst moves to a random other site — the worst case for
/// per-site trigger thresholds.
#[derive(Debug, Clone)]
pub struct Bursts {
    k: u32,
    burst_len: u64,
    current: u32,
    left_in_burst: u64,
    rng: StdRng,
}

impl Bursts {
    /// Bursty assignment over `k` sites.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: u32, burst_len: u64, seed: u64) -> Self {
        assert!(k > 0, "need at least one site");
        Bursts {
            k,
            burst_len: burst_len.max(1),
            current: 0,
            left_in_burst: burst_len.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Assignment for Bursts {
    fn next_site(&mut self) -> SiteId {
        if self.left_in_burst == 0 {
            self.current = self.rng.gen_range(0..self.k);
            self.left_in_burst = self.burst_len;
        }
        self.left_in_burst -= 1;
        SiteId(self.current)
    }
}

/// One straggler site, the rest fast: site 0 receives a long run of
/// `slow_run` consecutive items, then sites 1..k get one item each, and
/// the pattern repeats. Site 0 therefore carries `slow_run / (slow_run +
/// k - 1)` of the stream in contiguous stretches — the "one slow site"
/// shape for parallel runtimes, where every other site finishes its share
/// quickly and the straggler's backlog dominates. Fully deterministic
/// (no seed).
#[derive(Debug, Clone)]
pub struct Straggler {
    k: u32,
    slow_run: u64,
    pos: u64,
}

impl Straggler {
    /// Straggler assignment over `k` sites with runs of `slow_run` items
    /// on site 0 (clamped to ≥ 1).
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: u32, slow_run: u64) -> Self {
        assert!(k > 0, "need at least one site");
        Straggler {
            k,
            slow_run: slow_run.max(1),
            pos: 0,
        }
    }
}

impl Assignment for Straggler {
    fn next_site(&mut self) -> SiteId {
        let period = self.slow_run + (self.k as u64 - 1);
        let at = self.pos % period;
        self.pos += 1;
        if at < self.slow_run {
            SiteId(0)
        } else {
            SiteId((at - self.slow_run + 1) as u32)
        }
    }
}

/// Site membership churn: only `active` of the k sites receive traffic at
/// a time, cycling round-robin among themselves, and every `epoch` items
/// the active window rotates by one — sites continually "join" (start
/// receiving) and "leave" (go idle with state intact). This is the
/// join/leave schedule for membership-churn scenarios: a site that leaves
/// keeps its counts, so the coordinator's merged view must stay coherent
/// across the handoff. Fully deterministic (no seed).
#[derive(Debug, Clone)]
pub struct SiteChurn {
    k: u32,
    active: u32,
    epoch: u64,
    pos: u64,
}

impl SiteChurn {
    /// Churning assignment over `k` sites with `active` concurrently live
    /// sites (clamped to `1..=k`), rotating the live window every `epoch`
    /// items (clamped to ≥ 1).
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: u32, active: u32, epoch: u64) -> Self {
        assert!(k > 0, "need at least one site");
        SiteChurn {
            k,
            active: active.clamp(1, k),
            epoch: epoch.max(1),
            pos: 0,
        }
    }
}

impl Assignment for SiteChurn {
    fn next_site(&mut self) -> SiteId {
        let epoch_idx = self.pos / self.epoch;
        let start = (epoch_idx % self.k as u64) as u32;
        let lane = (self.pos % self.active as u64) as u32;
        self.pos += 1;
        SiteId((start + lane) % self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn histogram(a: &mut impl Assignment, n: usize) -> HashMap<u32, usize> {
        let mut h = HashMap::new();
        for _ in 0..n {
            *h.entry(a.next_site().0).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn round_robin_cycles() {
        let mut a = RoundRobin::new(3);
        let sites: Vec<u32> = (0..7).map(|_| a.next_site().0).collect();
        assert_eq!(sites, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_is_balanced() {
        let mut a = UniformSites::new(4, 5);
        let h = histogram(&mut a, 8000);
        for s in 0..4 {
            let c = h[&s];
            assert!((1500..2500).contains(&c), "site {s} got {c}");
        }
    }

    #[test]
    fn skewed_favors_low_sites() {
        let mut a = SkewedSites::new(4, 1.5, 5);
        let h = histogram(&mut a, 8000);
        assert!(h[&0] > h[&3] * 2, "site 0 should dominate: {h:?}");
    }

    #[test]
    fn bursts_are_contiguous() {
        let mut a = Bursts::new(5, 10, 9);
        let sites: Vec<u32> = (0..100).map(|_| a.next_site().0).collect();
        for chunk in sites.chunks(10) {
            assert!(
                chunk.iter().all(|&s| s == chunk[0]),
                "burst broken: {chunk:?}"
            );
        }
    }

    #[test]
    fn straggler_gives_site_zero_long_runs() {
        let mut a = Straggler::new(4, 5);
        let sites: Vec<u32> = (0..16).map(|_| a.next_site().0).collect();
        assert_eq!(sites, vec![0, 0, 0, 0, 0, 1, 2, 3, 0, 0, 0, 0, 0, 1, 2, 3]);
        // Site 0 carries slow_run/(slow_run+k-1) of a long stream.
        let mut a = Straggler::new(4, 5);
        let h = histogram(&mut a, 8000);
        assert_eq!(h[&0], 5000);
        for s in 1..4 {
            assert_eq!(h[&s], 1000);
        }
    }

    #[test]
    fn straggler_with_two_sites_still_rotates() {
        let mut a = Straggler::new(2, 3);
        let sites: Vec<u32> = (0..8).map(|_| a.next_site().0).collect();
        assert_eq!(sites, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn site_churn_rotates_the_active_window() {
        // k=4, 2 active, epoch of 4 items: epoch 0 serves {0,1}, epoch 1
        // serves {1,2}, epoch 2 serves {2,3}, epoch 3 wraps to {3,0}.
        let mut a = SiteChurn::new(4, 2, 4);
        let sites: Vec<u32> = (0..16).map(|_| a.next_site().0).collect();
        assert_eq!(sites, vec![0, 1, 0, 1, 1, 2, 1, 2, 2, 3, 2, 3, 3, 0, 3, 0]);
    }

    #[test]
    fn site_churn_touches_every_site_over_a_full_cycle() {
        let mut a = SiteChurn::new(5, 2, 100);
        let h = histogram(&mut a, 5 * 100);
        for s in 0..5 {
            assert!(h.contains_key(&s), "site {s} never served: {h:?}");
        }
    }

    #[test]
    fn site_churn_clamps_active_to_k() {
        let mut a = SiteChurn::new(3, 9, 2);
        for _ in 0..20 {
            assert!(a.next_site().0 < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        RoundRobin::new(0);
    }
}
