//! # dtrack-workload — deterministic workload generators
//!
//! Item-value generators and site-assignment policies for exercising the
//! tracking protocols. The paper's theorems are worst-case, so the suite
//! covers both benign distributions (uniform, Zipf — the standard stand-in
//! for skewed monitoring streams in this literature) and the structured
//! adversarial patterns the proofs rely on (sorted ramps that drag
//! quantiles, shifting hot sets that churn the heavy-hitter set).
//!
//! Everything is seeded and deterministic: the same `(generator, seed)`
//! pair always produces the same stream, so experiments are reproducible
//! bit-for-bit.

pub mod assign;
pub mod gen;
pub mod sample;

pub use assign::{Assignment, Bursts, RoundRobin, SiteChurn, SkewedSites, Straggler, UniformSites};
pub use gen::{
    Diurnal, FlashCrowd, Generator, KeyChurn, ShiftingZipf, SortedRamp, TwoPhaseDrift, Uniform,
    Zipf,
};
pub use sample::{AliasTable, IndexedCdf};

#[doc(inline)]
pub use gen::{zipf_cdf, zipf_weights};

use dtrack_sim::SiteId;

/// A fully assigned stream: pairs of (site, item).
pub struct Stream<G, A> {
    generator: G,
    assignment: A,
    remaining: u64,
}

impl<G: Generator, A: Assignment> Stream<G, A> {
    /// A stream of `n` items from `generator`, routed by `assignment`.
    pub fn new(generator: G, assignment: A, n: u64) -> Self {
        Stream {
            generator,
            assignment,
            remaining: n,
        }
    }
}

impl<G: Generator, A: Assignment> Iterator for Stream<G, A> {
    type Item = (SiteId, u64);

    fn next(&mut self) -> Option<(SiteId, u64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let item = self.generator.next_item();
        let site = self.assignment.next_site();
        Some((site, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_pairs_generator_and_assignment() {
        let g = Uniform::new(100, 7);
        let a = RoundRobin::new(3);
        let items: Vec<_> = Stream::new(g, a, 9).collect();
        assert_eq!(items.len(), 9);
        // Round-robin site pattern.
        for (i, (site, _)) in items.iter().enumerate() {
            assert_eq!(site.0, (i % 3) as u32);
        }
        // Values within the universe.
        assert!(items.iter().all(|(_, v)| *v < 100));
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<_> =
            Stream::new(Zipf::new(1000, 1.2, 42), UniformSites::new(4, 9), 500).collect();
        let b: Vec<_> =
            Stream::new(Zipf::new(1000, 1.2, 42), UniformSites::new(4, 9), 500).collect();
        assert_eq!(a, b);
    }
}
