//! Item-value generators.

use std::sync::{Arc, Mutex, OnceLock};

use dtrack_hash::FxHashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sample::IndexedCdf;

/// A deterministic stream of item values.
pub trait Generator {
    /// Produce the next item.
    fn next_item(&mut self) -> u64;
}

/// Uniform values over `[0, universe)`.
#[derive(Debug, Clone)]
pub struct Uniform {
    universe: u64,
    rng: StdRng,
}

impl Uniform {
    /// Uniform over `[0, universe)` with the given seed.
    ///
    /// # Panics
    /// Panics if `universe` is zero.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be positive");
        Uniform {
            universe,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for Uniform {
    fn next_item(&mut self) -> u64 {
        self.rng.gen_range(0..self.universe)
    }
}

/// Zipf-distributed values: item `r` (1-based rank) has probability
/// proportional to `1/r^s`. The standard skewed-frequency model for
/// monitoring streams; `s ≈ 1.1–1.5` covers typical network traces.
///
/// Sampling is by guide-table-indexed inverse CDF over a table of
/// `min(universe, 2^20)` distinct values (larger universes are truncated —
/// documented in DESIGN.md; the tail beyond 2^20 ranks carries negligible
/// mass for s > 1). The indexed lookup returns exactly the rank the
/// original `partition_point` binary search did, in O(1) expected probes,
/// so seeded streams are byte-identical across the implementations; see
/// DESIGN.md for why the alias method was *not* used here.
///
/// The table — 2^20 `powf` evaluations plus the guide index, ~12 MB and
/// tens of milliseconds — depends only on `(universe, s)`, never on the
/// seed, so it is built once per process and shared (`Arc`) between all
/// generators asking for the same distribution. Benchmarks that construct
/// one generator per cell stop paying the build in every cell.
#[derive(Debug, Clone)]
pub struct Zipf {
    table: Arc<IndexedCdf>,
    rng: StdRng,
    /// Spread multiplier so values cover the universe rather than 0..u
    /// densely (keeps quantile structures honest).
    stride: u64,
}

/// The unnormalized Zipf weights `1/r^s` for ranks `1..=distinct` — the
/// single source of the float-op sequence behind every Zipf table in the
/// workspace (generator, benches). Seeded streams depend on these exact
/// bits; do not "improve" the arithmetic here.
pub fn zipf_weights(distinct: u64, s: f64) -> Vec<f64> {
    (1..=distinct).map(|r| 1.0 / (r as f64).powf(s)).collect()
}

/// The normalized Zipf CDF exactly as [`Zipf`] samples it: weights
/// accumulated in rank order, then divided by the final total (so the
/// last entry is exactly 1.0). See [`zipf_weights`] for the
/// bit-stability contract.
pub fn zipf_cdf(distinct: u64, s: f64) -> Vec<f64> {
    let mut cdf = zipf_weights(distinct, s);
    let mut acc = 0.0f64;
    for v in &mut cdf {
        acc += *v;
        *v = acc;
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Cache key: (distinct rank count, skew bits).
type ZipfTableCache = Mutex<FxHashMap<(u64, u64), Arc<IndexedCdf>>>;

/// Process-wide cache of finished Zipf tables, keyed by
/// `(distinct, s.to_bits())`. A handful of distributions exist per
/// process; entries are never evicted.
fn zipf_table(distinct: u64, s: f64) -> Arc<IndexedCdf> {
    static CACHE: OnceLock<ZipfTableCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(FxHashMap::default()));
    if let Some(t) = cache
        .lock()
        .expect("zipf cache")
        .get(&(distinct, s.to_bits()))
    {
        return Arc::clone(t);
    }
    // Build outside the lock: construction takes milliseconds and other
    // threads may want other tables meanwhile. A racing duplicate build is
    // harmless (last insert wins; both tables are identical).
    let table = Arc::new(IndexedCdf::new(zipf_cdf(distinct, s)));
    cache
        .lock()
        .expect("zipf cache")
        .insert((distinct, s.to_bits()), Arc::clone(&table));
    table
}

impl Zipf {
    /// Zipf over `universe` values with skew `s` and the given seed.
    ///
    /// # Panics
    /// Panics if `universe` is zero or `s` is not positive and finite.
    pub fn new(universe: u64, s: f64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be positive");
        assert!(s.is_finite() && s > 0.0, "skew must be positive");
        let distinct = universe.min(1 << 20);
        Zipf {
            table: zipf_table(distinct, s),
            rng: StdRng::seed_from_u64(seed),
            stride: (universe / distinct).max(1),
        }
    }
}

impl Generator for Zipf {
    fn next_item(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let rank = self.table.lookup(u) as u64;
        // Scramble rank -> value so popular items are spread over the
        // universe instead of clustered at 0 (splitmix finalizer, then
        // mapped back into range).
        let mut z = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z % self.table.len() as u64) * self.stride
    }
}

/// Monotonically increasing values — the adversarial pattern that drags
/// every quantile upward and forces the §3.1 protocol to keep recentering.
#[derive(Debug, Clone)]
pub struct SortedRamp {
    next: u64,
    step: u64,
}

impl SortedRamp {
    /// Ramp starting at `start`, increasing by `step` per item.
    pub fn new(start: u64, step: u64) -> Self {
        SortedRamp {
            next: start,
            step: step.max(1),
        }
    }
}

impl Generator for SortedRamp {
    fn next_item(&mut self) -> u64 {
        let v = self.next;
        self.next = self.next.wrapping_add(self.step);
        v
    }
}

/// Zipf whose hot set rotates every `shift_every` items: the heavy-hitter
/// set churns over time, exercising both sides of the classification rule.
#[derive(Debug, Clone)]
pub struct ShiftingZipf {
    inner: Zipf,
    shift_every: u64,
    produced: u64,
    offset: u64,
    universe: u64,
}

impl ShiftingZipf {
    /// Shifting Zipf over `universe` values with skew `s`.
    pub fn new(universe: u64, s: f64, shift_every: u64, seed: u64) -> Self {
        ShiftingZipf {
            inner: Zipf::new(universe, s, seed),
            shift_every: shift_every.max(1),
            produced: 0,
            offset: 0,
            universe,
        }
    }
}

impl Generator for ShiftingZipf {
    fn next_item(&mut self) -> u64 {
        self.produced += 1;
        if self.produced.is_multiple_of(self.shift_every) {
            self.offset = self.offset.wrapping_add(0x5851_F42D_4C95_7F2D);
        }
        (self.inner.next_item().wrapping_add(self.offset)) % self.universe
    }
}

/// Two-phase drift: uniform over a low band, then (after `switch_at`
/// items) uniform over a disjoint high band. Moves every quantile across
/// the universe in one jump — the round-restart stress test.
#[derive(Debug, Clone)]
pub struct TwoPhaseDrift {
    low: Uniform,
    high: Uniform,
    switch_at: u64,
    produced: u64,
    band: u64,
}

impl TwoPhaseDrift {
    /// Drift from `[0, band)` to `[band, 2·band)` after `switch_at` items.
    pub fn new(band: u64, switch_at: u64, seed: u64) -> Self {
        TwoPhaseDrift {
            low: Uniform::new(band, seed),
            high: Uniform::new(band, seed ^ 0xDEAD_BEEF),
            switch_at,
            produced: 0,
            band,
        }
    }
}

impl Generator for TwoPhaseDrift {
    fn next_item(&mut self) -> u64 {
        self.produced += 1;
        if self.produced <= self.switch_at {
            self.low.next_item()
        } else {
            self.band + self.high.next_item()
        }
    }
}

/// A flash crowd layered on steady Zipf background traffic: for the first
/// `flash_len` items of every `period`, three quarters of the arrivals are
/// one crowd key that rotates each period (a different viral item every
/// window), while the remaining quarter — and the whole off-window tail —
/// keep the background hot set alive. Heavy-hitter trackers must admit the
/// crowd key fast and retire it just as fast without losing the persistent
/// hitters underneath.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    inner: Zipf,
    period: u64,
    flash_len: u64,
    produced: u64,
    universe: u64,
}

impl FlashCrowd {
    /// Flash crowds over `universe` values: Zipf(`s`) background, with the
    /// first `flash_len` items of every `period` dominated by one rotating
    /// crowd key.
    ///
    /// # Panics
    /// Panics if `universe` is zero, `s` is not positive and finite, or
    /// `flash_len` exceeds `period`.
    pub fn new(universe: u64, s: f64, period: u64, flash_len: u64, seed: u64) -> Self {
        let period = period.max(1);
        assert!(
            flash_len <= period,
            "flash window must fit inside the period"
        );
        FlashCrowd {
            inner: Zipf::new(universe, s, seed),
            period,
            flash_len,
            produced: 0,
            universe,
        }
    }

    /// The crowd key for window `w` (splitmix finalizer, as in the Zipf
    /// rank scramble, so successive windows land far apart).
    fn crowd_key(&self, window: u64) -> u64 {
        let mut z = window.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z % self.universe
    }
}

impl Generator for FlashCrowd {
    fn next_item(&mut self) -> u64 {
        let pos = self.produced % self.period;
        let window = self.produced / self.period;
        self.produced += 1;
        // The background generator advances on every item — flash or not —
        // so the Zipf byte stream is independent of the crowd schedule.
        let background = self.inner.next_item();
        if pos < self.flash_len && !pos.is_multiple_of(4) {
            self.crowd_key(window)
        } else {
            background
        }
    }
}

/// Diurnal drift: the value band sweeps cyclically through `phases`
/// disjoint segments of the universe, `phase_len` items per phase — the
/// day/night traffic-mix cycle. Every quantile crosses the universe once
/// per cycle, and unlike [`TwoPhaseDrift`] it keeps coming back, so
/// recentering protocols must re-earn their state every phase.
#[derive(Debug, Clone)]
pub struct Diurnal {
    offset_rng: Uniform,
    band: u64,
    phases: u64,
    phase_len: u64,
    produced: u64,
}

impl Diurnal {
    /// Cyclic drift over `phases` bands of width `band`, dwelling
    /// `phase_len` items in each.
    ///
    /// # Panics
    /// Panics if `band` is zero (via [`Uniform::new`]).
    pub fn new(band: u64, phases: u64, phase_len: u64, seed: u64) -> Self {
        Diurnal {
            offset_rng: Uniform::new(band, seed),
            band,
            phases: phases.max(1),
            phase_len: phase_len.max(1),
            produced: 0,
        }
    }
}

impl Generator for Diurnal {
    fn next_item(&mut self) -> u64 {
        let phase = (self.produced / self.phase_len) % self.phases;
        self.produced += 1;
        phase * self.band + self.offset_rng.next_item()
    }
}

/// Key churn: a Zipf distribution over a sliding window of active keys.
/// Every `churn_every` items the whole window slides up by `step`, so old
/// keys die and new keys are born continuously — unlike [`ShiftingZipf`]'s
/// teleporting offset, the active set drifts steadily, which is the
/// session-key / connection-ID shape of real deployments.
#[derive(Debug, Clone)]
pub struct KeyChurn {
    inner: Zipf,
    churn_every: u64,
    step: u64,
    produced: u64,
    base: u64,
}

impl KeyChurn {
    /// Zipf(`s`) over a window of `window` active keys starting at 0,
    /// sliding up by `step` every `churn_every` items.
    ///
    /// # Panics
    /// Panics if `window` is zero or `s` is not positive and finite (via
    /// [`Zipf::new`]).
    pub fn new(window: u64, s: f64, churn_every: u64, step: u64, seed: u64) -> Self {
        KeyChurn {
            inner: Zipf::new(window, s, seed),
            churn_every: churn_every.max(1),
            step: step.max(1),
            produced: 0,
            base: 0,
        }
    }
}

impl Generator for KeyChurn {
    fn next_item(&mut self) -> u64 {
        self.produced += 1;
        if self.produced.is_multiple_of(self.churn_every) {
            self.base = self.base.wrapping_add(self.step);
        }
        self.base.wrapping_add(self.inner.next_item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_stays_in_range_and_spreads() {
        let mut g = Uniform::new(1000, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let v = g.next_item();
            assert!(v < 1000);
            seen.insert(v);
        }
        assert!(seen.len() > 900, "uniform should cover most of the range");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = Zipf::new(10_000, 1.3, 7);
        let mut freq: HashMap<u64, u64> = HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *freq.entry(g.next_item()).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The most frequent item carries a large share; the tail is long.
        assert!(
            counts[0] > (n / 20) as u64,
            "top item too light: {}",
            counts[0]
        );
        assert!(freq.len() > 100, "tail too short: {}", freq.len());
    }

    #[test]
    fn zipf_skew_parameter_matters() {
        let top_share = |s: f64| {
            let mut g = Zipf::new(10_000, s, 11);
            let mut freq: HashMap<u64, u64> = HashMap::new();
            for _ in 0..20_000 {
                *freq.entry(g.next_item()).or_insert(0) += 1;
            }
            *freq.values().max().unwrap() as f64 / 20_000.0
        };
        assert!(top_share(2.0) > top_share(1.05));
    }

    #[test]
    fn sorted_ramp_is_monotone() {
        let mut g = SortedRamp::new(5, 3);
        let vals: Vec<u64> = (0..100).map(|_| g.next_item()).collect();
        assert!(vals.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(vals[0], 5);
        assert_eq!(vals[1], 8);
    }

    #[test]
    fn shifting_zipf_changes_hot_set() {
        let mut g = ShiftingZipf::new(1 << 30, 1.5, 5_000, 3);
        let phase1: Vec<u64> = (0..5_000).map(|_| g.next_item()).collect();
        let phase2: Vec<u64> = (0..5_000).map(|_| g.next_item()).collect();
        let top = |v: &[u64]| {
            let mut f: HashMap<u64, u64> = HashMap::new();
            for &x in v {
                *f.entry(x).or_insert(0) += 1;
            }
            f.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_ne!(top(&phase1), top(&phase2), "hot item should rotate");
    }

    #[test]
    fn two_phase_drift_switches_band() {
        let mut g = TwoPhaseDrift::new(1000, 100, 5);
        for _ in 0..100 {
            assert!(g.next_item() < 1000);
        }
        for _ in 0..100 {
            assert!(g.next_item() >= 1000);
        }
    }

    #[test]
    fn flash_crowd_rotates_a_dominant_key_per_window() {
        let mut g = FlashCrowd::new(1 << 30, 1.2, 1000, 400, 11);
        let window1: Vec<u64> = (0..1000).map(|_| g.next_item()).collect();
        let window2: Vec<u64> = (0..1000).map(|_| g.next_item()).collect();
        let top = |v: &[u64]| {
            let mut f: HashMap<u64, u64> = HashMap::new();
            for &x in v {
                *f.entry(x).or_insert(0) += 1;
            }
            f.into_iter().max_by_key(|&(_, c)| c).unwrap()
        };
        let (k1, c1) = top(&window1);
        let (k2, c2) = top(&window2);
        // 3/4 of the 400-item flash window is the crowd key.
        assert!(c1 >= 250, "crowd key too light in window 1: {c1}");
        assert!(c2 >= 250, "crowd key too light in window 2: {c2}");
        assert_ne!(k1, k2, "crowd key should rotate between windows");
    }

    #[test]
    fn flash_crowd_keeps_background_traffic_alive() {
        let mut g = FlashCrowd::new(1 << 30, 1.2, 1000, 400, 11);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..4000 {
            distinct.insert(g.next_item());
        }
        // Off-window (and 1/4 of in-window) items come from background
        // Zipf — far more distinct values than 4 crowd keys.
        assert!(distinct.len() > 100, "background lost: {}", distinct.len());
    }

    #[test]
    #[should_panic(expected = "flash window must fit")]
    fn flash_crowd_rejects_oversized_window() {
        FlashCrowd::new(1000, 1.2, 100, 101, 1);
    }

    #[test]
    fn diurnal_sweeps_bands_cyclically() {
        let band = 1000u64;
        let mut g = Diurnal::new(band, 4, 50, 3);
        for _cycle in 0..2 {
            for phase in 0..4u64 {
                for _ in 0..50 {
                    let v = g.next_item();
                    assert!(
                        (phase * band..(phase + 1) * band).contains(&v),
                        "phase {phase}: {v} out of band"
                    );
                }
            }
        }
    }

    #[test]
    fn key_churn_slides_the_active_window() {
        let mut g = KeyChurn::new(1 << 10, 1.3, 500, 1 << 10, 9);
        let early: Vec<u64> = (0..500).map(|_| g.next_item()).collect();
        // Skip far ahead so the window has fully moved past the start.
        for _ in 0..4000 {
            g.next_item();
        }
        let late: Vec<u64> = (0..500).map(|_| g.next_item()).collect();
        let early_max = *early.iter().max().unwrap();
        let late_min = *late.iter().min().unwrap();
        assert!(
            late_min > early_max,
            "window did not slide: early max {early_max}, late min {late_min}"
        );
    }

    #[test]
    #[should_panic(expected = "universe must be positive")]
    fn zero_universe_panics() {
        Uniform::new(0, 1);
    }
}
