//! Item-value generators.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sample::IndexedCdf;

/// A deterministic stream of item values.
pub trait Generator {
    /// Produce the next item.
    fn next_item(&mut self) -> u64;
}

/// Uniform values over `[0, universe)`.
#[derive(Debug, Clone)]
pub struct Uniform {
    universe: u64,
    rng: StdRng,
}

impl Uniform {
    /// Uniform over `[0, universe)` with the given seed.
    ///
    /// # Panics
    /// Panics if `universe` is zero.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be positive");
        Uniform {
            universe,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for Uniform {
    fn next_item(&mut self) -> u64 {
        self.rng.gen_range(0..self.universe)
    }
}

/// Zipf-distributed values: item `r` (1-based rank) has probability
/// proportional to `1/r^s`. The standard skewed-frequency model for
/// monitoring streams; `s ≈ 1.1–1.5` covers typical network traces.
///
/// Sampling is by guide-table-indexed inverse CDF over a table of
/// `min(universe, 2^20)` distinct values (larger universes are truncated —
/// documented in DESIGN.md; the tail beyond 2^20 ranks carries negligible
/// mass for s > 1). The indexed lookup returns exactly the rank the
/// original `partition_point` binary search did, in O(1) expected probes,
/// so seeded streams are byte-identical across the implementations; see
/// DESIGN.md for why the alias method was *not* used here.
///
/// The table — 2^20 `powf` evaluations plus the guide index, ~12 MB and
/// tens of milliseconds — depends only on `(universe, s)`, never on the
/// seed, so it is built once per process and shared (`Arc`) between all
/// generators asking for the same distribution. Benchmarks that construct
/// one generator per cell stop paying the build in every cell.
#[derive(Debug, Clone)]
pub struct Zipf {
    table: Arc<IndexedCdf>,
    rng: StdRng,
    /// Spread multiplier so values cover the universe rather than 0..u
    /// densely (keeps quantile structures honest).
    stride: u64,
}

/// The unnormalized Zipf weights `1/r^s` for ranks `1..=distinct` — the
/// single source of the float-op sequence behind every Zipf table in the
/// workspace (generator, benches). Seeded streams depend on these exact
/// bits; do not "improve" the arithmetic here.
pub fn zipf_weights(distinct: u64, s: f64) -> Vec<f64> {
    (1..=distinct).map(|r| 1.0 / (r as f64).powf(s)).collect()
}

/// The normalized Zipf CDF exactly as [`Zipf`] samples it: weights
/// accumulated in rank order, then divided by the final total (so the
/// last entry is exactly 1.0). See [`zipf_weights`] for the
/// bit-stability contract.
pub fn zipf_cdf(distinct: u64, s: f64) -> Vec<f64> {
    let mut cdf = zipf_weights(distinct, s);
    let mut acc = 0.0f64;
    for v in &mut cdf {
        acc += *v;
        *v = acc;
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Cache key: (distinct rank count, skew bits).
type ZipfTableCache = Mutex<HashMap<(u64, u64), Arc<IndexedCdf>>>;

/// Process-wide cache of finished Zipf tables, keyed by
/// `(distinct, s.to_bits())`. A handful of distributions exist per
/// process; entries are never evicted.
fn zipf_table(distinct: u64, s: f64) -> Arc<IndexedCdf> {
    static CACHE: OnceLock<ZipfTableCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(t) = cache
        .lock()
        .expect("zipf cache")
        .get(&(distinct, s.to_bits()))
    {
        return Arc::clone(t);
    }
    // Build outside the lock: construction takes milliseconds and other
    // threads may want other tables meanwhile. A racing duplicate build is
    // harmless (last insert wins; both tables are identical).
    let table = Arc::new(IndexedCdf::new(zipf_cdf(distinct, s)));
    cache
        .lock()
        .expect("zipf cache")
        .insert((distinct, s.to_bits()), Arc::clone(&table));
    table
}

impl Zipf {
    /// Zipf over `universe` values with skew `s` and the given seed.
    ///
    /// # Panics
    /// Panics if `universe` is zero or `s` is not positive and finite.
    pub fn new(universe: u64, s: f64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be positive");
        assert!(s.is_finite() && s > 0.0, "skew must be positive");
        let distinct = universe.min(1 << 20);
        Zipf {
            table: zipf_table(distinct, s),
            rng: StdRng::seed_from_u64(seed),
            stride: (universe / distinct).max(1),
        }
    }
}

impl Generator for Zipf {
    fn next_item(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let rank = self.table.lookup(u) as u64;
        // Scramble rank -> value so popular items are spread over the
        // universe instead of clustered at 0 (splitmix finalizer, then
        // mapped back into range).
        let mut z = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z % self.table.len() as u64) * self.stride
    }
}

/// Monotonically increasing values — the adversarial pattern that drags
/// every quantile upward and forces the §3.1 protocol to keep recentering.
#[derive(Debug, Clone)]
pub struct SortedRamp {
    next: u64,
    step: u64,
}

impl SortedRamp {
    /// Ramp starting at `start`, increasing by `step` per item.
    pub fn new(start: u64, step: u64) -> Self {
        SortedRamp {
            next: start,
            step: step.max(1),
        }
    }
}

impl Generator for SortedRamp {
    fn next_item(&mut self) -> u64 {
        let v = self.next;
        self.next = self.next.wrapping_add(self.step);
        v
    }
}

/// Zipf whose hot set rotates every `shift_every` items: the heavy-hitter
/// set churns over time, exercising both sides of the classification rule.
#[derive(Debug, Clone)]
pub struct ShiftingZipf {
    inner: Zipf,
    shift_every: u64,
    produced: u64,
    offset: u64,
    universe: u64,
}

impl ShiftingZipf {
    /// Shifting Zipf over `universe` values with skew `s`.
    pub fn new(universe: u64, s: f64, shift_every: u64, seed: u64) -> Self {
        ShiftingZipf {
            inner: Zipf::new(universe, s, seed),
            shift_every: shift_every.max(1),
            produced: 0,
            offset: 0,
            universe,
        }
    }
}

impl Generator for ShiftingZipf {
    fn next_item(&mut self) -> u64 {
        self.produced += 1;
        if self.produced.is_multiple_of(self.shift_every) {
            self.offset = self.offset.wrapping_add(0x5851_F42D_4C95_7F2D);
        }
        (self.inner.next_item().wrapping_add(self.offset)) % self.universe
    }
}

/// Two-phase drift: uniform over a low band, then (after `switch_at`
/// items) uniform over a disjoint high band. Moves every quantile across
/// the universe in one jump — the round-restart stress test.
#[derive(Debug, Clone)]
pub struct TwoPhaseDrift {
    low: Uniform,
    high: Uniform,
    switch_at: u64,
    produced: u64,
    band: u64,
}

impl TwoPhaseDrift {
    /// Drift from `[0, band)` to `[band, 2·band)` after `switch_at` items.
    pub fn new(band: u64, switch_at: u64, seed: u64) -> Self {
        TwoPhaseDrift {
            low: Uniform::new(band, seed),
            high: Uniform::new(band, seed ^ 0xDEAD_BEEF),
            switch_at,
            produced: 0,
            band,
        }
    }
}

impl Generator for TwoPhaseDrift {
    fn next_item(&mut self) -> u64 {
        self.produced += 1;
        if self.produced <= self.switch_at {
            self.low.next_item()
        } else {
            self.band + self.high.next_item()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_stays_in_range_and_spreads() {
        let mut g = Uniform::new(1000, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let v = g.next_item();
            assert!(v < 1000);
            seen.insert(v);
        }
        assert!(seen.len() > 900, "uniform should cover most of the range");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = Zipf::new(10_000, 1.3, 7);
        let mut freq: HashMap<u64, u64> = HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *freq.entry(g.next_item()).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The most frequent item carries a large share; the tail is long.
        assert!(
            counts[0] > (n / 20) as u64,
            "top item too light: {}",
            counts[0]
        );
        assert!(freq.len() > 100, "tail too short: {}", freq.len());
    }

    #[test]
    fn zipf_skew_parameter_matters() {
        let top_share = |s: f64| {
            let mut g = Zipf::new(10_000, s, 11);
            let mut freq: HashMap<u64, u64> = HashMap::new();
            for _ in 0..20_000 {
                *freq.entry(g.next_item()).or_insert(0) += 1;
            }
            *freq.values().max().unwrap() as f64 / 20_000.0
        };
        assert!(top_share(2.0) > top_share(1.05));
    }

    #[test]
    fn sorted_ramp_is_monotone() {
        let mut g = SortedRamp::new(5, 3);
        let vals: Vec<u64> = (0..100).map(|_| g.next_item()).collect();
        assert!(vals.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(vals[0], 5);
        assert_eq!(vals[1], 8);
    }

    #[test]
    fn shifting_zipf_changes_hot_set() {
        let mut g = ShiftingZipf::new(1 << 30, 1.5, 5_000, 3);
        let phase1: Vec<u64> = (0..5_000).map(|_| g.next_item()).collect();
        let phase2: Vec<u64> = (0..5_000).map(|_| g.next_item()).collect();
        let top = |v: &[u64]| {
            let mut f: HashMap<u64, u64> = HashMap::new();
            for &x in v {
                *f.entry(x).or_insert(0) += 1;
            }
            f.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_ne!(top(&phase1), top(&phase2), "hot item should rotate");
    }

    #[test]
    fn two_phase_drift_switches_band() {
        let mut g = TwoPhaseDrift::new(1000, 100, 5);
        for _ in 0..100 {
            assert!(g.next_item() < 1000);
        }
        for _ in 0..100 {
            assert!(g.next_item() >= 1000);
        }
    }

    #[test]
    #[should_panic(expected = "universe must be positive")]
    fn zero_universe_panics() {
        Uniform::new(0, 1);
    }
}
