//! Print the crate's public-API surface document to stdout.
//!
//! ```text
//! cargo run -p dtrack-sim --example api_dump > api/dtrack-sim.txt
//! ```
//!
//! The committed snapshot is diffed by `tests/api_snapshot.rs`, so public
//! API changes are deliberate: change the API, regenerate, commit both.

fn main() {
    print!("{}", dtrack_sim::api::surface());
}
