//! Error type for the simulation substrate.

use std::fmt;

/// Errors raised by the runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A protocol exchange failed to quiesce within the message fuse;
    /// almost certainly a protocol livelock (e.g. two parties triggering
    /// each other forever).
    Livelock {
        /// Number of messages processed before giving up.
        fuse: u64,
    },
    /// An item was fed to a site index that does not exist.
    NoSuchSite {
        /// The offending site index.
        site: u32,
        /// Number of sites in the cluster.
        sites: u32,
    },
    /// The cluster was constructed with fewer than two sites; the model
    /// requires k >= 2 (with k = 1 it degenerates to a single data stream).
    TooFewSites {
        /// The requested number of sites.
        sites: u32,
    },
    /// A threaded runtime worker disappeared (channel disconnected).
    WorkerGone {
        /// Description of the worker.
        who: &'static str,
    },
    /// An item was fed to a site that has been administratively killed by
    /// fault injection ([`crate::backend::FaultEvent::KillSite`]). Unlike
    /// [`SimError::WorkerGone`], the runtime itself is healthy — only this
    /// site is partitioned away, and feeds to other sites still succeed.
    SiteDown {
        /// The dead site's index.
        site: u32,
    },
    /// A deadline-aware wait (`settle_deadline`, `RunTicket::wait_timeout`)
    /// expired before the system went quiescent. The runtime is still
    /// usable — a stalled site may drain later — but the caller asked to
    /// degrade to an error instead of parking unboundedly.
    Timeout {
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// The wire transport layer failed outside of frame decoding (the
    /// async backend's loopback link was torn down mid-hop, or a frame
    /// could not be shipped at all). Distinct from [`SimError::WorkerGone`]:
    /// the worker may be healthy while its link is not.
    Transport {
        /// What went wrong with the link.
        detail: &'static str,
    },
    /// A wire frame failed to decode. Carries the protocol direction the
    /// frame claimed to be (`"up"`/`"down"`) plus the typed codec error,
    /// which pins the offending byte offset — so a corrupt or truncated
    /// frame surfaces as diagnosis, never as a panic or a silent
    /// `WorkerGone`.
    Decode {
        /// Which frame kind failed (`"up"` or `"down"`).
        frame: &'static str,
        /// The codec's typed failure, including the byte offset.
        error: dtrack_wire::DecodeError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Livelock { fuse } => write!(
                f,
                "protocol failed to quiesce after {fuse} messages; livelock suspected"
            ),
            SimError::NoSuchSite { site, sites } => {
                write!(f, "site {site} out of range (cluster has {sites} sites)")
            }
            SimError::TooFewSites { sites } => {
                write!(f, "cluster needs at least 2 sites, got {sites}")
            }
            SimError::WorkerGone { who } => write!(f, "worker thread '{who}' disconnected"),
            SimError::SiteDown { site } => {
                write!(f, "site {site} is down (killed by fault injection)")
            }
            SimError::Timeout { waited_ms } => {
                write!(
                    f,
                    "deadline expired after {waited_ms}ms; system not quiescent"
                )
            }
            SimError::Transport { detail } => write!(f, "wire transport failed: {detail}"),
            SimError::Decode { frame, error } => {
                write!(f, "wire {frame} frame failed to decode: {error}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Livelock { fuse: 10 };
        assert!(e.to_string().contains("10"));
        let e = SimError::NoSuchSite { site: 7, sites: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));
        let e = SimError::TooFewSites { sites: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = SimError::WorkerGone { who: "site-3" };
        assert!(e.to_string().contains("site-3"));
        let e = SimError::SiteDown { site: 2 };
        assert!(e.to_string().contains("site 2"));
        let e = SimError::Timeout { waited_ms: 250 };
        assert!(e.to_string().contains("250ms"));
        let e = SimError::Transport {
            detail: "loopback closed",
        };
        assert!(e.to_string().contains("loopback closed"));
        let e = SimError::Decode {
            frame: "up",
            error: dtrack_wire::DecodeError::BadVersion { found: 9 },
        };
        let msg = e.to_string();
        assert!(msg.contains("up frame"), "{msg}");
        assert!(msg.contains('9'), "{msg}");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::Livelock { fuse: 1 });
        assert!(!e.to_string().is_empty());
    }
}
