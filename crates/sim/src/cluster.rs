//! Deterministic single-threaded runner for the distributed streaming model.
//!
//! [`Cluster`] owns `k` site state machines and one coordinator. Feeding an
//! item to a site runs all communication it triggers — including iterative
//! coordinator-initiated rounds such as polls and broadcasts — to
//! quiescence, metering every message hop. This matches the paper's model
//! where "communication is instant" and all exchanges finish before the
//! next item arrives.

use std::collections::VecDeque;

use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};

/// Default per-arrival message fuse. A healthy protocol exchanges O(k + 1/ε)
/// messages per arrival in the worst case; hitting the fuse indicates a
/// livelock bug rather than a legitimately long exchange.
pub const DEFAULT_FUSE: u64 = 10_000_000;

/// Deterministic in-process cluster of `k` sites plus a coordinator.
#[derive(Debug)]
pub struct Cluster<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    sites: Vec<S>,
    coordinator: C,
    meter: MessageMeter,
    fuse: u64,
    items_fed: u64,
    // Reused buffers to keep the hot path allocation-free.
    up_queue: VecDeque<(SiteId, S::Up)>,
    outbox: Outbox<S::Down>,
    site_buf: Vec<S::Up>,
}

impl<S, C> Cluster<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    /// Build a cluster from pre-constructed site and coordinator state.
    ///
    /// Returns [`SimError::TooFewSites`] when fewer than 2 sites are given:
    /// with k = 1 the model degenerates to a single data stream and the
    /// communication measure is meaningless.
    pub fn new(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        if sites.len() < 2 {
            return Err(SimError::TooFewSites {
                sites: sites.len() as u32,
            });
        }
        Ok(Cluster {
            sites,
            coordinator,
            meter: MessageMeter::new(),
            fuse: DEFAULT_FUSE,
            items_fed: 0,
            up_queue: VecDeque::new(),
            outbox: Outbox::new(),
            site_buf: Vec::new(),
        })
    }

    /// Override the per-arrival message fuse (mainly for livelock tests).
    pub fn with_fuse(mut self, fuse: u64) -> Self {
        self.fuse = fuse;
        self
    }

    /// Number of sites k.
    pub fn num_sites(&self) -> u32 {
        self.sites.len() as u32
    }

    /// Total number of items fed so far (the paper's `n` at the current
    /// time instance).
    pub fn items_fed(&self) -> u64 {
        self.items_fed
    }

    /// The communication meter.
    pub fn meter(&self) -> &MessageMeter {
        &self.meter
    }

    /// Mutable access to the meter (e.g. to reset after a warm-up phase).
    pub fn meter_mut(&mut self) -> &mut MessageMeter {
        &mut self.meter
    }

    /// Immutable access to the coordinator, for queries.
    pub fn coordinator(&self) -> &C {
        &self.coordinator
    }

    /// Immutable access to a site's state (used by adversaries and tests).
    pub fn site(&self, id: SiteId) -> Option<&S> {
        self.sites.get(id.index())
    }

    /// Immutable access to all sites.
    pub fn sites(&self) -> &[S] {
        &self.sites
    }

    /// Deliver `item` to site `site` and run all triggered communication to
    /// quiescence.
    pub fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let k = self.sites.len();
        let s = self
            .sites
            .get_mut(site.index())
            .ok_or(SimError::NoSuchSite {
                site: site.0,
                sites: k as u32,
            })?;
        self.items_fed += 1;
        debug_assert!(self.site_buf.is_empty());
        s.on_item(item, &mut self.site_buf);
        for up in self.site_buf.drain(..) {
            self.meter.record_up(up.kind(), up.size_words());
            self.up_queue.push_back((site, up));
        }
        self.drain()
    }

    /// Feed a whole assigned stream, stopping at the first error.
    pub fn feed_stream<I>(&mut self, stream: I) -> Result<(), SimError>
    where
        I: IntoIterator<Item = (SiteId, S::Item)>,
    {
        for (site, item) in stream {
            self.feed(site, item)?;
        }
        Ok(())
    }

    /// Process queued upstream messages (and the downstream messages they
    /// trigger) until the system is quiescent.
    fn drain(&mut self) -> Result<(), SimError> {
        let mut hops: u64 = 0;
        while let Some((from, up)) = self.up_queue.pop_front() {
            hops += 1;
            if hops > self.fuse {
                return Err(SimError::Livelock { fuse: self.fuse });
            }
            debug_assert!(self.outbox.is_empty());
            self.coordinator.on_message(from, up, &mut self.outbox);
            // Move the downstream batch out so we can borrow sites mutably.
            let downs: Vec<(Down, S::Down)> = self.outbox.drain().collect();
            for (dest, msg) in downs {
                match dest {
                    Down::Unicast(dst) => {
                        self.deliver_down(dst, &msg)?;
                    }
                    Down::Broadcast => {
                        for i in 0..self.sites.len() {
                            self.deliver_down(SiteId(i as u32), &msg)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn deliver_down(&mut self, dst: SiteId, msg: &S::Down) -> Result<(), SimError> {
        self.meter.record_down(msg.kind(), msg.size_words());
        let k = self.sites.len() as u32;
        let s = self
            .sites
            .get_mut(dst.index())
            .ok_or(SimError::NoSuchSite {
                site: dst.0,
                sites: k,
            })?;
        debug_assert!(self.site_buf.is_empty());
        s.on_message(msg, &mut self.site_buf);
        for up in self.site_buf.drain(..) {
            self.meter.record_up(up.kind(), up.size_words());
            self.up_queue.push_back((dst, up));
        }
        Ok(())
    }

    /// Tear down the cluster, returning the coordinator, the sites, and the
    /// final meter.
    pub fn into_parts(self) -> (C, Vec<S>, MessageMeter) {
        (self.coordinator, self.sites, self.meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: sites forward every item; coordinator acks every 3rd
    /// message with a broadcast; an ack does not trigger further traffic.
    #[derive(Debug, Default)]
    struct FwdSite {
        seen: u64,
        acks: u64,
    }

    #[derive(Debug)]
    enum FwdUp {
        Item(u64),
    }
    #[derive(Debug)]
    enum FwdDown {
        Ack,
    }

    impl MessageSize for FwdUp {
        fn size_words(&self) -> u64 {
            2
        }
        fn kind(&self) -> &'static str {
            "fwd/item"
        }
    }
    impl MessageSize for FwdDown {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "fwd/ack"
        }
    }

    impl Site for FwdSite {
        type Item = u64;
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_item(&mut self, item: u64, out: &mut Vec<FwdUp>) {
            self.seen += 1;
            out.push(FwdUp::Item(item));
        }
        fn on_message(&mut self, _msg: &FwdDown, _out: &mut Vec<FwdUp>) {
            self.acks += 1;
        }
    }

    #[derive(Debug, Default)]
    struct FwdCoord {
        received: u64,
        sum: u64,
    }

    impl Coordinator for FwdCoord {
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_message(&mut self, _from: SiteId, msg: FwdUp, out: &mut Outbox<FwdDown>) {
            let FwdUp::Item(x) = msg;
            self.received += 1;
            self.sum += x;
            if self.received.is_multiple_of(3) {
                out.broadcast(FwdDown::Ack);
            }
        }
    }

    fn cluster(k: usize) -> Cluster<FwdSite, FwdCoord> {
        let sites = (0..k).map(|_| FwdSite::default()).collect();
        Cluster::new(sites, FwdCoord::default()).unwrap()
    }

    #[test]
    fn rejects_small_clusters() {
        let err = Cluster::new(vec![FwdSite::default()], FwdCoord::default()).unwrap_err();
        assert_eq!(err, SimError::TooFewSites { sites: 1 });
    }

    #[test]
    fn feed_runs_to_quiescence_and_meters() {
        let mut c = cluster(4);
        for i in 0..6u64 {
            c.feed(SiteId((i % 4) as u32), i * 10).unwrap();
        }
        assert_eq!(c.coordinator().received, 6);
        assert_eq!(c.coordinator().sum, (1 + 2 + 3 + 4 + 5) * 10);
        // 6 upstream item messages of 2 words each.
        assert_eq!(c.meter().kind("fwd/item").messages, 6);
        assert_eq!(c.meter().kind("fwd/item").words, 12);
        // 2 broadcasts (after messages 3 and 6), each expands to k=4 acks.
        assert_eq!(c.meter().kind("fwd/ack").messages, 8);
        // Every site saw both acks.
        for s in c.sites() {
            assert_eq!(s.acks, 2);
        }
        assert_eq!(c.items_fed(), 6);
    }

    #[test]
    fn feed_to_missing_site_errors() {
        let mut c = cluster(2);
        let err = c.feed(SiteId(9), 1).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 9, sites: 2 });
    }

    #[test]
    fn feed_stream_consumes_pairs() {
        let mut c = cluster(3);
        let stream = (0..9u64).map(|i| (SiteId((i % 3) as u32), i));
        c.feed_stream(stream).unwrap();
        assert_eq!(c.coordinator().received, 9);
    }

    /// A site that replies to every ack with another item forever — the
    /// fuse must convert the livelock into an error.
    #[derive(Debug, Default)]
    struct LoopSite;
    impl Site for LoopSite {
        type Item = u64;
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_item(&mut self, item: u64, out: &mut Vec<FwdUp>) {
            out.push(FwdUp::Item(item));
        }
        fn on_message(&mut self, _msg: &FwdDown, out: &mut Vec<FwdUp>) {
            out.push(FwdUp::Item(0));
        }
    }

    #[derive(Debug, Default)]
    struct LoopCoord;
    impl Coordinator for LoopCoord {
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_message(&mut self, from: SiteId, _msg: FwdUp, out: &mut Outbox<FwdDown>) {
            out.unicast(from, FwdDown::Ack);
        }
    }

    #[test]
    fn livelock_hits_fuse() {
        let sites = vec![LoopSite, LoopSite];
        let mut c = Cluster::new(sites, LoopCoord).unwrap().with_fuse(1000);
        let err = c.feed(SiteId(0), 1).unwrap_err();
        assert_eq!(err, SimError::Livelock { fuse: 1000 });
    }

    #[test]
    fn into_parts_returns_state() {
        let mut c = cluster(2);
        c.feed(SiteId(0), 7).unwrap();
        let (coord, sites, meter) = c.into_parts();
        assert_eq!(coord.sum, 7);
        assert_eq!(sites.len(), 2);
        assert_eq!(meter.kind("fwd/item").messages, 1);
    }
}
